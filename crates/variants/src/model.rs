//! Learned HLS cost models: small, pure-Rust surrogates trained on
//! [`crate::dataset`] tables.
//!
//! Two regressors are fit per target column:
//!
//! * a **ridge** linear baseline (closed-form normal equations over
//!   standardized features), and
//! * **gradient-boosted stumps** — depth-1 regression trees fit to
//!   residuals, the workhorse for the stepwise, saturating response
//!   surfaces HLS produces (latency vs PE count plateaus at the port
//!   limit, area jumps at bank boundaries).
//!
//! Whichever validates better on the held-out rows serves predictions
//! for that target. Everything is deterministic: the train/validation
//! split is a fixed index stride, stump search scans features in
//! declaration order with first-wins tie-breaks, and no RNG is involved
//! anywhere — so a fit is a pure function of the dataset bytes, and
//! re-fitting on another machine (or at another `--jobs` count) yields a
//! bit-identical model. Models serialize to JSON for shipping alongside
//! the dataset.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// Training configuration. The defaults fit in well under a millisecond
/// on dataset sizes the factory produces and are used everywhere unless
/// a caller is experimenting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitConfig {
    /// Boosting rounds (stumps per target).
    pub rounds: usize,
    /// Shrinkage applied to each stump's contribution.
    pub learning_rate: f64,
    /// Minimum samples on each side of a stump split.
    pub min_leaf: usize,
    /// Ridge regularization strength.
    pub lambda: f64,
    /// Every `val_stride`-th row is held out for validation (0 or 1
    /// disables the holdout; validation error is then reported as 0).
    pub val_stride: usize,
    /// Fit on `ln(1 + y)` instead of raw targets. HLS targets span four
    /// orders of magnitude, so relative error is the natural loss.
    pub log_targets: bool,
}

impl Default for FitConfig {
    fn default() -> FitConfig {
        FitConfig {
            rounds: 96,
            learning_rate: 0.25,
            min_leaf: 2,
            lambda: 1e-3,
            val_stride: 5,
            log_targets: true,
        }
    }
}

/// One depth-1 regression tree: `x[feature] <= threshold ? left : right`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stump {
    feature: usize,
    threshold: f64,
    left: f64,
    right: f64,
}

/// A gradient-boosted ensemble of stumps for one target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gbt {
    base: f64,
    learning_rate: f64,
    stumps: Vec<Stump>,
}

impl Gbt {
    /// Fits `rounds` stumps to the residuals of `ys`, deterministically.
    fn fit(xs: &[Vec<f64>], ys: &[f64], cfg: &FitConfig) -> Gbt {
        let n = ys.len();
        let base = if n == 0 { 0.0 } else { ys.iter().sum::<f64>() / n as f64 };
        let mut residual: Vec<f64> = ys.iter().map(|y| y - base).collect();
        let mut stumps = Vec::with_capacity(cfg.rounds);
        let dims = xs.first().map_or(0, Vec::len);

        // Per-feature sorted row orders are fixed across rounds; compute
        // them once. Sorting is by total_cmp then row index, so ties are
        // broken identically on every machine.
        let orders: Vec<Vec<usize>> = (0..dims)
            .map(|d| {
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&a, &b| xs[a][d].total_cmp(&xs[b][d]).then(a.cmp(&b)));
                order
            })
            .collect();

        for _ in 0..cfg.rounds {
            let Some(stump) = best_stump(xs, &residual, &orders, cfg.min_leaf) else {
                break;
            };
            for (i, r) in residual.iter_mut().enumerate() {
                *r -= cfg.learning_rate * stump.apply(&xs[i]);
            }
            stumps.push(stump);
        }
        Gbt { base, learning_rate: cfg.learning_rate, stumps }
    }

    /// Predicts one row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.base + self.stumps.iter().map(|s| self.learning_rate * s.apply(x)).sum::<f64>()
    }
}

impl Stump {
    fn apply(&self, x: &[f64]) -> f64 {
        if x[self.feature] <= self.threshold {
            self.left
        } else {
            self.right
        }
    }
}

/// The least-squares-optimal stump over all (feature, threshold) splits,
/// scanning features in order and thresholds in ascending order with
/// strict first-wins tie-breaking (`<`, not `<=`), so the result is
/// independent of everything but the data.
fn best_stump(
    xs: &[Vec<f64>],
    residual: &[f64],
    orders: &[Vec<usize>],
    min_leaf: usize,
) -> Option<Stump> {
    let n = residual.len();
    if n < min_leaf.max(1) * 2 {
        return None;
    }
    let total: f64 = residual.iter().sum();
    let mut best: Option<(f64, Stump)> = None;
    for (feature, order) in orders.iter().enumerate() {
        let mut left_sum = 0.0;
        let mut left_n = 0usize;
        for w in order.windows(2) {
            left_sum += residual[w[0]];
            left_n += 1;
            // Only split between distinct feature values.
            if xs[w[0]][feature] == xs[w[1]][feature] {
                continue;
            }
            let right_n = n - left_n;
            if left_n < min_leaf || right_n < min_leaf {
                continue;
            }
            let right_sum = total - left_sum;
            // Maximizing sum-of-squares gain == minimizing SSE for a
            // two-leaf mean predictor.
            let gain = left_sum * left_sum / left_n as f64 + right_sum * right_sum / right_n as f64
                - total * total / n as f64;
            if best.as_ref().is_none_or(|(g, _)| gain > *g) {
                let threshold = 0.5 * (xs[w[0]][feature] + xs[w[1]][feature]);
                best = Some((
                    gain,
                    Stump {
                        feature,
                        threshold,
                        left: left_sum / left_n as f64,
                        right: right_sum / right_n as f64,
                    },
                ));
            }
        }
    }
    // A zero-gain split adds nothing; stop boosting.
    best.filter(|(gain, _)| *gain > 1e-12).map(|(_, stump)| stump)
}

/// Ridge regression over standardized features (closed form).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ridge {
    intercept: f64,
    weights: Vec<f64>,
    mean: Vec<f64>,
    scale: Vec<f64>,
}

impl Ridge {
    fn fit(xs: &[Vec<f64>], ys: &[f64], lambda: f64) -> Ridge {
        let n = xs.len();
        let d = xs.first().map_or(0, Vec::len);
        let mut mean = vec![0.0; d];
        let mut scale = vec![1.0; d];
        if n == 0 {
            return Ridge { intercept: 0.0, weights: vec![0.0; d], mean, scale };
        }
        for x in xs {
            for (m, v) in mean.iter_mut().zip(x) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        for (j, s) in scale.iter_mut().enumerate() {
            let var: f64 = xs.iter().map(|x| (x[j] - mean[j]).powi(2)).sum::<f64>() / n as f64;
            *s = var.sqrt().max(1e-12);
        }
        let std_row =
            |x: &[f64]| -> Vec<f64> { (0..d).map(|j| (x[j] - mean[j]) / scale[j]).collect() };

        let y_mean = ys.iter().sum::<f64>() / n as f64;
        // Normal equations A w = b with A = XᵀX + λI, b = Xᵀ(y - ȳ).
        let mut a = vec![vec![0.0; d]; d];
        let mut b = vec![0.0; d];
        for (x, y) in xs.iter().zip(ys) {
            let z = std_row(x);
            for j in 0..d {
                b[j] += z[j] * (y - y_mean);
                for k in 0..d {
                    a[j][k] += z[j] * z[k];
                }
            }
        }
        for (j, row) in a.iter_mut().enumerate() {
            row[j] += lambda * n as f64;
        }
        let weights = solve(a, b);
        Ridge { intercept: y_mean, weights, mean, scale }
    }

    /// Predicts one row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.intercept
            + self
                .weights
                .iter()
                .zip(x)
                .zip(self.mean.iter().zip(&self.scale))
                .map(|((w, v), (m, s))| w * (v - m) / s)
                .sum::<f64>()
    }
}

/// Gaussian elimination with partial pivoting; returns the zero vector
/// for a singular system (all-constant features under heavy collinearity
/// are regularized away by λ in practice).
#[allow(clippy::needless_range_loop)] // textbook elimination over two rows of `a`
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let d = b.len();
    for col in 0..d {
        let pivot = (col..d)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty range");
        if a[pivot][col].abs() < 1e-12 {
            return vec![0.0; d];
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..d {
            let f = a[row][col] / a[col][col];
            for k in col..d {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    let mut w = vec![0.0; d];
    for col in (0..d).rev() {
        let mut acc = b[col];
        for k in col + 1..d {
            acc -= a[col][k] * w[k];
        }
        w[col] = acc / a[col][col];
    }
    w
}

/// Which regressor serves predictions for a target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// Gradient-boosted stumps.
    Gbt,
    /// Ridge linear baseline.
    Ridge,
}

/// Held-out validation errors of one fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Rows used for fitting.
    pub rows_train: usize,
    /// Rows held out.
    pub rows_val: usize,
    /// Mean absolute percentage error per target, for the regressor that
    /// serves that target.
    pub mape: Vec<f64>,
    /// MAPE of the GBT per target (diagnostic).
    pub mape_gbt: Vec<f64>,
    /// MAPE of the ridge baseline per target (diagnostic).
    pub mape_ridge: Vec<f64>,
}

impl ValidationReport {
    /// The worst per-target error — the number the DSE driver compares
    /// against its fallback threshold.
    pub fn worst_mape(&self) -> f64 {
        self.mape.iter().fold(0.0f64, |a, &b| a.max(b))
    }
}

/// A fitted multi-target surrogate: one GBT + one ridge per target
/// column, with the better-validating regressor selected per target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurrogateModel {
    /// Feature column names, in the dataset's stable order.
    pub feature_names: Vec<String>,
    /// Target column names, in the dataset's stable order.
    pub target_names: Vec<String>,
    log_targets: bool,
    selected: Vec<ModelKind>,
    gbt: Vec<Gbt>,
    ridge: Vec<Ridge>,
    /// Held-out errors measured during the fit.
    pub validation: ValidationReport,
}

impl SurrogateModel {
    /// Fits the surrogate on a dataset. Deterministic: the same dataset
    /// and config produce a bit-identical model anywhere.
    pub fn fit(dataset: &Dataset, cfg: &FitConfig) -> SurrogateModel {
        let start = std::time::Instant::now();
        let targets = dataset.target_names.len();
        let (train, val): (Vec<usize>, Vec<usize>) = if cfg.val_stride >= 2 {
            (0..dataset.rows.len()).partition(|i| (i + 1) % cfg.val_stride != 0)
        } else {
            ((0..dataset.rows.len()).collect(), Vec::new())
        };
        let xs: Vec<Vec<f64>> = train.iter().map(|&i| dataset.rows[i].features.clone()).collect();
        let encode = |y: f64| if cfg.log_targets { y.max(0.0).ln_1p() } else { y };

        let mut gbts = Vec::with_capacity(targets);
        let mut ridges = Vec::with_capacity(targets);
        for t in 0..targets {
            let ys: Vec<f64> = train.iter().map(|&i| encode(dataset.rows[i].targets[t])).collect();
            gbts.push(Gbt::fit(&xs, &ys, cfg));
            ridges.push(Ridge::fit(&xs, &ys, cfg.lambda));
        }

        let decode = |y: f64| if cfg.log_targets { y.exp_m1().max(0.0) } else { y };
        let mape_of = |predict: &dyn Fn(&[f64], usize) -> f64, t: usize| -> f64 {
            if val.is_empty() {
                return 0.0;
            }
            let sum: f64 = val
                .iter()
                .map(|&i| {
                    let truth = dataset.rows[i].targets[t];
                    let pred = decode(predict(&dataset.rows[i].features, t));
                    (pred - truth).abs() / truth.abs().max(1.0)
                })
                .sum();
            sum / val.len() as f64
        };
        let mape_gbt: Vec<f64> =
            (0..targets).map(|t| mape_of(&|x, t| gbts[t].predict(x), t)).collect();
        let mape_ridge: Vec<f64> =
            (0..targets).map(|t| mape_of(&|x, t| ridges[t].predict(x), t)).collect();
        let selected: Vec<ModelKind> = (0..targets)
            .map(|t| if mape_gbt[t] <= mape_ridge[t] { ModelKind::Gbt } else { ModelKind::Ridge })
            .collect();
        let mape: Vec<f64> = (0..targets)
            .map(|t| match selected[t] {
                ModelKind::Gbt => mape_gbt[t],
                ModelKind::Ridge => mape_ridge[t],
            })
            .collect();

        everest_telemetry::metrics()
            .observe("dse.model.fit_us", start.elapsed().as_secs_f64() * 1e6);
        SurrogateModel {
            feature_names: dataset.feature_names.clone(),
            target_names: dataset.target_names.clone(),
            log_targets: cfg.log_targets,
            selected,
            gbt: gbts,
            ridge: ridges,
            validation: ValidationReport {
                rows_train: train.len(),
                rows_val: val.len(),
                mape,
                mape_gbt,
                mape_ridge,
            },
        }
    }

    /// Predicts every target for one feature row (in the model's target
    /// order), timing the call on the `dse.model.predict_us` histogram.
    pub fn predict(&self, features: &[f64]) -> Vec<f64> {
        let start = std::time::Instant::now();
        let decode = |y: f64| if self.log_targets { y.exp_m1().max(0.0) } else { y };
        let out = self
            .selected
            .iter()
            .enumerate()
            .map(|(t, kind)| {
                decode(match kind {
                    ModelKind::Gbt => self.gbt[t].predict(features),
                    ModelKind::Ridge => self.ridge[t].predict(features),
                })
            })
            .collect();
        everest_telemetry::metrics()
            .observe("dse.model.predict_us", start.elapsed().as_secs_f64() * 1e6);
        out
    }

    /// Mean absolute percentage error per target over an arbitrary
    /// dataset (e.g. a fresh evaluation table).
    pub fn evaluate(&self, dataset: &Dataset) -> Vec<f64> {
        let targets = self.target_names.len();
        let mut err = vec![0.0; targets];
        if dataset.rows.is_empty() {
            return err;
        }
        for row in &dataset.rows {
            let pred = self.predict(&row.features);
            for t in 0..targets {
                err[t] += (pred[t] - row.targets[t]).abs() / row.targets[t].abs().max(1.0);
            }
        }
        for e in &mut err {
            *e /= dataset.rows.len() as f64;
        }
        err
    }

    /// Serializes the model to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("model serializes")
    }

    /// Parses a model from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_json(json: &str) -> Result<SurrogateModel, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DatasetRow};
    use crate::knob::KnobVector;
    use crate::transform::Target;

    /// A synthetic dataset with `y = f(x)` over a single active feature.
    fn synthetic(f: impl Fn(f64) -> f64, n: usize) -> Dataset {
        let rows = (0..n)
            .map(|i| {
                let x = i as f64;
                DatasetRow {
                    kernel: "synthetic".into(),
                    fingerprint: 0,
                    seed: 0,
                    index: i,
                    knob: KnobVector::Hardware {
                        target: Target::FpgaBus,
                        banks: 1,
                        pe: 1,
                        pipeline: true,
                        dift: false,
                    },
                    features: vec![x, 1.0],
                    targets: vec![f(x)],
                }
            })
            .collect();
        Dataset {
            feature_names: vec!["x".into(), "bias".into()],
            target_names: vec!["y".into()],
            rows,
        }
    }

    #[test]
    fn fit_is_deterministic() {
        let data = synthetic(|x| 3.0 * x + 7.0 + (x * 0.7).sin(), 64);
        let a = SurrogateModel::fit(&data, &FitConfig::default());
        let b = SurrogateModel::fit(&data, &FitConfig::default());
        assert_eq!(a.to_json(), b.to_json(), "same data + config must fit bit-identically");
    }

    #[test]
    fn gbt_tracks_a_step_function_ridge_cannot() {
        let cfg = FitConfig { log_targets: false, ..FitConfig::default() };
        let data = synthetic(|x| if x < 32.0 { 10.0 } else { 500.0 }, 64);
        let model = SurrogateModel::fit(&data, &cfg);
        let low = model.predict(&[10.0, 1.0])[0];
        let high = model.predict(&[50.0, 1.0])[0];
        assert!(low < 100.0 && high > 400.0, "step not captured: low={low} high={high}");
    }

    #[test]
    fn ridge_recovers_a_linear_law() {
        let data = synthetic(|x| 4.0 * x + 11.0, 40);
        let cfg = FitConfig { log_targets: false, rounds: 0, ..FitConfig::default() };
        let model = SurrogateModel::fit(&data, &cfg);
        // With zero boosting rounds the GBT is a constant, so validation
        // must select ridge — and ridge should nail an exact linear law.
        assert_eq!(model.selected, vec![ModelKind::Ridge]);
        let pred = model.predict(&[100.0, 1.0])[0];
        assert!((pred - 411.0).abs() < 1.0, "pred={pred}");
    }

    #[test]
    fn json_round_trip_preserves_predictions() {
        let data = synthetic(|x| x * x, 48);
        let model = SurrogateModel::fit(&data, &FitConfig::default());
        let back = SurrogateModel::from_json(&model.to_json()).unwrap();
        for x in [0.0, 7.0, 31.5, 60.0] {
            assert_eq!(model.predict(&[x, 1.0]), back.predict(&[x, 1.0]));
        }
    }

    #[test]
    fn validation_reports_holdout_counts() {
        let data = synthetic(|x| 2.0 * x, 50);
        let model = SurrogateModel::fit(&data, &FitConfig::default());
        assert_eq!(model.validation.rows_train + model.validation.rows_val, 50);
        assert!(model.validation.rows_val > 0);
        assert!(model.validation.worst_mape() >= 0.0);
    }
}
