//! Variant records: the "meta-information about the variants \[that\] will
//! be provided to the runtime system to support dynamic selection"
//! (paper III-B).

use crate::transform::{SpecExt, Target, Transform};
use serde::{Deserialize, Serialize};

/// Predicted metrics of one variant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Kernel latency for one invocation, microseconds (excluding data
    /// movement to the target).
    pub latency_us: f64,
    /// Data-movement time to/from the target per invocation, microseconds.
    pub transfer_us: f64,
    /// Energy per invocation, millijoules.
    pub energy_mj: f64,
    /// FPGA LUTs occupied (0 for software variants).
    pub area_luts: u64,
    /// FPGA BRAMs occupied (0 for software variants).
    pub area_brams: u64,
}

impl Metrics {
    /// End-to-end time per invocation (compute + transfer).
    pub fn total_us(&self) -> f64 {
        self.latency_us + self.transfer_us
    }
}

/// One generated variant of a kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Variant {
    /// Unique id (`kernel#index`).
    pub id: String,
    /// Kernel this variant implements.
    pub kernel: String,
    /// Transformations applied.
    pub transforms: Vec<Transform>,
    /// Predicted metrics.
    pub metrics: Metrics,
}

impl Variant {
    /// Execution target of this variant.
    pub fn target(&self) -> Target {
        self.transforms.target()
    }

    /// `true` for FPGA variants.
    pub fn is_hardware(&self) -> bool {
        self.target().is_fpga()
    }

    /// Serializes to the JSON exchanged between compile time and runtime.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("variant serializes")
    }

    /// Parses a variant record from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_json(json: &str) -> Result<Variant, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Variant {
        Variant {
            id: "mm#3".into(),
            kernel: "mm".into(),
            transforms: vec![Transform::OnTarget(Target::FpgaBus), Transform::Banks(4)],
            metrics: Metrics {
                latency_us: 120.0,
                transfer_us: 30.0,
                energy_mj: 1.5,
                area_luts: 40_000,
                area_brams: 64,
            },
        }
    }

    #[test]
    fn total_time_sums_compute_and_transfer() {
        assert_eq!(sample().metrics.total_us(), 150.0);
    }

    #[test]
    fn hardware_detection() {
        assert!(sample().is_hardware());
        let sw = Variant { transforms: vec![], ..sample() };
        assert!(!sw.is_hardware());
    }

    #[test]
    fn json_round_trip() {
        let v = sample();
        let back = Variant::from_json(&v.to_json()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(Variant::from_json("{not json").is_err());
    }
}
