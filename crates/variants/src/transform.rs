//! The transformation vocabulary from which variants are assembled.

use serde::{Deserialize, Serialize};

/// Data layout for record-heavy kernels (the paper's particles example:
//  "layouts of particles as array-of-structures or structure-of-arrays").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Layout {
    /// Array of structures: good locality per record.
    Aos,
    /// Structure of arrays: good vectorization/bandwidth.
    Soa,
}

/// Execution target of a variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Target {
    /// Software on the host CPU.
    Cpu,
    /// Bus-attached (OpenCAPI) FPGA accelerator.
    FpgaBus,
    /// Network-attached (cloudFPGA) accelerator.
    FpgaNetwork,
}

impl Target {
    /// `true` for hardware targets.
    pub fn is_fpga(&self) -> bool {
        !matches!(self, Target::Cpu)
    }
}

impl std::fmt::Display for Target {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Target::Cpu => "cpu",
            Target::FpgaBus => "fpga-bus",
            Target::FpgaNetwork => "fpga-net",
        };
        f.write_str(s)
    }
}

/// A single transformation applied to the baseline kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Transform {
    /// Run on the given target.
    OnTarget(Target),
    /// Software threading degree.
    Threads(u32),
    /// Data layout choice.
    DataLayout(Layout),
    /// Loop tiling with the given tile edge (software cache blocking).
    Tile(usize),
    /// Memory banks for on-chip buffers (hardware).
    Banks(usize),
    /// Pipeline innermost loops (hardware).
    Pipeline(bool),
    /// Harden with DIFT taint tracking (hardware).
    Dift(bool),
    /// Processing-element replication (hardware outer-loop unroll).
    Pe(usize),
}

/// A variant specification: an ordered list of transforms. Helper
/// accessors pull out individual knobs with defaults.
pub trait SpecExt {
    /// The execution target (default CPU).
    fn target(&self) -> Target;
    /// Software threads (default 1).
    fn threads(&self) -> u32;
    /// Layout (default AoS).
    fn layout(&self) -> Layout;
    /// Tile size (None = untiled).
    fn tile(&self) -> Option<usize>;
    /// Banks (default 2).
    fn banks(&self) -> usize;
    /// Pipelining (default true).
    fn pipelined(&self) -> bool;
    /// DIFT hardening (default false).
    fn dift(&self) -> bool;
    /// Processing elements (default 8).
    fn pe(&self) -> usize;
}

impl SpecExt for [Transform] {
    fn target(&self) -> Target {
        self.iter()
            .find_map(|t| match t {
                Transform::OnTarget(tg) => Some(*tg),
                _ => None,
            })
            .unwrap_or(Target::Cpu)
    }

    fn threads(&self) -> u32 {
        self.iter()
            .find_map(|t| match t {
                Transform::Threads(n) => Some(*n),
                _ => None,
            })
            .unwrap_or(1)
    }

    fn layout(&self) -> Layout {
        self.iter()
            .find_map(|t| match t {
                Transform::DataLayout(l) => Some(*l),
                _ => None,
            })
            .unwrap_or(Layout::Aos)
    }

    fn tile(&self) -> Option<usize> {
        self.iter().find_map(|t| match t {
            Transform::Tile(s) => Some(*s),
            _ => None,
        })
    }

    fn banks(&self) -> usize {
        self.iter()
            .find_map(|t| match t {
                Transform::Banks(b) => Some(*b),
                _ => None,
            })
            .unwrap_or(2)
    }

    fn pipelined(&self) -> bool {
        self.iter()
            .find_map(|t| match t {
                Transform::Pipeline(p) => Some(*p),
                _ => None,
            })
            .unwrap_or(true)
    }

    fn dift(&self) -> bool {
        self.iter()
            .find_map(|t| match t {
                Transform::Dift(d) => Some(*d),
                _ => None,
            })
            .unwrap_or(false)
    }

    fn pe(&self) -> usize {
        self.iter()
            .find_map(|t| match t {
                Transform::Pe(n) => Some(*n),
                _ => None,
            })
            .unwrap_or(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_accessors_with_defaults() {
        let spec: Vec<Transform> = vec![];
        assert_eq!(spec.target(), Target::Cpu);
        assert_eq!(spec.threads(), 1);
        assert_eq!(spec.layout(), Layout::Aos);
        assert_eq!(spec.tile(), None);
        assert_eq!(spec.banks(), 2);
        assert!(spec.pipelined());
        assert!(!spec.dift());
        assert_eq!(spec.pe(), 8);
    }

    #[test]
    fn spec_accessors_with_values() {
        let spec = [
            Transform::OnTarget(Target::FpgaBus),
            Transform::Banks(8),
            Transform::Pipeline(false),
            Transform::Dift(true),
            Transform::Threads(4),
            Transform::Tile(32),
            Transform::DataLayout(Layout::Soa),
            Transform::Pe(16),
        ];
        assert_eq!(spec.target(), Target::FpgaBus);
        assert!(spec.target().is_fpga());
        assert_eq!(spec.banks(), 8);
        assert!(!spec.pipelined());
        assert!(spec.dift());
        assert_eq!(spec.threads(), 4);
        assert_eq!(spec.tile(), Some(32));
        assert_eq!(spec.layout(), Layout::Soa);
        assert_eq!(spec.pe(), 16);
    }

    #[test]
    fn transforms_serialize_round_trip() {
        let spec = vec![Transform::OnTarget(Target::FpgaNetwork), Transform::Banks(4)];
        let json = serde_json::to_string(&spec).unwrap();
        let back: Vec<Transform> = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn target_display() {
        assert_eq!(Target::Cpu.to_string(), "cpu");
        assert_eq!(Target::FpgaNetwork.to_string(), "fpga-net");
    }
}
