//! The typed knob vector: one design point, named.
//!
//! Historically a design point crossed crate boundaries as an ad-hoc
//! `Vec<Transform>` and every consumer re-derived the knobs it cared
//! about through [`SpecExt`] defaults. That worked until three consumers
//! had to agree exactly: enumeration ([`DesignSpace::enumerate_knobs`]),
//! synthesis memoization ([`everest_hls::cache::ConfigKey`] via
//! [`KnobVector::hls_config`]) and the surrogate cost model's feature
//! encoder ([`KnobVector::to_features`]). A [`KnobVector`] is the single
//! typed value all three derive from, so they can never skew: the memo
//! key and the model features are both pure functions of the same struct
//! the enumerator produced.
//!
//! [`DesignSpace::enumerate_knobs`]: crate::space::DesignSpace::enumerate_knobs
//! [`SpecExt`]: crate::transform::SpecExt

use crate::analysis::KernelWorkload;
use crate::transform::{Layout, SpecExt, Target, Transform};
use everest_hls::accel::HlsConfig;
use everest_hls::dift::DiftConfig;
use everest_hls::memory::Scheme;
use serde::value::Value;
use serde::{DeError, Deserialize, Serialize};

/// Stable ordering of the knob feature columns emitted by
/// [`KnobVector::to_features`]. Datasets, serialized models and the
/// surrogate's predict path all index features by this list, so the
/// order is part of the on-disk schema — append, never reorder.
pub const KNOB_FEATURES: [&str; 10] = [
    "is_fpga",
    "is_network",
    "threads",
    "layout_soa",
    "tile",
    "banks",
    "pe",
    "eff_pe",
    "pipeline",
    "dift",
];

/// Stable ordering of the kernel feature columns emitted by
/// [`kernel_features`]. Same append-only contract as [`KNOB_FEATURES`].
pub const KERNEL_FEATURES: [&str; 4] = ["flops", "bytes", "intensity", "max_dim"];

/// Encodes a kernel workload as feature columns in [`KERNEL_FEATURES`]
/// order.
pub fn kernel_features(workload: &KernelWorkload) -> [f64; 4] {
    [workload.flops, workload.bytes, workload.intensity(), workload.max_dim as f64]
}

/// One fully-specified design point: either a software operating point or
/// a hardware (HLS) operating point. The enum split mirrors the two knob
/// groups of [`crate::space::DesignSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KnobVector {
    /// A CPU point: threading, layout and optional tiling.
    Software {
        /// Software threading degree.
        threads: u32,
        /// Data layout.
        layout: Layout,
        /// Tile size (`None` = untiled).
        tile: Option<usize>,
    },
    /// An FPGA point: attachment plus the HLS-relevant knobs.
    Hardware {
        /// Attachment target (bus or network FPGA).
        target: Target,
        /// Memory banks per on-chip buffer.
        banks: usize,
        /// Processing-element replication.
        pe: usize,
        /// Pipeline innermost loops.
        pipeline: bool,
        /// DIFT taint-tracking hardening.
        dift: bool,
    },
}

impl KnobVector {
    /// The execution target of this point.
    pub fn target(&self) -> Target {
        match self {
            KnobVector::Software { .. } => Target::Cpu,
            KnobVector::Hardware { target, .. } => *target,
        }
    }

    /// `true` for FPGA points.
    pub fn is_hardware(&self) -> bool {
        matches!(self, KnobVector::Hardware { .. })
    }

    /// Encodes the knobs as feature columns in [`KNOB_FEATURES`] order.
    /// Absent knobs encode as their neutral value (software points have
    /// `banks = pe = 0`, hardware points have `threads = 1`), so the
    /// vector length is identical for every point and a single model can
    /// see the whole space. `eff_pe` is the port-clamped replication the
    /// synthesizer actually exploits (`min(pe, banks × ports_per_bank)`)
    /// — the interaction latency and area follow, surfaced as its own
    /// column so a shallow model does not have to learn the clamp.
    pub fn to_features(&self) -> [f64; 10] {
        match *self {
            KnobVector::Software { threads, layout, tile } => [
                0.0,
                0.0,
                threads as f64,
                f64::from(layout == Layout::Soa),
                tile.unwrap_or(0) as f64,
                0.0,
                0.0,
                0.0,
                0.0,
                0.0,
            ],
            KnobVector::Hardware { target, banks, pe, pipeline, dift } => {
                let config = self.hls_config();
                let eff_pe = pe.clamp(1, (config.banks * config.ports_per_bank).max(1));
                [
                    1.0,
                    f64::from(target == Target::FpgaNetwork),
                    1.0,
                    0.0,
                    0.0,
                    banks as f64,
                    pe as f64,
                    eff_pe as f64,
                    f64::from(pipeline),
                    f64::from(dift),
                ]
            }
        }
    }

    /// Lowers to the transform list the rest of the pipeline (variant
    /// records, HLS lowering, the runtime's variant metadata) consumes.
    /// The element order matches what [`DesignSpace::enumerate`] has
    /// always emitted, so serialized [`crate::Variant`]s are unchanged.
    ///
    /// [`DesignSpace::enumerate`]: crate::space::DesignSpace::enumerate
    pub fn to_transforms(&self) -> Vec<Transform> {
        match *self {
            KnobVector::Software { threads, layout, tile } => {
                let mut spec = vec![
                    Transform::OnTarget(Target::Cpu),
                    Transform::Threads(threads),
                    Transform::DataLayout(layout),
                ];
                if let Some(size) = tile {
                    spec.push(Transform::Tile(size));
                }
                spec
            }
            KnobVector::Hardware { target, banks, pe, pipeline, dift } => vec![
                Transform::OnTarget(target),
                Transform::Banks(banks),
                Transform::Pe(pe),
                Transform::Pipeline(pipeline),
                Transform::Dift(dift),
            ],
        }
    }

    /// Recovers the typed knobs from a legacy transform list, applying
    /// the same defaults [`SpecExt`] always has. `to_transforms` ∘
    /// `from_spec` is the identity on everything the enumerator emits.
    pub fn from_spec(spec: &[Transform]) -> KnobVector {
        if spec.target().is_fpga() {
            KnobVector::Hardware {
                target: spec.target(),
                banks: spec.banks(),
                pe: spec.pe(),
                pipeline: spec.pipelined(),
                dift: spec.dift(),
            }
        } else {
            KnobVector::Software {
                threads: spec.threads(),
                layout: spec.layout(),
                tile: spec.tile(),
            }
        }
    }

    /// The HLS configuration this point synthesizes under. Software
    /// knobs never reach the configuration (a software point returns the
    /// default config), which is exactly why variants differing only in
    /// software knobs or attachment share one
    /// [`everest_hls::cache::ConfigKey`] memo entry.
    pub fn hls_config(&self) -> HlsConfig {
        match *self {
            KnobVector::Software { .. } => HlsConfig::default(),
            KnobVector::Hardware { banks, pe, pipeline, dift, .. } => HlsConfig {
                banks,
                pipeline,
                scheme: Scheme::Cyclic,
                pe,
                // Each PE needs its own port: banks scale with the PE count.
                ports_per_bank: 2,
                dift: dift.then(DiftConfig::default),
                ..HlsConfig::default()
            },
        }
    }
}

// Externally-tagged serde, written out by hand because the offline serde
// shim's derive does not handle struct-like enum variants.
impl Serialize for KnobVector {
    fn to_value(&self) -> Value {
        match *self {
            KnobVector::Software { threads, layout, tile } => Value::Object(vec![(
                "Software".to_string(),
                Value::Object(vec![
                    ("threads".to_string(), threads.to_value()),
                    ("layout".to_string(), layout.to_value()),
                    ("tile".to_string(), tile.to_value()),
                ]),
            )]),
            KnobVector::Hardware { target, banks, pe, pipeline, dift } => Value::Object(vec![(
                "Hardware".to_string(),
                Value::Object(vec![
                    ("target".to_string(), target.to_value()),
                    ("banks".to_string(), banks.to_value()),
                    ("pe".to_string(), pe.to_value()),
                    ("pipeline".to_string(), pipeline.to_value()),
                    ("dift".to_string(), dift.to_value()),
                ]),
            )]),
        }
    }
}

impl Deserialize for KnobVector {
    fn from_value(v: &Value) -> Result<KnobVector, DeError> {
        let field = |obj: &Value, name: &str| -> Result<Value, DeError> {
            obj.get(name)
                .cloned()
                .ok_or_else(|| DeError(format!("missing field `{name}` in KnobVector")))
        };
        if let Some(body) = v.get("Software") {
            return Ok(KnobVector::Software {
                threads: u32::from_value(&field(body, "threads")?)?,
                layout: Layout::from_value(&field(body, "layout")?)?,
                tile: Option::from_value(&field(body, "tile")?)?,
            });
        }
        if let Some(body) = v.get("Hardware") {
            return Ok(KnobVector::Hardware {
                target: Target::from_value(&field(body, "target")?)?,
                banks: usize::from_value(&field(body, "banks")?)?,
                pe: usize::from_value(&field(body, "pe")?)?,
                pipeline: bool::from_value(&field(body, "pipeline")?)?,
                dift: bool::from_value(&field(body, "dift")?)?,
            });
        }
        Err(DeError::expected("KnobVector (Software or Hardware object)", v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_hls::cache::ConfigKey;

    #[test]
    fn transform_round_trip_is_identity() {
        let points = [
            KnobVector::Software { threads: 4, layout: Layout::Soa, tile: Some(32) },
            KnobVector::Software { threads: 1, layout: Layout::Aos, tile: None },
            KnobVector::Hardware {
                target: Target::FpgaNetwork,
                banks: 16,
                pe: 32,
                pipeline: false,
                dift: true,
            },
        ];
        for knob in points {
            assert_eq!(KnobVector::from_spec(&knob.to_transforms()), knob);
        }
    }

    #[test]
    fn feature_vector_has_stable_width_and_names() {
        let sw = KnobVector::Software { threads: 2, layout: Layout::Aos, tile: None };
        let hw = KnobVector::Hardware {
            target: Target::FpgaBus,
            banks: 4,
            pe: 8,
            pipeline: true,
            dift: false,
        };
        assert_eq!(sw.to_features().len(), KNOB_FEATURES.len());
        assert_eq!(hw.to_features().len(), KNOB_FEATURES.len());
        // Spot-check the documented ordering.
        assert_eq!(KNOB_FEATURES[0], "is_fpga");
        assert_eq!(sw.to_features()[0], 0.0);
        assert_eq!(hw.to_features()[0], 1.0);
        assert_eq!(KNOB_FEATURES[5], "banks");
        assert_eq!(hw.to_features()[5], 4.0);
    }

    #[test]
    fn serde_round_trip_is_identity() {
        let points = [
            KnobVector::Software { threads: 8, layout: Layout::Soa, tile: None },
            KnobVector::Hardware {
                target: Target::FpgaBus,
                banks: 4,
                pe: 8,
                pipeline: true,
                dift: true,
            },
        ];
        for knob in points {
            let json = serde_json::to_string(&knob).unwrap();
            let back: KnobVector = serde_json::from_str(&json).unwrap();
            assert_eq!(back, knob, "round trip through {json}");
        }
    }

    #[test]
    fn memo_key_is_a_pure_function_of_the_hardware_knobs() {
        let point = |target, banks| KnobVector::Hardware {
            target,
            banks,
            pe: 16,
            pipeline: true,
            dift: false,
        };
        let a = point(Target::FpgaBus, 8);
        // Attachment differs, HLS-relevant knobs match: same memo key.
        let b = point(Target::FpgaNetwork, 8);
        assert_eq!(ConfigKey::of(&a.hls_config()), ConfigKey::of(&b.hls_config()));
        // A differing HLS knob must change the key.
        let c = point(Target::FpgaBus, 16);
        assert_ne!(ConfigKey::of(&a.hls_config()), ConfigKey::of(&c.hls_config()));
    }
}
