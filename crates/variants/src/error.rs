//! Errors from variant generation and design-space exploration.

use everest_hls::HlsError;
use std::fmt;

/// Result alias for DSE operations.
pub type VariantResult<T> = Result<T, VariantError>;

/// A failure while exploring a design space.
#[derive(Debug, Clone, PartialEq)]
pub enum VariantError {
    /// The design space is malformed (e.g. an empty knob dimension that
    /// would silently enumerate zero points).
    Space(String),
    /// HLS synthesis failed for a hardware point.
    Hls(HlsError),
}

impl fmt::Display for VariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VariantError::Space(msg) => write!(f, "design space: {msg}"),
            VariantError::Hls(e) => write!(f, "hls: {e}"),
        }
    }
}

impl std::error::Error for VariantError {}

impl From<HlsError> for VariantError {
    fn from(e: HlsError) -> VariantError {
        VariantError::Hls(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_both_variants() {
        let e = VariantError::Space("'threads' is empty".into());
        assert_eq!(e.to_string(), "design space: 'threads' is empty");
        let e: VariantError = HlsError::Config("banks must be >= 1".into()).into();
        assert!(e.to_string().starts_with("hls:"));
    }
}
