//! Pareto-front filtering over (time, energy, area).

use crate::variant::Variant;

/// Objective vector of a variant: minimize all three components.
fn objectives(v: &Variant) -> (f64, f64, u64) {
    (v.metrics.total_us(), v.metrics.energy_mj, v.metrics.area_luts)
}

/// `a` dominates `b` when it is no worse in every objective and strictly
/// better in at least one.
pub fn dominates(a: &Variant, b: &Variant) -> bool {
    let (at, ae, aa) = objectives(a);
    let (bt, be, ba) = objectives(b);
    let no_worse = at <= bt && ae <= be && aa <= ba;
    let better = at < bt || ae < be || aa < ba;
    no_worse && better
}

/// An `f64` ordered by [`f64::total_cmp`], usable as a `BTreeMap` key.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &OrdF64) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &OrdF64) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Flags the dominated variants in O(n log n): sort by (time, energy,
/// area), then sweep groups of equal objective vectors against a
/// staircase of the processed points' (energy, min area). A point is
/// dominated iff some lexicographically smaller point (which necessarily
/// has time ≤ its time, and differs in at least one objective) is no
/// worse in energy and area — exactly the strict-dominance predicate of
/// [`dominates`]. Equal vectors share a group and never dominate each
/// other.
fn dominated_flags(variants: &[Variant]) -> Vec<bool> {
    let objs: Vec<(f64, f64, u64)> = variants.iter().map(objectives).collect();
    let mut order: Vec<usize> = (0..variants.len()).collect();
    order.sort_by(|&a, &b| {
        objs[a]
            .0
            .total_cmp(&objs[b].0)
            .then(objs[a].1.total_cmp(&objs[b].1))
            .then(objs[a].2.cmp(&objs[b].2))
    });

    let mut dominated = vec![false; variants.len()];
    // Staircase over processed groups: energy → minimal area among points
    // with energy ≤ key; areas strictly decrease as energies increase.
    let mut stairs: std::collections::BTreeMap<OrdF64, u64> = std::collections::BTreeMap::new();
    let mut g = 0;
    while g < order.len() {
        let mut h = g + 1;
        while h < order.len() && objs[order[h]] == objs[order[g]] {
            h += 1;
        }
        let (_, energy, area) = objs[order[g]];
        if stairs.range(..=OrdF64(energy)).next_back().is_some_and(|(_, &a)| a <= area) {
            for &i in &order[g..h] {
                dominated[i] = true;
            }
        } else {
            // The group improves the staircase: remove the entries it
            // covers (energy ≥ this, area ≥ this), then insert. Each
            // entry is inserted and removed at most once overall.
            let covered: Vec<OrdF64> = stairs
                .range(OrdF64(energy)..)
                .take_while(|(_, &a)| a >= area)
                .map(|(&e, _)| e)
                .collect();
            for e in covered {
                stairs.remove(&e);
            }
            stairs.insert(OrdF64(energy), area);
        }
        g = h;
    }
    dominated
}

/// Extracts the Pareto-optimal subset (non-dominated variants), preserving
/// input order. Runs in O(n log n) via a sort-then-sweep filter.
pub fn pareto_front(variants: &[Variant]) -> Vec<Variant> {
    let mut span = everest_telemetry::span("variants.pareto", "variants");
    span.attr("candidates", variants.len());
    let dominated = dominated_flags(variants);
    let front: Vec<Variant> = variants
        .iter()
        .zip(&dominated)
        .filter(|(_, dominated)| !**dominated)
        .map(|(v, _)| v.clone())
        .collect();
    span.attr("front", front.len());
    front
}

/// The variant with the lowest end-to-end time.
pub fn fastest(variants: &[Variant]) -> Option<&Variant> {
    variants.iter().min_by(|a, b| a.metrics.total_us().total_cmp(&b.metrics.total_us()))
}

/// The variant with the lowest energy.
pub fn most_efficient(variants: &[Variant]) -> Option<&Variant> {
    variants.iter().min_by(|a, b| a.metrics.energy_mj.total_cmp(&b.metrics.energy_mj))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variant::Metrics;

    fn v(id: &str, time: f64, energy: f64, luts: u64) -> Variant {
        Variant {
            id: id.into(),
            kernel: "k".into(),
            transforms: vec![],
            metrics: Metrics {
                latency_us: time,
                transfer_us: 0.0,
                energy_mj: energy,
                area_luts: luts,
                area_brams: 0,
            },
        }
    }

    #[test]
    fn dominated_points_are_filtered() {
        let variants = vec![
            v("good", 10.0, 1.0, 0),
            v("dominated", 20.0, 2.0, 0),
            v("tradeoff", 5.0, 3.0, 1000),
        ];
        let front = pareto_front(&variants);
        let ids: Vec<&str> = front.iter().map(|v| v.id.as_str()).collect();
        assert_eq!(ids, vec!["good", "tradeoff"]);
    }

    #[test]
    fn identical_points_all_survive() {
        let variants = vec![v("a", 1.0, 1.0, 0), v("b", 1.0, 1.0, 0)];
        assert_eq!(pareto_front(&variants).len(), 2);
    }

    #[test]
    fn front_never_empty_for_nonempty_input() {
        let variants = vec![v("x", 3.0, 9.0, 7)];
        assert_eq!(pareto_front(&variants).len(), 1);
    }

    #[test]
    fn dominance_is_strict() {
        let a = v("a", 1.0, 1.0, 0);
        let b = v("b", 1.0, 1.0, 0);
        assert!(!dominates(&a, &b));
        let c = v("c", 0.5, 1.0, 0);
        assert!(dominates(&c, &a));
        assert!(!dominates(&a, &c));
    }

    #[test]
    fn extreme_selectors() {
        let variants = vec![v("fast", 1.0, 10.0, 0), v("eff", 10.0, 1.0, 0)];
        assert_eq!(fastest(&variants).unwrap().id, "fast");
        assert_eq!(most_efficient(&variants).unwrap().id, "eff");
        assert!(fastest(&[]).is_none());
    }
}
