//! Pareto-front filtering over (time, energy, area).

use crate::variant::Variant;

/// Objective vector of a variant: minimize all three components.
pub(crate) fn objectives(v: &Variant) -> (f64, f64, u64) {
    (v.metrics.total_us(), v.metrics.energy_mj, v.metrics.area_luts)
}

/// `a` dominates `b` when it is no worse in every objective and strictly
/// better in at least one.
pub fn dominates(a: &Variant, b: &Variant) -> bool {
    let (at, ae, aa) = objectives(a);
    let (bt, be, ba) = objectives(b);
    let no_worse = at <= bt && ae <= be && aa <= ba;
    let better = at < bt || ae < be || aa < ba;
    no_worse && better
}

/// An `f64` ordered by [`f64::total_cmp`], usable as a `BTreeMap` key.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &OrdF64) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &OrdF64) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Flags the dominated variants in O(n log n): sort by (time, energy,
/// area), then sweep groups of equal objective vectors against a
/// staircase of the processed points' (energy, min area). A point is
/// dominated iff some lexicographically smaller point (which necessarily
/// has time ≤ its time, and differs in at least one objective) is no
/// worse in energy and area — exactly the strict-dominance predicate of
/// [`dominates`]. Equal vectors share a group and never dominate each
/// other.
fn dominated_flags(variants: &[Variant]) -> Vec<bool> {
    dominated_objective_flags(&variants.iter().map(objectives).collect::<Vec<_>>())
}

/// The same sweep over bare objective triples, shared with the
/// surrogate-guided explorer (which tests domination over *predicted*
/// objectives that have no backing [`Variant`] yet).
pub(crate) fn dominated_objective_flags(objs: &[(f64, f64, u64)]) -> Vec<bool> {
    let mut order: Vec<usize> = (0..objs.len()).collect();
    order.sort_by(|&a, &b| {
        objs[a]
            .0
            .total_cmp(&objs[b].0)
            .then(objs[a].1.total_cmp(&objs[b].1))
            .then(objs[a].2.cmp(&objs[b].2))
    });

    let mut dominated = vec![false; objs.len()];
    // Staircase over processed groups: energy → minimal area among points
    // with energy ≤ key; areas strictly decrease as energies increase.
    let mut stairs: std::collections::BTreeMap<OrdF64, u64> = std::collections::BTreeMap::new();
    let mut g = 0;
    while g < order.len() {
        let mut h = g + 1;
        while h < order.len() && objs[order[h]] == objs[order[g]] {
            h += 1;
        }
        let (_, energy, area) = objs[order[g]];
        if stairs.range(..=OrdF64(energy)).next_back().is_some_and(|(_, &a)| a <= area) {
            for &i in &order[g..h] {
                dominated[i] = true;
            }
        } else {
            // The group improves the staircase: remove the entries it
            // covers (energy ≥ this, area ≥ this), then insert. Each
            // entry is inserted and removed at most once overall.
            let covered: Vec<OrdF64> = stairs
                .range(OrdF64(energy)..)
                .take_while(|(_, &a)| a >= area)
                .map(|(&e, _)| e)
                .collect();
            for e in covered {
                stairs.remove(&e);
            }
            stairs.insert(OrdF64(energy), area);
        }
        g = h;
    }
    dominated
}

/// Extracts the Pareto-optimal subset (non-dominated variants), preserving
/// input order. Runs in O(n log n) via a sort-then-sweep filter.
pub fn pareto_front(variants: &[Variant]) -> Vec<Variant> {
    let mut span = everest_telemetry::span("variants.pareto", "variants");
    span.attr("candidates", variants.len());
    let dominated = dominated_flags(variants);
    let front: Vec<Variant> = variants
        .iter()
        .zip(&dominated)
        .filter(|(_, dominated)| !**dominated)
        .map(|(v, _)| v.clone())
        .collect();
    span.attr("front", front.len());
    front
}

/// A reference point for [`hypervolume`]: the componentwise worst
/// objectives across `variants`, padded by 10% so every point dominates
/// it strictly. Compare two fronts (e.g. surrogate-pruned vs exhaustive)
/// against the SAME reference — conventionally the one computed from the
/// exhaustive set.
pub fn reference_point(variants: &[Variant]) -> (f64, f64, f64) {
    let mut r = (0.0f64, 0.0f64, 0.0f64);
    for v in variants {
        let (t, e, a) = objectives(v);
        r.0 = r.0.max(t);
        r.1 = r.1.max(e);
        r.2 = r.2.max(a as f64);
    }
    (r.0 * 1.1 + 1e-9, r.1 * 1.1 + 1e-9, r.2 * 1.1 + 1.0)
}

/// The dominated hypervolume of `variants` against `reference` — the
/// volume of objective space (time × energy × area, all minimized) that
/// at least one variant dominates, the standard scalar measure of front
/// quality. Larger is better; two fronts measured against the same
/// reference are directly comparable.
///
/// Implemented as a slab sweep along the area axis with a 2D staircase
/// union per slab: O(n² log n), exact, and deterministic.
pub fn hypervolume(variants: &[Variant], reference: (f64, f64, f64)) -> f64 {
    let mut pts: Vec<(f64, f64, f64)> = variants
        .iter()
        .map(objectives)
        .map(|(t, e, a)| (t, e, a as f64))
        .filter(|&(t, e, a)| t < reference.0 && e < reference.1 && a < reference.2)
        .collect();
    pts.sort_by(|x, y| x.2.total_cmp(&y.2));
    let mut volume = 0.0;
    for (k, &(_, _, a)) in pts.iter().enumerate() {
        // Skip duplicated slab boundaries: the first point at each
        // distinct area owns the whole slab.
        if k > 0 && pts[k - 1].2 == a {
            continue;
        }
        let a_next = pts.iter().map(|p| p.2).find(|&z| z > a).unwrap_or(reference.2);
        let active: Vec<(f64, f64)> = pts.iter().filter(|p| p.2 <= a).map(|p| (p.0, p.1)).collect();
        volume += staircase_area(&active, (reference.0, reference.1)) * (a_next - a);
    }
    volume
}

/// Area of the union of rectangles `[t, r.0] × [e, r.1]` over `points`
/// (the 2D dominated region): sweep by ascending time, accumulating each
/// strictly-improving energy step.
fn staircase_area(points: &[(f64, f64)], r: (f64, f64)) -> f64 {
    let mut pts = points.to_vec();
    pts.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut area = 0.0;
    let mut best_e = r.1;
    for &(t, e) in &pts {
        if e < best_e {
            area += (r.0 - t) * (best_e - e);
            best_e = e;
        }
    }
    area
}

/// The variant with the lowest end-to-end time.
pub fn fastest(variants: &[Variant]) -> Option<&Variant> {
    variants.iter().min_by(|a, b| a.metrics.total_us().total_cmp(&b.metrics.total_us()))
}

/// The variant with the lowest energy.
pub fn most_efficient(variants: &[Variant]) -> Option<&Variant> {
    variants.iter().min_by(|a, b| a.metrics.energy_mj.total_cmp(&b.metrics.energy_mj))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variant::Metrics;

    fn v(id: &str, time: f64, energy: f64, luts: u64) -> Variant {
        Variant {
            id: id.into(),
            kernel: "k".into(),
            transforms: vec![],
            metrics: Metrics {
                latency_us: time,
                transfer_us: 0.0,
                energy_mj: energy,
                area_luts: luts,
                area_brams: 0,
            },
        }
    }

    #[test]
    fn dominated_points_are_filtered() {
        let variants = vec![
            v("good", 10.0, 1.0, 0),
            v("dominated", 20.0, 2.0, 0),
            v("tradeoff", 5.0, 3.0, 1000),
        ];
        let front = pareto_front(&variants);
        let ids: Vec<&str> = front.iter().map(|v| v.id.as_str()).collect();
        assert_eq!(ids, vec!["good", "tradeoff"]);
    }

    #[test]
    fn identical_points_all_survive() {
        let variants = vec![v("a", 1.0, 1.0, 0), v("b", 1.0, 1.0, 0)];
        assert_eq!(pareto_front(&variants).len(), 2);
    }

    #[test]
    fn front_never_empty_for_nonempty_input() {
        let variants = vec![v("x", 3.0, 9.0, 7)];
        assert_eq!(pareto_front(&variants).len(), 1);
    }

    #[test]
    fn dominance_is_strict() {
        let a = v("a", 1.0, 1.0, 0);
        let b = v("b", 1.0, 1.0, 0);
        assert!(!dominates(&a, &b));
        let c = v("c", 0.5, 1.0, 0);
        assert!(dominates(&c, &a));
        assert!(!dominates(&a, &c));
    }

    #[test]
    fn hypervolume_of_one_point_is_its_box() {
        let variants = vec![v("p", 1.0, 2.0, 3)];
        let hv = hypervolume(&variants, (2.0, 4.0, 5.0));
        assert!((hv - 1.0 * 2.0 * 2.0).abs() < 1e-9, "hv={hv}");
    }

    #[test]
    fn hypervolume_unions_overlapping_boxes() {
        // Two symmetric trade-off points against reference (2,2,2):
        // each box is 1×1×2 = 2; the overlap region is 1×1×2 ... computed
        // by inclusion-exclusion: union = 2 + 2 - (0.0) with disjoint
        // time/energy? Points (0,1,0) and (1,0,0): boxes [0,2]×[1,2]×[0,2]
        // = 2·1·2 = 4 and [1,2]×[0,2]×[0,2] = 1·2·2 = 4, overlap
        // [1,2]×[1,2]×[0,2] = 2 → union 6.
        let variants = vec![v("a", 0.0, 1.0, 0), v("b", 1.0, 0.0, 0)];
        let hv = hypervolume(&variants, (2.0, 2.0, 2.0));
        assert!((hv - 6.0).abs() < 1e-9, "hv={hv}");
    }

    #[test]
    fn dominated_point_adds_no_hypervolume() {
        let front = vec![v("a", 1.0, 1.0, 1)];
        let padded = vec![v("a", 1.0, 1.0, 1), v("worse", 2.0, 2.0, 2)];
        let r = reference_point(&padded);
        assert_eq!(hypervolume(&front, r), hypervolume(&padded, r));
    }

    #[test]
    fn points_outside_the_reference_are_ignored() {
        let variants = vec![v("out", 10.0, 10.0, 10)];
        assert_eq!(hypervolume(&variants, (2.0, 2.0, 2.0)), 0.0);
    }

    #[test]
    fn extreme_selectors() {
        let variants = vec![v("fast", 1.0, 10.0, 0), v("eff", 10.0, 1.0, 0)];
        assert_eq!(fastest(&variants).unwrap().id, "fast");
        assert_eq!(most_efficient(&variants).unwrap().id, "eff");
        assert!(fastest(&[]).is_none());
    }
}
