//! Mass production of HLS training data.
//!
//! The dataset factory samples thousands of (kernel, knob-vector) points
//! and fans them through the synthesis flow — the same
//! [`everest_workflow::pool`] + [`everest_hls::cache`] machinery the DSE
//! engine uses — emitting one row per point: provenance (kernel name,
//! IR fingerprint, seed, sample index), the feature encoding from
//! [`crate::knob`], and the synthesis targets from
//! [`SynthSummary::targets`]. This is the table
//! [`crate::model::SurrogateModel`] trains on.
//!
//! Everything is seed-reproducible: sampling is a pure function of
//! `(seed, index)` (a splitmix64 stream per row), the pool preserves
//! enumeration order at any worker count, and synthesis itself is
//! deterministic — so the emitted bytes are identical across machines
//! and `--jobs` settings.

use crate::analysis::{self, KernelWorkload};
use crate::error::{VariantError, VariantResult};
use crate::knob::{kernel_features, KnobVector, KERNEL_FEATURES, KNOB_FEATURES};
use crate::transform::Target;
use everest_hls::accel::SynthSummary;
use everest_hls::cache;
use everest_ir::Func;
use everest_workflow::pool;

/// The hardware-knob values the sampler draws from. Wider than
/// [`crate::space::DesignSpace`]'s defaults on purpose: a surrogate
/// trained on the sweep corners only would extrapolate everywhere the
/// DSE actually explores.
#[derive(Debug, Clone, PartialEq)]
pub struct KnobDomains {
    /// Attachment targets.
    pub targets: Vec<Target>,
    /// Memory-bank counts.
    pub banks: Vec<usize>,
    /// Processing-element counts.
    pub pes: Vec<usize>,
    /// Pipelining options.
    pub pipeline: Vec<bool>,
    /// DIFT hardening options.
    pub dift: Vec<bool>,
}

impl Default for KnobDomains {
    fn default() -> KnobDomains {
        KnobDomains {
            targets: vec![Target::FpgaBus, Target::FpgaNetwork],
            banks: vec![1, 2, 4, 8, 16, 32, 64],
            pes: vec![1, 2, 4, 8, 16, 32, 64, 128],
            pipeline: vec![true, false],
            dift: vec![false, true],
        }
    }
}

impl KnobDomains {
    /// Draws the `index`-th hardware point of the `seed` stream — a pure
    /// function of its arguments, so row `i` is the same knob vector no
    /// matter which worker draws it or how many points surround it.
    pub fn sample(&self, seed: u64, index: usize) -> KnobVector {
        let mut state = seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut draw = |n: usize| (splitmix64(&mut state) % n as u64) as usize;
        KnobVector::Hardware {
            target: self.targets[draw(self.targets.len())],
            banks: self.banks[draw(self.banks.len())],
            pe: self.pes[draw(self.pes.len())],
            pipeline: self.pipeline[draw(self.pipeline.len())],
            dift: self.dift[draw(self.dift.len())],
        }
    }

    fn validate(&self) -> VariantResult<()> {
        let dims = [
            ("targets", self.targets.is_empty()),
            ("banks", self.banks.is_empty()),
            ("pes", self.pes.is_empty()),
            ("pipeline", self.pipeline.is_empty()),
            ("dift", self.dift.is_empty()),
        ];
        if let Some((name, _)) = dims.iter().find(|(_, empty)| *empty) {
            return Err(VariantError::Space(format!(
                "dataset knob domain '{name}' is empty: nothing to sample"
            )));
        }
        Ok(())
    }
}

/// splitmix64: the standard 64-bit mixing stream (Steele et al.),
/// dependency-free and bit-stable everywhere.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Configuration of one dataset production run.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Sampling seed (part of every row's provenance).
    pub seed: u64,
    /// Points to sample (rows may come out fewer: unsynthesizable points
    /// are skipped, deterministically).
    pub points: usize,
    /// Pool workers to fan synthesis across. Any value produces
    /// bit-identical rows.
    pub jobs: usize,
    /// Knob values to sample from.
    pub domains: KnobDomains,
}

impl Default for DatasetConfig {
    fn default() -> DatasetConfig {
        DatasetConfig { seed: 7, points: 256, jobs: 1, domains: KnobDomains::default() }
    }
}

/// One produced point: provenance + features + targets.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetRow {
    /// Kernel the point was synthesized for.
    pub kernel: String,
    /// Name-independent IR fingerprint of that kernel
    /// ([`cache::func_fingerprint`]).
    pub fingerprint: u64,
    /// Seed of the sampling stream that drew this row.
    pub seed: u64,
    /// Index within the stream (row `i` is reproducible from
    /// `(seed, i)` alone).
    pub index: usize,
    /// The sampled design point.
    pub knob: KnobVector,
    /// Feature columns, in [`Dataset::feature_names`] order.
    pub features: Vec<f64>,
    /// Target columns, in [`Dataset::target_names`] order.
    pub targets: Vec<f64>,
}

/// A produced table of training points.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Feature column names: [`KERNEL_FEATURES`] then [`KNOB_FEATURES`].
    pub feature_names: Vec<String>,
    /// Target column names: [`SynthSummary::TARGET_NAMES`].
    pub target_names: Vec<String>,
    /// The rows, in sample-index order.
    pub rows: Vec<DatasetRow>,
}

/// The full feature encoding of one (kernel, knob) point: kernel
/// features, knob features, then a `log_*` copy (`ln(1 + x)`) of every
/// base column, matching [`Dataset::feature_names`]. The log copies
/// matter: synthesis targets follow power laws in PE and bank counts
/// (`latency ≈ work / pe`, `area ≈ pe · unit`), which are *linear* in
/// log-feature/log-target space — exactly what the ridge baseline (and a
/// shallow stump ensemble) can represent from a small training sample.
pub fn features_for(workload: &KernelWorkload, knob: &KnobVector) -> Vec<f64> {
    let mut features = Vec::with_capacity(2 * (KERNEL_FEATURES.len() + KNOB_FEATURES.len()));
    features.extend_from_slice(&kernel_features(workload));
    features.extend_from_slice(&knob.to_features());
    for i in 0..features.len() {
        features.push(features[i].max(0.0).ln_1p());
    }
    features
}

/// The stable feature-column names, matching [`features_for`].
pub fn feature_names() -> Vec<String> {
    let base = KERNEL_FEATURES.iter().chain(KNOB_FEATURES.iter());
    base.clone().map(|s| (*s).to_string()).chain(base.map(|s| format!("log_{s}"))).collect()
}

impl Dataset {
    /// Renders the table as CSV: a header row, then one line per point.
    /// Byte-identical for a given (kernels, config) on any machine at any
    /// job count — the golden-file tests pin exactly this property.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("kernel,fingerprint,seed,index");
        for name in self.feature_names.iter().chain(&self.target_names) {
            out.push(',');
            out.push_str(name);
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!(
                "{},{:016x},{},{}",
                row.kernel, row.fingerprint, row.seed, row.index
            ));
            for v in row.features.iter().chain(&row.targets) {
                out.push(',');
                out.push_str(&format_num(*v));
            }
            out.push('\n');
        }
        out
    }
}

/// Formats a feature/target value: integers without a decimal point,
/// everything else through the shortest round-trip `f64` rendering.
/// Both are locale-free and bit-stable.
fn format_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Produces a dataset: samples `cfg.points` hardware points across the
/// kernels (round-robin: row `i` uses kernel `i % funcs.len()`),
/// synthesizes each through the shared [`cache`] with `cfg.jobs` pool
/// workers, and tabulates features and targets. Points the HLS flow
/// rejects (e.g. more banks than buffer elements) are skipped —
/// deterministically, since synthesis errors are a pure function of the
/// (kernel, config) pair.
///
/// # Errors
///
/// Returns [`VariantError::Space`] for an empty kernel list or knob
/// domain, never for individual unsynthesizable points.
pub fn produce(funcs: &[&Func], cfg: &DatasetConfig) -> VariantResult<Dataset> {
    if funcs.is_empty() {
        return Err(VariantError::Space("dataset production needs at least one kernel".into()));
    }
    cfg.domains.validate()?;
    let mut span = everest_telemetry::span("dse.dataset", "variants");
    span.attr("kernels", funcs.len());
    span.attr("points", cfg.points);
    span.attr("jobs", cfg.jobs.max(1));

    let workloads: Vec<KernelWorkload> = funcs.iter().map(|f| analysis::analyze(f)).collect();
    let fingerprints: Vec<u64> = funcs.iter().map(|f| cache::func_fingerprint(f)).collect();

    let items: Vec<usize> = (0..cfg.points).collect();
    let summaries: Vec<Option<(KnobVector, SynthSummary)>> =
        pool::parallel_map("dse.dataset.worker", cfg.jobs, items, |_, i| {
            let k = i % funcs.len();
            let knob = cfg.domains.sample(cfg.seed, i);
            cache::synthesize_cached(funcs[k], &knob.hls_config()).ok().map(|s| (knob, s))
        });

    let names = feature_names();
    let mut rows = Vec::with_capacity(cfg.points);
    for (i, slot) in summaries.into_iter().enumerate() {
        let Some((knob, summary)) = slot else {
            everest_telemetry::metrics().counter_inc("dse.dataset.skipped");
            continue;
        };
        let k = i % funcs.len();
        rows.push(DatasetRow {
            kernel: funcs[k].name.clone(),
            fingerprint: fingerprints[k],
            seed: cfg.seed,
            index: i,
            knob,
            features: features_for(&workloads[k], &knob),
            targets: summary.targets().to_vec(),
        });
    }
    everest_telemetry::metrics().counter_add("dse.dataset.points", rows.len() as u64);
    Ok(Dataset {
        feature_names: names,
        target_names: SynthSummary::TARGET_NAMES.iter().map(|s| (*s).to_string()).collect(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernels() -> Vec<Func> {
        let src = "
            kernel mm(a: tensor<16x16xf64>, b: tensor<16x16xf64>) -> tensor<16x16xf64> { return a @ b; }
            kernel ax(a: tensor<256xf64>, b: tensor<256xf64>) -> tensor<256xf64> { return a + b; }
        ";
        let m = everest_dsl::compile_kernels(src).unwrap();
        vec![m.func("mm").unwrap().clone(), m.func("ax").unwrap().clone()]
    }

    #[test]
    fn sampling_is_pure_in_seed_and_index() {
        let domains = KnobDomains::default();
        for i in 0..50 {
            assert_eq!(domains.sample(7, i), domains.sample(7, i));
        }
        // Different seeds must not replay the same stream.
        let a: Vec<KnobVector> = (0..50).map(|i| domains.sample(7, i)).collect();
        let b: Vec<KnobVector> = (0..50).map(|i| domains.sample(8, i)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn production_is_bit_identical_across_job_counts() {
        let funcs = kernels();
        let refs: Vec<&Func> = funcs.iter().collect();
        let base = DatasetConfig { points: 24, ..DatasetConfig::default() };
        let seq = produce(&refs, &DatasetConfig { jobs: 1, ..base.clone() }).unwrap();
        let par = produce(&refs, &DatasetConfig { jobs: 4, ..base }).unwrap();
        assert_eq!(seq.to_csv(), par.to_csv());
    }

    #[test]
    fn rows_carry_provenance_and_schema() {
        let funcs = kernels();
        let refs: Vec<&Func> = funcs.iter().collect();
        let cfg = DatasetConfig { points: 16, ..DatasetConfig::default() };
        let data = produce(&refs, &cfg).unwrap();
        assert!(!data.rows.is_empty());
        assert_eq!(data.feature_names.len(), 2 * (KERNEL_FEATURES.len() + KNOB_FEATURES.len()));
        assert_eq!(data.target_names, SynthSummary::TARGET_NAMES);
        for row in &data.rows {
            assert_eq!(row.seed, cfg.seed);
            assert_eq!(row.features.len(), data.feature_names.len());
            assert_eq!(row.targets.len(), data.target_names.len());
            // Row is reproducible from provenance alone.
            assert_eq!(cfg.domains.sample(row.seed, row.index), row.knob);
            assert!(row.targets.iter().all(|t| *t >= 0.0));
        }
        // The CSV header matches the schema.
        let header = data.to_csv().lines().next().unwrap().to_string();
        assert!(header.starts_with("kernel,fingerprint,seed,index,flops,"));
        assert!(header.ends_with("latency_cycles,luts,ffs,dsps,brams"));
    }

    #[test]
    fn unsynthesizable_points_are_skipped_not_fatal() {
        let funcs = kernels();
        let refs: Vec<&Func> = vec![&funcs[1]];
        // A zero-bank config is rejected by the HLS flow (over-banked
        // configs are merely clamped), so half the sampled points fail.
        let domains = KnobDomains { banks: vec![4, 0], ..KnobDomains::default() };
        let cfg = DatasetConfig { points: 20, domains, ..DatasetConfig::default() };
        let data = produce(&refs, &cfg).unwrap();
        assert!(data.rows.len() < 20, "zero-bank points must be skipped");
        assert!(!data.rows.is_empty(), "4-bank points must survive");
    }

    #[test]
    fn empty_inputs_are_space_errors() {
        assert!(matches!(produce(&[], &DatasetConfig::default()), Err(VariantError::Space(_))));
        let funcs = kernels();
        let refs: Vec<&Func> = funcs.iter().collect();
        let cfg = DatasetConfig {
            domains: KnobDomains { pes: Vec::new(), ..KnobDomains::default() },
            ..DatasetConfig::default()
        };
        assert!(matches!(produce(&refs, &cfg), Err(VariantError::Space(_))));
    }
}
