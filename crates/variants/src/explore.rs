//! Surrogate-guided design-space exploration.
//!
//! The exhaustive engine ([`crate::generate_all`]) synthesizes every
//! hardware point. This module trades a small exact training set for a
//! learned shortcut: it synthesizes a deterministic sample of the
//! hardware points, fits a [`SurrogateModel`] on them, predicts the rest,
//! and runs exact synthesis only for points within a configurable margin
//! of the *predicted* Pareto front. Software points are always evaluated
//! exactly — the roofline model is cheaper than a prediction.
//!
//! Safety valve: when the model's held-out validation error exceeds
//! [`PruneConfig::max_val_mape`] (or there are too few hardware points to
//! learn from), the explorer falls back to the exhaustive engine, so a
//! bad fit can cost time but never front quality.
//!
//! Determinism matches the exhaustive engine's contract: training-set
//! selection is a pure function of `(seed, point count)`, the fit and the
//! predictions are deterministic, and all synthesis fans through the
//! order-preserving pool — so the pruned variant sets are bit-identical
//! at any `--jobs` count.

use crate::analysis::{self, KernelWorkload};
use crate::dataset::{feature_names, features_for, Dataset, DatasetRow};
use crate::error::{VariantError, VariantResult};
use crate::knob::KnobVector;
use crate::model::{FitConfig, SurrogateModel};
use crate::space::DesignSpace;
use crate::variant::{Metrics, Variant};
use crate::{cost, pareto};
use everest_hls::accel::SynthSummary;
use everest_hls::{cache, AreaReport};
use everest_ir::Func;
use everest_workflow::pool;

/// Configuration of the surrogate-pruned exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneConfig {
    /// Pareto margin: a predicted point survives pruning when shrinking
    /// its objectives by this fraction leaves it non-dominated by the
    /// predicted front. 0 keeps only the predicted front itself; larger
    /// values keep a thicker band (more exact synthesis, more safety).
    pub margin: f64,
    /// Fraction of the hardware points synthesized exactly for training.
    pub train_fraction: f64,
    /// Floor on the training-set size (small spaces train on everything
    /// and the explorer falls back to exhaustive).
    pub min_train: usize,
    /// Width of the near-duplicate collapse grid: survivors whose
    /// predicted objectives all land in the same multiplicative cell
    /// (relative width `dedup_eps`) share one exact synthesis. 0
    /// disables the collapse.
    pub dedup_eps: f64,
    /// Fall back to exhaustive exploration when the model's worst
    /// per-target held-out MAPE exceeds this.
    pub max_val_mape: f64,
    /// Seed of the training-set selection (part of the reproducibility
    /// contract, like the dataset factory's seed).
    pub seed: u64,
    /// Surrogate training configuration.
    pub fit: FitConfig,
}

impl Default for PruneConfig {
    fn default() -> PruneConfig {
        PruneConfig {
            margin: 0.15,
            train_fraction: 0.08,
            min_train: 24,
            dedup_eps: 0.05,
            max_val_mape: 0.35,
            seed: 7,
            fit: FitConfig::default(),
        }
    }
}

impl PruneConfig {
    fn validate(&self) -> VariantResult<()> {
        if !(0.0..1.0).contains(&self.margin) {
            return Err(VariantError::Space(format!(
                "prune margin {} out of range [0, 1)",
                self.margin
            )));
        }
        if !(self.train_fraction > 0.0 && self.train_fraction <= 1.0) {
            return Err(VariantError::Space(format!(
                "train fraction {} out of range (0, 1]",
                self.train_fraction
            )));
        }
        if !(0.0..1.0).contains(&self.dedup_eps) {
            return Err(VariantError::Space(format!(
                "dedup epsilon {} out of range [0, 1)",
                self.dedup_eps
            )));
        }
        Ok(())
    }
}

/// What the explorer did, for telemetry, benches and the CLI.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreReport {
    /// Total (kernel × point) pairs in the space.
    pub points: usize,
    /// Software pairs (always exact).
    pub software: usize,
    /// Hardware pairs synthesized exactly for training.
    pub train: usize,
    /// Hardware pairs the surrogate predicted.
    pub predicted: usize,
    /// Hardware pairs evaluated exactly (training + margin survivors).
    pub exact: usize,
    /// Hardware pairs pruned away on the model's word.
    pub pruned: usize,
    /// Whether the explorer fell back to the exhaustive engine.
    pub fallback: bool,
    /// Worst per-target held-out MAPE of the fitted model (0 when no
    /// model was fit).
    pub val_mape: f64,
}

/// Strict domination over bare `f64` objective triples (minimization).
fn dominates3(a: (f64, f64, f64), b: (f64, f64, f64)) -> bool {
    let no_worse = a.0 <= b.0 && a.1 <= b.1 && a.2 <= b.2;
    let better = a.0 < b.0 || a.1 < b.1 || a.2 < b.2;
    no_worse && better
}

/// Deterministic choice of `n` training pairs out of `total`: a partial
/// Fisher–Yates shuffle driven by a splitmix64 stream seeded from
/// `seed`, returned in ascending order. Pure in `(seed, total, n)`.
fn training_indices(seed: u64, total: usize, n: usize) -> Vec<usize> {
    let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut pool: Vec<usize> = (0..total).collect();
    let n = n.min(total);
    for i in 0..n {
        let j = i + (next() % (total - i) as u64) as usize;
        pool.swap(i, j);
    }
    let mut chosen = pool[..n].to_vec();
    chosen.sort_unstable();
    chosen
}

/// Builds a [`SynthSummary`]-shaped value from the surrogate's predicted
/// targets, so predicted points flow through the exact path's
/// [`cost`] bridge (`metrics_from_summary`) and land in the same
/// objective space as synthesized ones.
fn predicted_summary(pred: &[f64], knob: &KnobVector) -> SynthSummary {
    let KnobVector::Hardware { pe, .. } = knob else {
        unreachable!("predictions are only made for hardware points");
    };
    let at = |i: usize| pred.get(i).copied().unwrap_or(0.0).max(0.0).round();
    SynthSummary {
        latency_cycles: at(0) as u64,
        innermost_ii: 1,
        pe: *pe,
        area: AreaReport {
            luts: at(1) as u64,
            ffs: at(2) as u64,
            dsps: at(3) as u64,
            brams: at(4) as u64,
        },
        clock_mhz: knob.hls_config().clock_mhz,
    }
}

/// Surrogate-pruned counterpart of [`crate::generate_all`]: returns the
/// exactly-evaluated variants (software points, training points and
/// margin survivors — ids keep their exhaustive enumeration indices) plus
/// a report of what was predicted, kept and pruned.
///
/// # Errors
///
/// Returns [`VariantError::Space`] for a malformed space or prune
/// configuration, and [`VariantError::Hls`] when an exactly-evaluated
/// point fails to synthesize (lowest enumeration index wins, like the
/// exhaustive engine).
pub fn generate_all_pruned(
    funcs: &[&Func],
    space: &DesignSpace,
    jobs: usize,
    cfg: &PruneConfig,
) -> VariantResult<(Vec<Vec<Variant>>, ExploreReport)> {
    space.validate()?;
    cfg.validate()?;
    let knobs = space.enumerate_knobs();
    let workloads: Vec<KernelWorkload> = funcs.iter().map(|f| analysis::analyze(f)).collect();
    let metrics = everest_telemetry::metrics();

    // Flattened hardware (kernel, point) pairs in enumeration order.
    let hw_pairs: Vec<(usize, usize)> = (0..funcs.len())
        .flat_map(|k| {
            knobs.iter().enumerate().filter(|(_, kn)| kn.is_hardware()).map(move |(i, _)| (k, i))
        })
        .collect();
    let points = funcs.len() * knobs.len();
    let software = points - hw_pairs.len();

    let mut span = everest_telemetry::span("dse.explore", "variants");
    span.attr("kernels", funcs.len());
    span.attr("points", points);
    span.attr("jobs", jobs.max(1));

    let want = ((hw_pairs.len() as f64 * cfg.train_fraction).ceil() as usize)
        .max(cfg.min_train)
        .min(hw_pairs.len());
    // Too few hardware points for the model to earn its keep: every pair
    // would be a training pair anyway.
    if want >= hw_pairs.len() {
        metrics.counter_inc("dse.model.fallback");
        let sets = crate::generate_all(funcs, space, jobs)?;
        let report = ExploreReport {
            points,
            software,
            train: 0,
            predicted: 0,
            exact: hw_pairs.len(),
            pruned: 0,
            fallback: true,
            val_mape: 0.0,
        };
        return Ok((sets, report));
    }

    // --- Phase 1: exact synthesis of the training sample. ---
    let train_at = training_indices(cfg.seed, hw_pairs.len(), want);
    let memoize = jobs >= 2;
    let train_pairs: Vec<(usize, usize)> = train_at.iter().map(|&t| hw_pairs[t]).collect();
    let summaries =
        pool::parallel_map("dse.explore.train", jobs, train_pairs.clone(), |_, (k, i)| {
            cost::summarize_hardware(funcs[k], &knobs[i], memoize).map(|s| (k, i, s))
        });
    let mut rows = Vec::with_capacity(summaries.len());
    let mut exact_summaries: Vec<Option<SynthSummary>> = vec![None; points];
    for (t, result) in train_at.iter().zip(summaries) {
        let (k, i, summary) = result.map_err(VariantError::Hls)?;
        exact_summaries[k * knobs.len() + i] = Some(summary);
        rows.push(DatasetRow {
            kernel: funcs[k].name.clone(),
            fingerprint: cache::func_fingerprint(funcs[k]),
            seed: cfg.seed,
            index: *t,
            knob: knobs[i],
            features: features_for(&workloads[k], &knobs[i]),
            targets: summary.targets().to_vec(),
        });
    }
    let dataset = Dataset {
        feature_names: feature_names(),
        target_names: SynthSummary::TARGET_NAMES.iter().map(|s| (*s).to_string()).collect(),
        rows,
    };
    metrics.counter_add("dse.model.train_points", dataset.rows.len() as u64);

    // --- Phase 2: fit, with the accuracy safety valve. ---
    let model = SurrogateModel::fit(&dataset, &cfg.fit);
    let val_mape = model.validation.worst_mape();
    if val_mape > cfg.max_val_mape {
        metrics.counter_inc("dse.model.fallback");
        let sets = crate::generate_all(funcs, space, jobs)?;
        let report = ExploreReport {
            points,
            software,
            train: want,
            predicted: 0,
            exact: hw_pairs.len(),
            pruned: 0,
            fallback: true,
            val_mape,
        };
        return Ok((sets, report));
    }

    // --- Phase 3: predict every hardware pair, prune against the
    // predicted front. ---
    let predicted: Vec<Metrics> = hw_pairs
        .iter()
        .map(|&(k, i)| {
            let summary = match exact_summaries[k * knobs.len() + i] {
                // Training points contribute their exact summaries: free
                // accuracy right where the front is decided.
                Some(exact) => exact,
                None => predicted_summary(
                    &model.predict(&features_for(&workloads[k], &knobs[i])),
                    &knobs[i],
                ),
            };
            cost::metrics_from_summary(&summary, &workloads[k], knobs[i].target())
        })
        .collect();
    metrics.counter_add("dse.model.predicted", (hw_pairs.len() - want) as u64);

    // Per kernel: front over exact software metrics + (predicted | exact)
    // hardware metrics, then the margin test.
    let mut keep = vec![false; hw_pairs.len()];
    for (k, workload) in workloads.iter().enumerate() {
        let sw_objs: Vec<(f64, f64, u64)> = knobs
            .iter()
            .filter(|kn| !kn.is_hardware())
            .map(|kn| {
                let m = cost::software_metrics_knob(workload, kn);
                (m.total_us(), m.energy_mj, m.area_luts)
            })
            .collect();
        let hw_at: Vec<usize> = (0..hw_pairs.len()).filter(|&p| hw_pairs[p].0 == k).collect();
        let mut objs = sw_objs.clone();
        objs.extend(hw_at.iter().map(|&p| {
            let m = &predicted[p];
            (m.total_us(), m.energy_mj, m.area_luts)
        }));
        let dominated = pareto::dominated_objective_flags(&objs);
        let front: Vec<(f64, f64, f64)> = objs
            .iter()
            .zip(&dominated)
            .filter(|(_, d)| !**d)
            .map(|(&(t, e, a), _)| (t, e, a as f64))
            .collect();
        for (slot, &p) in hw_at.iter().enumerate() {
            let (t, e, a) = objs[sw_objs.len() + slot];
            let shrunk =
                (t * (1.0 - cfg.margin), e * (1.0 - cfg.margin), a as f64 * (1.0 - cfg.margin));
            keep[p] = !front.iter().any(|&q| dominates3(q, shrunk));
        }

        // Near-duplicate collapse: snap predicted objectives to a
        // multiplicative grid of width `dedup_eps` and keep one
        // representative per occupied cell (lowest enumeration index;
        // training pairs seed their cells first — they are already paid
        // for). Without this, clouds of points the model cannot tell
        // apart (e.g. banks beyond the port clamp) all survive the
        // margin test and exact synthesis re-learns their equivalence
        // the expensive way.
        if cfg.dedup_eps > 0.0 {
            let cell_of = |x: f64| (x.max(1e-12).ln() / (1.0 + cfg.dedup_eps).ln()).floor() as i64;
            let cell = |p: usize| {
                let m = &predicted[p];
                (cell_of(m.total_us()), cell_of(m.energy_mj), cell_of(m.area_luts as f64 + 1.0))
            };
            let mut seen: Vec<(i64, i64, i64)> = Vec::new();
            let trained =
                |p: usize| exact_summaries[hw_pairs[p].0 * knobs.len() + hw_pairs[p].1].is_some();
            let kept: Vec<usize> = hw_at.iter().copied().filter(|&p| keep[p]).collect();
            for &p in kept.iter().filter(|&&p| trained(p)) {
                seen.push(cell(p));
            }
            for &p in kept.iter().filter(|&&p| !trained(p)) {
                let c = cell(p);
                if seen.contains(&c) {
                    keep[p] = false;
                } else {
                    seen.push(c);
                }
            }
        }
    }

    // --- Phase 4: exact evaluation of survivors (training pairs are
    // already synthesized; their metrics derive from stored summaries).
    let survivors: Vec<(usize, usize)> = (0..hw_pairs.len())
        .filter(|&p| {
            keep[p] && exact_summaries[hw_pairs[p].0 * knobs.len() + hw_pairs[p].1].is_none()
        })
        .map(|p| hw_pairs[p])
        .collect();
    let survivor_count = survivors.len();
    let evaluated =
        pool::parallel_map("dse.explore.exact", jobs, survivors.clone(), |_, (k, i)| {
            cost::summarize_hardware(funcs[k], &knobs[i], memoize).map(|s| (k, i, s))
        });
    for result in evaluated {
        let (k, i, summary) = result.map_err(VariantError::Hls)?;
        exact_summaries[k * knobs.len() + i] = Some(summary);
    }
    let exact = want + survivor_count;
    let pruned = hw_pairs.len() - exact;
    metrics.counter_add("dse.model.kept", exact as u64);
    metrics.counter_add("dse.model.pruned", pruned as u64);

    // --- Assemble: every exactly-known point, original enumeration ids.
    let mut sets = Vec::with_capacity(funcs.len());
    for (k, func) in funcs.iter().enumerate() {
        let mut variants = Vec::new();
        for (i, knob) in knobs.iter().enumerate() {
            let m = if knob.is_hardware() {
                match exact_summaries[k * knobs.len() + i] {
                    Some(summary) => {
                        cost::metrics_from_summary(&summary, &workloads[k], knob.target())
                    }
                    None => continue, // pruned
                }
            } else {
                cost::software_metrics_knob(&workloads[k], knob)
            };
            variants.push(Variant {
                id: format!("{}#{}", func.name, i),
                kernel: func.name.clone(),
                transforms: knob.to_transforms(),
                metrics: m,
            });
        }
        sets.push(variants);
    }
    span.attr("exact", exact);
    span.attr("pruned", pruned);
    let report = ExploreReport {
        points,
        software,
        train: want,
        predicted: hw_pairs.len() - want,
        exact,
        pruned,
        fallback: false,
        val_mape,
    };
    Ok((sets, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernels() -> Vec<Func> {
        let src = "
            kernel mm(a: tensor<16x16xf64>, b: tensor<16x16xf64>) -> tensor<16x16xf64> { return a @ b; }
            kernel ax(a: tensor<256xf64>, b: tensor<256xf64>) -> tensor<256xf64> { return a + b; }
        ";
        let m = everest_dsl::compile_kernels(src).unwrap();
        vec![m.func("mm").unwrap().clone(), m.func("ax").unwrap().clone()]
    }

    fn wide_space() -> DesignSpace {
        DesignSpace {
            banks: vec![1, 2, 4, 8, 16],
            pes: vec![1, 2, 4, 8, 16, 32],
            pipeline: vec![true, false],
            dift: vec![false, true],
            ..DesignSpace::default()
        }
    }

    #[test]
    fn small_spaces_fall_back_to_exhaustive() {
        let funcs = kernels();
        let refs: Vec<&Func> = funcs.iter().collect();
        let space = DesignSpace::small();
        let (sets, report) =
            generate_all_pruned(&refs, &space, 1, &PruneConfig::default()).unwrap();
        assert!(report.fallback);
        assert_eq!(sets, crate::generate_all(&refs, &space, 1).unwrap());
    }

    #[test]
    fn pruned_sets_are_subsets_with_stable_ids() {
        let funcs = kernels();
        let refs: Vec<&Func> = funcs.iter().collect();
        let space = wide_space();
        let (pruned, report) =
            generate_all_pruned(&refs, &space, 2, &PruneConfig::default()).unwrap();
        let full = crate::generate_all(&refs, &space, 2).unwrap();
        assert!(!report.fallback, "wide space should engage the model");
        assert!(report.pruned > 0, "nothing pruned: {report:?}");
        for (p_set, f_set) in pruned.iter().zip(&full) {
            assert!(p_set.len() < f_set.len());
            for v in p_set {
                let exact = f_set.iter().find(|f| f.id == v.id).expect("id from enumeration");
                assert_eq!(exact, v, "kept variants carry exact metrics");
            }
        }
    }

    #[test]
    fn pruned_exploration_is_bit_identical_across_job_counts() {
        let funcs = kernels();
        let refs: Vec<&Func> = funcs.iter().collect();
        let space = wide_space();
        let cfg = PruneConfig::default();
        let (seq, r1) = generate_all_pruned(&refs, &space, 1, &cfg).unwrap();
        let (par, r4) = generate_all_pruned(&refs, &space, 4, &cfg).unwrap();
        assert_eq!(seq, par);
        assert_eq!(r1, r4);
    }

    #[test]
    fn front_quality_matches_exhaustive_within_one_percent() {
        let funcs = kernels();
        let refs: Vec<&Func> = funcs.iter().collect();
        let space = wide_space();
        let (pruned, _) = generate_all_pruned(&refs, &space, 2, &PruneConfig::default()).unwrap();
        let full = crate::generate_all(&refs, &space, 2).unwrap();
        for (p_set, f_set) in pruned.iter().zip(&full) {
            let reference = pareto::reference_point(f_set);
            let hv_full = pareto::hypervolume(&pareto::pareto_front(f_set), reference);
            let hv_pruned = pareto::hypervolume(&pareto::pareto_front(p_set), reference);
            assert!(
                hv_pruned >= hv_full * 0.99,
                "front quality dropped: pruned {hv_pruned} vs full {hv_full}"
            );
        }
    }

    #[test]
    fn training_selection_is_pure_and_sorted() {
        let a = training_indices(7, 100, 20);
        let b = training_indices(7, 100, 20);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(a.len(), 20);
        let c = training_indices(8, 100, 20);
        assert_ne!(a, c, "seed must matter");
    }

    #[test]
    fn invalid_prune_config_is_rejected() {
        let funcs = kernels();
        let refs: Vec<&Func> = funcs.iter().collect();
        let bad = PruneConfig { margin: 1.5, ..PruneConfig::default() };
        assert!(matches!(
            generate_all_pruned(&refs, &DesignSpace::default(), 1, &bad),
            Err(VariantError::Space(_))
        ));
        let bad = PruneConfig { train_fraction: 0.0, ..PruneConfig::default() };
        assert!(matches!(
            generate_all_pruned(&refs, &DesignSpace::default(), 1, &bad),
            Err(VariantError::Space(_))
        ));
    }
}
