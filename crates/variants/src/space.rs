//! Design-space definition and enumeration.

use crate::error::VariantError;
use crate::transform::{Layout, Target, Transform};

/// The knob domains a design-space exploration sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    /// Software threading degrees.
    pub threads: Vec<u32>,
    /// Data layouts.
    pub layouts: Vec<Layout>,
    /// Tile sizes (`None` = untiled).
    pub tiles: Vec<Option<usize>>,
    /// Hardware targets to consider.
    pub hw_targets: Vec<Target>,
    /// Memory banks for hardware points.
    pub banks: Vec<usize>,
    /// Processing-element counts for hardware points.
    pub pes: Vec<usize>,
    /// DIFT hardening options for hardware points.
    pub dift: Vec<bool>,
}

impl Default for DesignSpace {
    fn default() -> DesignSpace {
        DesignSpace {
            threads: vec![1, 2, 4, 8],
            layouts: vec![Layout::Aos, Layout::Soa],
            tiles: vec![None, Some(32)],
            hw_targets: vec![Target::FpgaBus, Target::FpgaNetwork],
            banks: vec![4, 16],
            pes: vec![8, 32],
            dift: vec![false],
        }
    }
}

impl DesignSpace {
    /// A minimal space for fast tests: 2 software + 1 hardware point.
    pub fn small() -> DesignSpace {
        DesignSpace {
            threads: vec![1, 4],
            layouts: vec![Layout::Aos],
            tiles: vec![None],
            hw_targets: vec![Target::FpgaBus],
            banks: vec![16],
            pes: vec![32],
            dift: vec![false],
        }
    }

    /// A software-only space (for hosts without FPGAs).
    pub fn software_only() -> DesignSpace {
        DesignSpace {
            hw_targets: Vec::new(),
            banks: Vec::new(),
            pes: Vec::new(),
            dift: Vec::new(),
            ..DesignSpace::default()
        }
    }

    /// Checks the space describes at least one design point and that no
    /// knob dimension silently zeroes out a cross product.
    ///
    /// Each knob group (software: threads/layouts/tiles, hardware:
    /// hw_targets/banks/pes/dift) must be either fully populated or fully
    /// empty — an empty dimension inside a populated group would make
    /// [`DesignSpace::enumerate`] yield zero points for the whole group
    /// without any indication of why.
    ///
    /// # Errors
    ///
    /// Returns [`VariantError::Space`] naming the offending knob.
    pub fn validate(&self) -> Result<(), VariantError> {
        let software = [
            ("threads", self.threads.is_empty()),
            ("layouts", self.layouts.is_empty()),
            ("tiles", self.tiles.is_empty()),
        ];
        let hardware = [
            ("hw_targets", self.hw_targets.is_empty()),
            ("banks", self.banks.is_empty()),
            ("pes", self.pes.is_empty()),
            ("dift", self.dift.is_empty()),
        ];
        for group in [&software[..], &hardware[..]] {
            if group.iter().any(|(_, empty)| *empty) && !group.iter().all(|(_, empty)| *empty) {
                let empty: Vec<&str> =
                    group.iter().filter(|(_, e)| *e).map(|(name, _)| *name).collect();
                let set: Vec<&str> =
                    group.iter().filter(|(_, e)| !*e).map(|(name, _)| *name).collect();
                return Err(VariantError::Space(format!(
                    "knob dimension(s) {empty:?} are empty while {set:?} are populated, so the \
                     cross product enumerates zero points; give every knob in the group at least \
                     one value, or empty the whole group to disable it"
                )));
            }
        }
        if software.iter().all(|(_, empty)| *empty) && hardware.iter().all(|(_, empty)| *empty) {
            return Err(VariantError::Space(
                "every knob dimension is empty: the space describes no design points".into(),
            ));
        }
        Ok(())
    }

    /// Enumerates every point: the cross product of software knobs plus
    /// the cross product of hardware knobs.
    pub fn enumerate(&self) -> Vec<Vec<Transform>> {
        let mut specs = Vec::new();
        for &t in &self.threads {
            for &l in &self.layouts {
                for &tile in &self.tiles {
                    let mut spec = vec![
                        Transform::OnTarget(Target::Cpu),
                        Transform::Threads(t),
                        Transform::DataLayout(l),
                    ];
                    if let Some(size) = tile {
                        spec.push(Transform::Tile(size));
                    }
                    specs.push(spec);
                }
            }
        }
        for &target in &self.hw_targets {
            for &b in &self.banks {
                for &pe in &self.pes {
                    for &d in &self.dift {
                        specs.push(vec![
                            Transform::OnTarget(target),
                            Transform::Banks(b),
                            Transform::Pe(pe),
                            Transform::Pipeline(true),
                            Transform::Dift(d),
                        ]);
                    }
                }
            }
        }
        specs
    }

    /// Number of points this space enumerates.
    pub fn size(&self) -> usize {
        self.threads.len() * self.layouts.len() * self.tiles.len()
            + self.hw_targets.len() * self.banks.len() * self.pes.len() * self.dift.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::SpecExt;

    #[test]
    fn default_space_size() {
        let s = DesignSpace::default();
        assert_eq!(s.size(), 4 * 2 * 2 + 2 * 2 * 2);
        assert_eq!(s.enumerate().len(), s.size());
    }

    #[test]
    fn small_space_has_three_points() {
        let s = DesignSpace::small();
        assert_eq!(s.enumerate().len(), 3);
    }

    #[test]
    fn software_only_space_has_no_fpga_points() {
        let s = DesignSpace::software_only();
        assert!(s.enumerate().iter().all(|spec| !spec.target().is_fpga()));
    }

    #[test]
    fn validate_accepts_the_stock_spaces() {
        assert!(DesignSpace::default().validate().is_ok());
        assert!(DesignSpace::small().validate().is_ok());
        assert!(DesignSpace::software_only().validate().is_ok());
    }

    #[test]
    fn validate_rejects_empty_knob_inside_populated_group() {
        let space = DesignSpace { threads: Vec::new(), ..DesignSpace::default() };
        assert_eq!(space.enumerate().len(), 8, "software points silently vanish");
        let err = space.validate().unwrap_err();
        let VariantError::Space(msg) = err else {
            panic!("expected a space error");
        };
        assert!(msg.contains("threads"), "error should name the empty knob: {msg}");

        let space = DesignSpace { pes: Vec::new(), dift: Vec::new(), ..DesignSpace::default() };
        assert!(space.validate().is_err());
    }

    #[test]
    fn validate_rejects_fully_empty_space() {
        let space = DesignSpace {
            threads: Vec::new(),
            layouts: Vec::new(),
            tiles: Vec::new(),
            hw_targets: Vec::new(),
            banks: Vec::new(),
            pes: Vec::new(),
            dift: Vec::new(),
        };
        assert_eq!(space.enumerate().len(), 0);
        assert!(matches!(space.validate(), Err(VariantError::Space(_))));
    }

    #[test]
    fn every_point_names_a_target() {
        for spec in DesignSpace::default().enumerate() {
            // target() defaulting is not exercised: the enumerator is
            // explicit about targets.
            assert!(spec.iter().any(|t| matches!(t, Transform::OnTarget(_))));
        }
    }
}
