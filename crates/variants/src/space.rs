//! Design-space definition and enumeration.

use crate::error::VariantError;
use crate::knob::KnobVector;
use crate::transform::{Layout, Target, Transform};

/// The knob domains a design-space exploration sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    /// Software threading degrees.
    pub threads: Vec<u32>,
    /// Data layouts.
    pub layouts: Vec<Layout>,
    /// Tile sizes (`None` = untiled).
    pub tiles: Vec<Option<usize>>,
    /// Hardware targets to consider.
    pub hw_targets: Vec<Target>,
    /// Memory banks for hardware points.
    pub banks: Vec<usize>,
    /// Processing-element counts for hardware points.
    pub pes: Vec<usize>,
    /// Innermost-loop pipelining options for hardware points.
    pub pipeline: Vec<bool>,
    /// DIFT hardening options for hardware points.
    pub dift: Vec<bool>,
}

impl Default for DesignSpace {
    fn default() -> DesignSpace {
        DesignSpace {
            threads: vec![1, 2, 4, 8],
            layouts: vec![Layout::Aos, Layout::Soa],
            tiles: vec![None, Some(32)],
            hw_targets: vec![Target::FpgaBus, Target::FpgaNetwork],
            banks: vec![4, 16],
            pes: vec![8, 32],
            pipeline: vec![true],
            dift: vec![false],
        }
    }
}

impl DesignSpace {
    /// A minimal space for fast tests: 2 software + 1 hardware point.
    pub fn small() -> DesignSpace {
        DesignSpace {
            threads: vec![1, 4],
            layouts: vec![Layout::Aos],
            tiles: vec![None],
            hw_targets: vec![Target::FpgaBus],
            banks: vec![16],
            pes: vec![32],
            pipeline: vec![true],
            dift: vec![false],
        }
    }

    /// A software-only space (for hosts without FPGAs).
    pub fn software_only() -> DesignSpace {
        DesignSpace {
            hw_targets: Vec::new(),
            banks: Vec::new(),
            pes: Vec::new(),
            pipeline: Vec::new(),
            dift: Vec::new(),
            ..DesignSpace::default()
        }
    }

    /// Checks the space describes at least one design point, that no
    /// knob dimension silently zeroes out a cross product, and that no
    /// knob repeats a value.
    ///
    /// Each knob group (software: threads/layouts/tiles, hardware:
    /// hw_targets/banks/pes/pipeline/dift) must be either fully populated
    /// or fully empty — an empty dimension inside a populated group would
    /// make [`DesignSpace::enumerate`] yield zero points for the whole
    /// group without any indication of why. A duplicated knob value
    /// (e.g. `threads: [4, 4]`) would enumerate the same point twice,
    /// double-counting it in every downstream consumer — Pareto
    /// statistics, memo hit rates, and the learned-cost-model dataset
    /// would all silently skew toward the repeated point.
    ///
    /// # Errors
    ///
    /// Returns [`VariantError::Space`] naming the offending knob.
    pub fn validate(&self) -> Result<(), VariantError> {
        let software = [
            ("threads", self.threads.is_empty()),
            ("layouts", self.layouts.is_empty()),
            ("tiles", self.tiles.is_empty()),
        ];
        let hardware = [
            ("hw_targets", self.hw_targets.is_empty()),
            ("banks", self.banks.is_empty()),
            ("pes", self.pes.is_empty()),
            ("pipeline", self.pipeline.is_empty()),
            ("dift", self.dift.is_empty()),
        ];
        for group in [&software[..], &hardware[..]] {
            if group.iter().any(|(_, empty)| *empty) && !group.iter().all(|(_, empty)| *empty) {
                let empty: Vec<&str> =
                    group.iter().filter(|(_, e)| *e).map(|(name, _)| *name).collect();
                let set: Vec<&str> =
                    group.iter().filter(|(_, e)| !*e).map(|(name, _)| *name).collect();
                return Err(VariantError::Space(format!(
                    "knob dimension(s) {empty:?} are empty while {set:?} are populated, so the \
                     cross product enumerates zero points; give every knob in the group at least \
                     one value, or empty the whole group to disable it"
                )));
            }
        }
        if software.iter().all(|(_, empty)| *empty) && hardware.iter().all(|(_, empty)| *empty) {
            return Err(VariantError::Space(
                "every knob dimension is empty: the space describes no design points".into(),
            ));
        }
        reject_duplicates("threads", &self.threads)?;
        reject_duplicates("layouts", &self.layouts)?;
        reject_duplicates("tiles", &self.tiles)?;
        reject_duplicates("hw_targets", &self.hw_targets)?;
        reject_duplicates("banks", &self.banks)?;
        reject_duplicates("pes", &self.pes)?;
        reject_duplicates("pipeline", &self.pipeline)?;
        reject_duplicates("dift", &self.dift)?;
        Ok(())
    }

    /// Enumerates every point as a typed [`KnobVector`]: the cross
    /// product of software knobs followed by the cross product of
    /// hardware knobs, in a deterministic order that is part of the DSE
    /// contract (variant ids are `kernel#index` into this order).
    pub fn enumerate_knobs(&self) -> Vec<KnobVector> {
        let mut points = Vec::with_capacity(self.size());
        for &threads in &self.threads {
            for &layout in &self.layouts {
                for &tile in &self.tiles {
                    points.push(KnobVector::Software { threads, layout, tile });
                }
            }
        }
        for &target in &self.hw_targets {
            for &banks in &self.banks {
                for &pe in &self.pes {
                    for &pipeline in &self.pipeline {
                        for &dift in &self.dift {
                            points.push(KnobVector::Hardware { target, banks, pe, pipeline, dift });
                        }
                    }
                }
            }
        }
        points
    }

    /// Enumerates every point as a legacy transform list. Prefer
    /// [`DesignSpace::enumerate_knobs`]; this lowers each typed point
    /// through [`KnobVector::to_transforms`] for consumers that still
    /// speak `Vec<Transform>`.
    pub fn enumerate(&self) -> Vec<Vec<Transform>> {
        self.enumerate_knobs().iter().map(KnobVector::to_transforms).collect()
    }

    /// Number of points this space enumerates.
    pub fn size(&self) -> usize {
        self.threads.len() * self.layouts.len() * self.tiles.len()
            + self.hw_targets.len()
                * self.banks.len()
                * self.pes.len()
                * self.pipeline.len()
                * self.dift.len()
    }
}

/// Rejects a knob list that repeats a value, naming the knob and value.
fn reject_duplicates<T: PartialEq + std::fmt::Debug>(
    name: &str,
    values: &[T],
) -> Result<(), VariantError> {
    for (i, value) in values.iter().enumerate() {
        if values[..i].contains(value) {
            return Err(VariantError::Space(format!(
                "knob '{name}' lists {value:?} more than once; duplicate knob values enumerate \
                 the same design point twice and silently bias every downstream statistic"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::SpecExt;

    #[test]
    fn default_space_size() {
        let s = DesignSpace::default();
        assert_eq!(s.size(), 4 * 2 * 2 + 2 * 2 * 2);
        assert_eq!(s.enumerate().len(), s.size());
    }

    #[test]
    fn small_space_has_three_points() {
        let s = DesignSpace::small();
        assert_eq!(s.enumerate().len(), 3);
    }

    #[test]
    fn software_only_space_has_no_fpga_points() {
        let s = DesignSpace::software_only();
        assert!(s.enumerate().iter().all(|spec| !spec.target().is_fpga()));
    }

    #[test]
    fn validate_accepts_the_stock_spaces() {
        assert!(DesignSpace::default().validate().is_ok());
        assert!(DesignSpace::small().validate().is_ok());
        assert!(DesignSpace::software_only().validate().is_ok());
    }

    #[test]
    fn validate_rejects_empty_knob_inside_populated_group() {
        let space = DesignSpace { threads: Vec::new(), ..DesignSpace::default() };
        assert_eq!(space.enumerate().len(), 8, "software points silently vanish");
        let err = space.validate().unwrap_err();
        let VariantError::Space(msg) = err else {
            panic!("expected a space error");
        };
        assert!(msg.contains("threads"), "error should name the empty knob: {msg}");

        let space = DesignSpace { pes: Vec::new(), dift: Vec::new(), ..DesignSpace::default() };
        assert!(space.validate().is_err());
    }

    #[test]
    fn validate_rejects_fully_empty_space() {
        let space = DesignSpace {
            threads: Vec::new(),
            layouts: Vec::new(),
            tiles: Vec::new(),
            hw_targets: Vec::new(),
            banks: Vec::new(),
            pes: Vec::new(),
            pipeline: Vec::new(),
            dift: Vec::new(),
        };
        assert_eq!(space.enumerate().len(), 0);
        assert!(matches!(space.validate(), Err(VariantError::Space(_))));
    }

    #[test]
    fn validate_rejects_duplicate_knob_values() {
        let space = DesignSpace { threads: vec![1, 4, 4], ..DesignSpace::default() };
        assert_eq!(
            space.enumerate().len(),
            space.size(),
            "duplicates double-count points, which is exactly the bias validate must reject"
        );
        let VariantError::Space(msg) = space.validate().unwrap_err() else {
            panic!("expected a space error");
        };
        assert!(msg.contains("threads") && msg.contains('4'), "names knob and value: {msg}");

        // Every knob dimension is covered, including the Option-typed and
        // bool-typed ones.
        let space = DesignSpace { tiles: vec![None, None], ..DesignSpace::default() };
        assert!(space.validate().is_err());
        let space = DesignSpace { dift: vec![false, false], ..DesignSpace::default() };
        assert!(space.validate().is_err());
        let space = DesignSpace { banks: vec![4, 16, 4], ..DesignSpace::default() };
        assert!(space.validate().is_err());
    }

    #[test]
    fn typed_and_legacy_enumeration_agree() {
        let space = DesignSpace::default();
        let knobs = space.enumerate_knobs();
        let specs = space.enumerate();
        assert_eq!(knobs.len(), specs.len());
        for (knob, spec) in knobs.iter().zip(&specs) {
            assert_eq!(&knob.to_transforms(), spec);
            assert_eq!(KnobVector::from_spec(spec), *knob);
        }
    }

    #[test]
    fn every_point_names_a_target() {
        for spec in DesignSpace::default().enumerate() {
            // target() defaulting is not exercised: the enumerator is
            // explicit about targets.
            assert!(spec.iter().any(|t| matches!(t, Transform::OnTarget(_))));
        }
    }
}
