//! Design-space definition and enumeration.

use crate::transform::{Layout, Target, Transform};

/// The knob domains a design-space exploration sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    /// Software threading degrees.
    pub threads: Vec<u32>,
    /// Data layouts.
    pub layouts: Vec<Layout>,
    /// Tile sizes (`None` = untiled).
    pub tiles: Vec<Option<usize>>,
    /// Hardware targets to consider.
    pub hw_targets: Vec<Target>,
    /// Memory banks for hardware points.
    pub banks: Vec<usize>,
    /// Processing-element counts for hardware points.
    pub pes: Vec<usize>,
    /// DIFT hardening options for hardware points.
    pub dift: Vec<bool>,
}

impl Default for DesignSpace {
    fn default() -> DesignSpace {
        DesignSpace {
            threads: vec![1, 2, 4, 8],
            layouts: vec![Layout::Aos, Layout::Soa],
            tiles: vec![None, Some(32)],
            hw_targets: vec![Target::FpgaBus, Target::FpgaNetwork],
            banks: vec![4, 16],
            pes: vec![8, 32],
            dift: vec![false],
        }
    }
}

impl DesignSpace {
    /// A minimal space for fast tests: 2 software + 1 hardware point.
    pub fn small() -> DesignSpace {
        DesignSpace {
            threads: vec![1, 4],
            layouts: vec![Layout::Aos],
            tiles: vec![None],
            hw_targets: vec![Target::FpgaBus],
            banks: vec![16],
            pes: vec![32],
            dift: vec![false],
        }
    }

    /// A software-only space (for hosts without FPGAs).
    pub fn software_only() -> DesignSpace {
        DesignSpace {
            hw_targets: Vec::new(),
            banks: Vec::new(),
            pes: Vec::new(),
            dift: Vec::new(),
            ..DesignSpace::default()
        }
    }

    /// Enumerates every point: the cross product of software knobs plus
    /// the cross product of hardware knobs.
    pub fn enumerate(&self) -> Vec<Vec<Transform>> {
        let mut specs = Vec::new();
        for &t in &self.threads {
            for &l in &self.layouts {
                for &tile in &self.tiles {
                    let mut spec = vec![
                        Transform::OnTarget(Target::Cpu),
                        Transform::Threads(t),
                        Transform::DataLayout(l),
                    ];
                    if let Some(size) = tile {
                        spec.push(Transform::Tile(size));
                    }
                    specs.push(spec);
                }
            }
        }
        for &target in &self.hw_targets {
            for &b in &self.banks {
                for &pe in &self.pes {
                    for &d in &self.dift {
                        specs.push(vec![
                            Transform::OnTarget(target),
                            Transform::Banks(b),
                            Transform::Pe(pe),
                            Transform::Pipeline(true),
                            Transform::Dift(d),
                        ]);
                    }
                }
            }
        }
        specs
    }

    /// Number of points this space enumerates.
    pub fn size(&self) -> usize {
        self.threads.len() * self.layouts.len() * self.tiles.len()
            + self.hw_targets.len() * self.banks.len() * self.pes.len() * self.dift.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::SpecExt;

    #[test]
    fn default_space_size() {
        let s = DesignSpace::default();
        assert_eq!(s.size(), 4 * 2 * 2 + 2 * 2 * 2);
        assert_eq!(s.enumerate().len(), s.size());
    }

    #[test]
    fn small_space_has_three_points() {
        let s = DesignSpace::small();
        assert_eq!(s.enumerate().len(), 3);
    }

    #[test]
    fn software_only_space_has_no_fpga_points() {
        let s = DesignSpace::software_only();
        assert!(s.enumerate().iter().all(|spec| !spec.target().is_fpga()));
    }

    #[test]
    fn every_point_names_a_target() {
        for spec in DesignSpace::default().enumerate() {
            // target() defaulting is not exercised: the enumerator is
            // explicit about targets.
            assert!(spec.iter().any(|t| matches!(t, Transform::OnTarget(_))));
        }
    }
}
