//! Kernel workload analysis: flops, bytes and arithmetic intensity from IR.

use everest_ir::attr::Attr;
use everest_ir::{Func, Type};

/// Workload characteristics of one kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelWorkload {
    /// Floating-point operations per invocation.
    pub flops: f64,
    /// Bytes read from inputs plus written to outputs.
    pub bytes: f64,
    /// Largest single tensor dimension (tiling decisions key off this).
    pub max_dim: usize,
}

impl KernelWorkload {
    /// Arithmetic intensity (flops per byte); high values favour compute
    /// resources, low values are bandwidth-bound.
    pub fn intensity(&self) -> f64 {
        if self.bytes <= 0.0 {
            return 0.0;
        }
        self.flops / self.bytes
    }
}

fn tensor_elems(ty: &Type) -> f64 {
    ty.num_elements().unwrap_or(1) as f64
}

/// Analyzes a tensor-dialect kernel.
pub fn analyze(func: &Func) -> KernelWorkload {
    let mut flops = 0.0;
    let mut max_dim = 0usize;
    let mut bytes = 0.0;
    for p in &func.params {
        bytes += p.byte_size().unwrap_or(8) as f64;
        if let Some(shape) = p.shape() {
            max_dim = max_dim.max(shape.iter().copied().max().unwrap_or(0));
        }
    }
    for r in &func.results {
        bytes += r.byte_size().unwrap_or(8) as f64;
        if let Some(shape) = r.shape() {
            max_dim = max_dim.max(shape.iter().copied().max().unwrap_or(0));
        }
    }
    func.walk(&mut |op| {
        let out_elems =
            op.results.first().map(|r| tensor_elems(func.value_type(*r))).unwrap_or(0.0);
        match op.name.as_str() {
            "tensor.matmul" => {
                // 2*m*k*n: out is m x n, the shared dim comes from operand 0.
                let k = func.value_type(op.operands[0]).shape().map(|s| s[1]).unwrap_or(1);
                flops += 2.0 * out_elems * k as f64;
            }
            "tensor.add" | "tensor.sub" | "tensor.mul" | "tensor.scale" | "tensor.relu" => {
                flops += out_elems;
            }
            // exp + divide cost ~40 scalar flops each on a CPU (polynomial
            // expansion + Newton division); custom FPGA function units make
            // this the kernel class where acceleration shines.
            "tensor.sigmoid" => flops += 40.0 * out_elems,
            "tensor.stencil" => {
                let w = op.attr("weights").and_then(Attr::as_array).map(|a| a.len()).unwrap_or(3);
                flops += 2.0 * w as f64 * out_elems;
            }
            "tensor.reduce" => {
                let in_elems = tensor_elems(func.value_type(op.operands[0]));
                flops += in_elems;
            }
            "tensor.conv2d" => {
                let taps: f64 = func
                    .value_type(op.operands[1])
                    .shape()
                    .map(|s| s.iter().product::<usize>() as f64)
                    .unwrap_or(9.0);
                flops += 2.0 * taps * out_elems;
            }
            name if name.starts_with("arith.") && name != "arith.constant" => flops += 1.0,
            _ => {}
        }
    });
    KernelWorkload { flops, bytes, max_dim }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(src: &str, name: &str) -> KernelWorkload {
        let m = everest_dsl::compile_kernels(src).unwrap();
        analyze(m.func(name).unwrap())
    }

    #[test]
    fn matmul_flops_are_2mkn() {
        let w = workload(
            "kernel mm(a: tensor<8x4xf64>, b: tensor<4x2xf64>) -> tensor<8x2xf64> { return a @ b; }",
            "mm",
        );
        assert_eq!(w.flops, 2.0 * 8.0 * 4.0 * 2.0);
        // bytes: (32 + 8 + 16 elements) * 8
        assert_eq!(w.bytes, (32.0 + 8.0 + 16.0) * 8.0);
        assert_eq!(w.max_dim, 8);
    }

    #[test]
    fn elementwise_flops_are_linear() {
        let w = workload(
            "kernel ax(a: tensor<64xf64>, b: tensor<64xf64>) -> tensor<64xf64> { return 2.0 * a + b; }",
            "ax",
        );
        // scale (64) + add (64); the 2.0 constant contributes no tensor op.
        assert_eq!(w.flops, 128.0);
    }

    #[test]
    fn matmul_has_higher_intensity_than_axpy() {
        let mm = workload(
            "kernel mm(a: tensor<64x64xf64>, b: tensor<64x64xf64>) -> tensor<64x64xf64> { return a @ b; }",
            "mm",
        );
        let ax = workload(
            "kernel ax(a: tensor<64xf64>, b: tensor<64xf64>) -> tensor<64xf64> { return a + b; }",
            "ax",
        );
        assert!(mm.intensity() > 10.0 * ax.intensity());
    }

    #[test]
    fn stencil_counts_weight_width() {
        let w3 = workload(
            "kernel s(a: tensor<128xf64>) -> tensor<128xf64> { return stencil(a, [0.2, 0.6, 0.2]); }",
            "s",
        );
        let w5 = workload(
            "kernel s(a: tensor<128xf64>) -> tensor<128xf64> { return stencil(a, [0.1, 0.2, 0.4, 0.2, 0.1]); }",
            "s",
        );
        assert!(w5.flops > w3.flops);
    }

    #[test]
    fn zero_byte_workload_has_zero_intensity() {
        let w = KernelWorkload::default();
        assert_eq!(w.intensity(), 0.0);
    }
}
