//! # everest-variants — code/hardware variant generation and DSE
//!
//! The EVEREST middle end "explore\[s\] the design space and create\[s\]
//! multiple hardware and software variants ... performance/energy
//! trade-offs that are exposed to the runtime system" (paper III-B). This
//! crate implements that stage:
//!
//! * [`analysis`] — extracts a kernel's workload (flop count, bytes moved,
//!   arithmetic intensity) from its IR;
//! * [`transform`] — the transformation vocabulary (threads, layout,
//!   tiling, FPGA offload, banking, pipelining, DIFT hardening);
//! * [`cost`] — software (roofline-style) and hardware (via
//!   [`everest_hls`]) cost models;
//! * [`knob`] — the typed [`KnobVector`] design point shared by
//!   enumeration, memoization and the surrogate feature encoder;
//! * [`space`] — design-space enumeration and validation;
//! * [`pareto`] — O(n log n) Pareto-front filtering over (latency,
//!   energy, area), plus exact [`pareto::hypervolume`];
//! * [`dataset`] — mass production of seed-reproducible HLS training
//!   tables (`everestc dataset`);
//! * [`model`] — pure-Rust learned cost models (gradient-boosted stumps
//!   with a ridge baseline) trained on those tables;
//! * [`explore`] — surrogate-pruned exploration: predict everything,
//!   synthesize only near the predicted Pareto front;
//! * [`error`] — the [`VariantError`] DSE failure type;
//! * [`variant`] — the [`variant::Variant`] records, serializable as the
//!   "meta-information about the variants ... provided to the runtime".
//!
//! ## Example
//!
//! ```
//! let module = everest_dsl::compile_kernels(
//!     "kernel mm(a: tensor<16x16xf64>, b: tensor<16x16xf64>) -> tensor<16x16xf64> { return a @ b; }",
//! ).unwrap();
//! let space = everest_variants::space::DesignSpace::default();
//! let variants = everest_variants::generate(module.func("mm").unwrap(), &space).unwrap();
//! assert!(variants.len() > 4);
//! let front = everest_variants::pareto::pareto_front(&variants);
//! assert!(!front.is_empty());
//! ```

pub mod analysis;
pub mod cost;
pub mod dataset;
pub mod error;
pub mod explore;
pub mod knob;
pub mod model;
pub mod pareto;
pub mod space;
pub mod transform;
pub mod variant;

pub use analysis::KernelWorkload;
pub use dataset::{Dataset, DatasetConfig, KnobDomains};
pub use error::{VariantError, VariantResult};
pub use explore::{generate_all_pruned, ExploreReport, PruneConfig};
pub use knob::{KnobVector, KERNEL_FEATURES, KNOB_FEATURES};
pub use model::{FitConfig, SurrogateModel};
pub use transform::{Layout, Target, Transform};
pub use variant::{Metrics, Variant};

use everest_ir::Func;
use everest_workflow::pool;

/// Generates the full variant set for a kernel over a design space using
/// the sequential reference evaluator (`jobs = 1`).
///
/// # Errors
///
/// Returns [`VariantError`] for a malformed space or an HLS failure.
pub fn generate(func: &Func, space: &space::DesignSpace) -> VariantResult<Vec<Variant>> {
    generate_jobs(func, space, 1)
}

/// Generates the variant set for one kernel with `jobs` workers.
///
/// See [`generate_all`] for the `jobs` semantics.
///
/// # Errors
///
/// Returns [`VariantError`] for a malformed space or an HLS failure.
pub fn generate_jobs(
    func: &Func,
    space: &space::DesignSpace,
    jobs: usize,
) -> VariantResult<Vec<Variant>> {
    Ok(generate_all(&[func], space, jobs)?.pop().expect("one variant set per kernel"))
}

/// The DSE engine: evaluates every design point of every kernel, fanning
/// the flattened (kernel × point) batch across `jobs` pool workers.
///
/// * `jobs == 1` runs the sequential reference flow: every point is
///   evaluated in enumeration order on the calling thread and every
///   hardware point synthesizes directly (no memoization) — exactly the
///   historical behavior.
/// * `jobs >= 2` engages the parallel, memoized engine: points are
///   evaluated concurrently and hardware synthesis goes through the
///   shared [`everest_hls::cache`], collapsing the redundancy between
///   points that differ only in software knobs or attachment target and
///   sharing results across structurally identical kernels.
///
/// Results are written back by enumeration index, so variant ids,
/// ordering and metrics are bit-identical at any worker count; on
/// failure, the error of the lowest-indexed failing point is returned
/// regardless of evaluation order.
///
/// # Errors
///
/// Returns [`VariantError::Space`] for a malformed space and
/// [`VariantError::Hls`] when a hardware point fails to synthesize.
pub fn generate_all(
    funcs: &[&Func],
    space: &space::DesignSpace,
    jobs: usize,
) -> VariantResult<Vec<Vec<Variant>>> {
    space.validate()?;
    let knobs = space.enumerate_knobs();
    let points = knobs.len();
    let mut dse_span = everest_telemetry::span("dse.evaluate", "variants");
    dse_span.attr("kernels", funcs.len());
    dse_span.attr("points", points * funcs.len());
    dse_span.attr("jobs", jobs.max(1));
    let workloads: Vec<KernelWorkload> = funcs.iter().map(|f| analysis::analyze(f)).collect();

    let items: Vec<(usize, usize)> =
        (0..funcs.len()).flat_map(|k| (0..points).map(move |i| (k, i))).collect();
    let memoize = jobs >= 2;
    let evaluated = pool::parallel_map("dse.worker", jobs, items, |_, (k, i)| {
        if memoize {
            cost::evaluate_knob_memo(funcs[k], &workloads[k], &knobs[i])
        } else {
            cost::evaluate_knob(funcs[k], &workloads[k], &knobs[i])
        }
    });

    let mut sets = Vec::with_capacity(funcs.len());
    let mut results = evaluated.into_iter();
    for func in funcs {
        let mut span = everest_telemetry::span("variants.generate", "variants");
        span.attr("kernel", &func.name);
        span.attr("space", points);
        let mut variants = Vec::with_capacity(points);
        for (i, knob) in knobs.iter().enumerate() {
            let metrics = results.next().expect("one result per point")?;
            variants.push(Variant {
                id: format!("{}#{}", func.name, i),
                kernel: func.name.clone(),
                transforms: knob.to_transforms(),
                metrics,
            });
        }
        sets.push(variants);
    }
    Ok(sets)
}
