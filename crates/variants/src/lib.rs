//! # everest-variants — code/hardware variant generation and DSE
//!
//! The EVEREST middle end "explore\[s\] the design space and create\[s\]
//! multiple hardware and software variants ... performance/energy
//! trade-offs that are exposed to the runtime system" (paper III-B). This
//! crate implements that stage:
//!
//! * [`analysis`] — extracts a kernel's workload (flop count, bytes moved,
//!   arithmetic intensity) from its IR;
//! * [`transform`] — the transformation vocabulary (threads, layout,
//!   tiling, FPGA offload, banking, pipelining, DIFT hardening);
//! * [`cost`] — software (roofline-style) and hardware (via
//!   [`everest_hls`]) cost models;
//! * [`space`] — design-space enumeration;
//! * [`pareto`] — Pareto-front filtering over (latency, energy, area);
//! * [`variant`] — the [`variant::Variant`] records, serializable as the
//!   "meta-information about the variants ... provided to the runtime".
//!
//! ## Example
//!
//! ```
//! let module = everest_dsl::compile_kernels(
//!     "kernel mm(a: tensor<16x16xf64>, b: tensor<16x16xf64>) -> tensor<16x16xf64> { return a @ b; }",
//! ).unwrap();
//! let space = everest_variants::space::DesignSpace::default();
//! let variants = everest_variants::generate(module.func("mm").unwrap(), &space).unwrap();
//! assert!(variants.len() > 4);
//! let front = everest_variants::pareto::pareto_front(&variants);
//! assert!(!front.is_empty());
//! ```

pub mod analysis;
pub mod cost;
pub mod pareto;
pub mod space;
pub mod transform;
pub mod variant;

pub use analysis::KernelWorkload;
pub use transform::{Layout, Target, Transform};
pub use variant::{Metrics, Variant};

use everest_hls::HlsError;
use everest_ir::Func;

/// Generates the full variant set for a kernel over a design space.
///
/// # Errors
///
/// Propagates HLS failures for hardware points.
pub fn generate(func: &Func, space: &space::DesignSpace) -> Result<Vec<Variant>, HlsError> {
    let mut span = everest_telemetry::span("variants.generate", "variants");
    span.attr("kernel", &func.name);
    span.attr("space", space.size());
    let workload = analysis::analyze(func);
    let mut variants = Vec::new();
    for (i, spec) in space.enumerate().into_iter().enumerate() {
        let metrics = cost::evaluate(func, &workload, &spec)?;
        variants.push(Variant {
            id: format!("{}#{}", func.name, i),
            kernel: func.name.clone(),
            transforms: spec,
            metrics,
        });
    }
    Ok(variants)
}
