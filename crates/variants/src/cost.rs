//! Cost models mapping a design point to predicted metrics.
//!
//! Software variants use a roofline model (compute roof vs. bandwidth
//! roof, adjusted by threading, tiling and layout); hardware variants run
//! the actual HLS flow from [`everest_hls`] and add the attachment's
//! transfer cost. Every entry point takes the typed [`KnobVector`]; the
//! historical `&[Transform]` entry points survive as deprecated wrappers
//! for one release.

use crate::analysis::KernelWorkload;
use crate::knob::KnobVector;
use crate::transform::{Layout, Target, Transform};
use crate::variant::Metrics;
use everest_hls::accel::{synthesize, HlsConfig, SynthSummary};
use everest_hls::HlsError;
use everest_ir::Func;

/// Reference host CPU for software variants (one POWER9-class socket).
const GFLOPS_PER_CORE: f64 = 12.0;
const MAX_CORES: u32 = 22;
const MEM_BW_GBPS: f64 = 110.0;
const CPU_IDLE_W: f64 = 60.0;
const CPU_PER_THREAD_W: f64 = 6.0;

/// Bus attachment (OpenCAPI): latency µs, bandwidth GB/s.
const BUS_LAT_US: f64 = 0.4;
const BUS_BW_GBPS: f64 = 22.0;
/// Network attachment (cloudFPGA UDP): latency µs, bandwidth GB/s.
const NET_LAT_US: f64 = 4.0;
const NET_BW_GBPS: f64 = 1.2;

/// Evaluates one design point, synthesizing hardware points directly
/// (the sequential reference path).
///
/// # Errors
///
/// Propagates [`HlsError`] from hardware synthesis.
pub fn evaluate_knob(
    func: &Func,
    workload: &KernelWorkload,
    knob: &KnobVector,
) -> Result<Metrics, HlsError> {
    match knob {
        KnobVector::Software { .. } => Ok(software_metrics_knob(workload, knob)),
        KnobVector::Hardware { target, .. } => {
            let summary = synthesize(func, &knob.hls_config())?.summary();
            Ok(metrics_from_summary(&summary, workload, *target))
        }
    }
}

/// Evaluates one design point through the shared
/// [synthesis cache](everest_hls::cache): hardware points whose
/// HLS-relevant knobs match an already-synthesized point reuse its
/// summary instead of re-running synthesis. Metrics are derived from the
/// same [`SynthSummary`] either way, so the result is bit-identical to
/// [`evaluate_knob`].
///
/// # Errors
///
/// Propagates [`HlsError`] from hardware synthesis on a cache miss.
pub fn evaluate_knob_memo(
    func: &Func,
    workload: &KernelWorkload,
    knob: &KnobVector,
) -> Result<Metrics, HlsError> {
    match knob {
        KnobVector::Software { .. } => Ok(software_metrics_knob(workload, knob)),
        KnobVector::Hardware { target, .. } => {
            let summary = everest_hls::cache::synthesize_cached(func, &knob.hls_config())?;
            Ok(metrics_from_summary(&summary, workload, *target))
        }
    }
}

/// The synthesis summary of a hardware point, through the memo cache or
/// directly (both yield bit-identical summaries). Software points are a
/// caller bug.
///
/// # Errors
///
/// Propagates [`HlsError`] from synthesis.
pub(crate) fn summarize_hardware(
    func: &Func,
    knob: &KnobVector,
    memoize: bool,
) -> Result<SynthSummary, HlsError> {
    debug_assert!(knob.is_hardware(), "software points have no synthesis summary");
    if memoize {
        everest_hls::cache::synthesize_cached(func, &knob.hls_config())
    } else {
        Ok(synthesize(func, &knob.hls_config())?.summary())
    }
}

/// Roofline software model over the typed knobs.
pub fn software_metrics_knob(workload: &KernelWorkload, knob: &KnobVector) -> Metrics {
    let (threads, layout, tile) = match *knob {
        KnobVector::Software { threads, layout, tile } => (threads, layout, tile),
        // A hardware point run on the CPU fallback path: bare reference
        // settings.
        KnobVector::Hardware { .. } => (1, Layout::Aos, None),
    };
    let threads = threads.clamp(1, MAX_CORES);
    let parallel_eff = if threads > 1 { 0.7 } else { 1.0 };
    // Tiling improves cache reuse for large, compute-dense kernels.
    let tile_boost = match tile {
        Some(_) if workload.intensity() > 4.0 && workload.max_dim >= 32 => 1.4,
        Some(_) => 1.0,
        None => 1.0,
    };
    // SoA streams better for bandwidth-bound kernels.
    let layout_bw = match layout {
        Layout::Soa => 1.3,
        Layout::Aos => 1.0,
    };
    let compute_us =
        workload.flops / (GFLOPS_PER_CORE * 1e3 * threads as f64 * parallel_eff * tile_boost);
    let memory_us = workload.bytes / (MEM_BW_GBPS * 1e3 * layout_bw);
    let latency_us = compute_us.max(memory_us).max(0.05);
    let power_w = CPU_IDLE_W / 4.0 + CPU_PER_THREAD_W * threads as f64;
    let energy_mj = power_w * latency_us * 1e-6 * 1e3;
    Metrics { latency_us, transfer_us: 0.0, energy_mj, area_luts: 0, area_brams: 0 }
}

/// Derives variant metrics from a synthesis summary plus the
/// attachment's transfer cost. This is the single bridge from the
/// synthesis domain (cycles, LUTs) to the DSE objective domain
/// (time, energy, area) — the surrogate's predicted summaries go through
/// the same function as exact ones.
pub(crate) fn metrics_from_summary(
    summary: &SynthSummary,
    workload: &KernelWorkload,
    target: Target,
) -> Metrics {
    let (lat, bw) = match target {
        Target::FpgaBus => (BUS_LAT_US, BUS_BW_GBPS),
        Target::FpgaNetwork => (NET_LAT_US, NET_BW_GBPS),
        Target::Cpu => unreachable!("software handled by caller"),
    };
    let transfer_us = 2.0 * lat + workload.bytes / (bw * 1e3);
    let transfer_energy_mj = workload.bytes * 20e-9 * 1e3 * 1e-6; // 20 nJ/B
    Metrics {
        latency_us: summary.time_us(),
        transfer_us,
        energy_mj: summary.energy_uj() * 1e-3 + transfer_energy_mj,
        area_luts: summary.area.luts,
        area_brams: summary.area.brams,
    }
}

/// Evaluates one variant specification (deprecated transform-list entry
/// point).
///
/// # Errors
///
/// Propagates [`HlsError`] from hardware synthesis.
#[deprecated(since = "0.1.0", note = "pass a typed KnobVector to evaluate_knob instead")]
pub fn evaluate(
    func: &Func,
    workload: &KernelWorkload,
    spec: &[Transform],
) -> Result<Metrics, HlsError> {
    evaluate_knob(func, workload, &KnobVector::from_spec(spec))
}

/// Memoized evaluation of one variant specification (deprecated
/// transform-list entry point).
///
/// # Errors
///
/// Propagates [`HlsError`] from hardware synthesis on a cache miss.
#[deprecated(since = "0.1.0", note = "pass a typed KnobVector to evaluate_knob_memo instead")]
pub fn evaluate_memo(
    func: &Func,
    workload: &KernelWorkload,
    spec: &[Transform],
) -> Result<Metrics, HlsError> {
    evaluate_knob_memo(func, workload, &KnobVector::from_spec(spec))
}

/// Roofline software model (deprecated transform-list entry point).
#[deprecated(since = "0.1.0", note = "pass a typed KnobVector to software_metrics_knob instead")]
pub fn software_metrics(workload: &KernelWorkload, spec: &[Transform]) -> Metrics {
    software_metrics_knob(workload, &KnobVector::from_spec(spec))
}

/// The HLS configuration a variant specification selects (deprecated:
/// derive it from the typed knobs with [`KnobVector::hls_config`]).
#[deprecated(since = "0.1.0", note = "use KnobVector::hls_config instead")]
pub fn hls_config(spec: &[Transform]) -> HlsConfig {
    KnobVector::from_spec(spec).hls_config()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;

    fn mm_kernel(n: usize) -> Func {
        let src = format!(
            "kernel mm(a: tensor<{n}x{n}xf64>, b: tensor<{n}x{n}xf64>) -> tensor<{n}x{n}xf64> {{ return a @ b; }}"
        );
        let m = everest_dsl::compile_kernels(&src).unwrap();
        m.func("mm").unwrap().clone()
    }

    fn sw(threads: u32, layout: Layout, tile: Option<usize>) -> KnobVector {
        KnobVector::Software { threads, layout, tile }
    }

    fn hw(target: Target, dift: bool) -> KnobVector {
        KnobVector::Hardware { target, banks: 4, pe: 8, pipeline: true, dift }
    }

    #[test]
    fn more_threads_reduce_compute_bound_latency() {
        let f = mm_kernel(64);
        let w = analyze(&f);
        let t1 = software_metrics_knob(&w, &sw(1, Layout::Aos, None));
        let t8 = software_metrics_knob(&w, &sw(8, Layout::Aos, None));
        assert!(t8.latency_us < t1.latency_us);
    }

    #[test]
    fn tiling_helps_only_dense_kernels() {
        let mm = analyze(&mm_kernel(64));
        let tiled = software_metrics_knob(&mm, &sw(1, Layout::Aos, Some(32)));
        let flat = software_metrics_knob(&mm, &sw(1, Layout::Aos, None));
        assert!(tiled.latency_us < flat.latency_us);

        // A bandwidth-bound axpy gains nothing from tiling.
        let m = everest_dsl::compile_kernels(
            "kernel ax(a: tensor<64xf64>, b: tensor<64xf64>) -> tensor<64xf64> { return a + b; }",
        )
        .unwrap();
        let ax = analyze(m.func("ax").unwrap());
        let tiled = software_metrics_knob(&ax, &sw(1, Layout::Aos, Some(32)));
        let flat = software_metrics_knob(&ax, &sw(1, Layout::Aos, None));
        assert_eq!(tiled.latency_us, flat.latency_us);
    }

    #[test]
    fn soa_helps_bandwidth_bound_kernels() {
        let m = everest_dsl::compile_kernels(
            "kernel ax(a: tensor<4096xf64>, b: tensor<4096xf64>) -> tensor<4096xf64> { return a + b; }",
        )
        .unwrap();
        let w = analyze(m.func("ax").unwrap());
        let soa = software_metrics_knob(&w, &sw(1, Layout::Soa, None));
        let aos = software_metrics_knob(&w, &sw(1, Layout::Aos, None));
        assert!(soa.latency_us <= aos.latency_us);
    }

    #[test]
    fn hardware_variants_carry_area() {
        let f = mm_kernel(16);
        let w = analyze(&f);
        let m = evaluate_knob(&f, &w, &hw(Target::FpgaBus, false)).unwrap();
        assert!(m.area_luts > 0);
        assert!(m.transfer_us > 0.0);
    }

    #[test]
    fn network_attachment_pays_more_transfer_than_bus() {
        let f = mm_kernel(16);
        let w = analyze(&f);
        let bus = evaluate_knob(&f, &w, &hw(Target::FpgaBus, false)).unwrap();
        let net = evaluate_knob(&f, &w, &hw(Target::FpgaNetwork, false)).unwrap();
        assert!(net.transfer_us > bus.transfer_us);
        assert_eq!(net.latency_us, bus.latency_us); // same synthesized kernel
    }

    #[test]
    fn dift_variant_costs_more_area() {
        let f = mm_kernel(16);
        let w = analyze(&f);
        let plain = evaluate_knob(&f, &w, &hw(Target::FpgaBus, false)).unwrap();
        let hard = evaluate_knob(&f, &w, &hw(Target::FpgaBus, true)).unwrap();
        assert!(hard.area_luts > plain.area_luts);
    }

    #[test]
    fn memoized_and_direct_paths_agree() {
        let f = mm_kernel(16);
        let w = analyze(&f);
        let knob = hw(Target::FpgaBus, false);
        let direct = evaluate_knob(&f, &w, &knob).unwrap();
        let memo = evaluate_knob_memo(&f, &w, &knob).unwrap();
        assert_eq!(direct, memo, "memoized metrics must be bit-identical to direct synthesis");
    }
}
