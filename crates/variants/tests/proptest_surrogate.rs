//! Property tests for the learned-cost-model stack: surrogate fits are
//! bit-deterministic, monotone training data yields monotone predictions,
//! and neither the dataset factory nor the surrogate-pruned explorer lets
//! the worker count show through in its output.

use everest_variants::dataset::{self, DatasetConfig};
use everest_variants::knob::KnobVector;
use everest_variants::model::{FitConfig, SurrogateModel};
use everest_variants::space::DesignSpace;
use everest_variants::transform::Layout;
use everest_variants::{generate_all, generate_all_pruned, Dataset, PruneConfig};
use proptest::prelude::*;

/// A synthetic one-feature dataset with the given (x, y) pairs.
fn table(points: &[(f64, f64)]) -> Dataset {
    Dataset {
        feature_names: vec!["x".to_owned()],
        target_names: vec!["y".to_owned()],
        rows: points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| dataset::DatasetRow {
                kernel: "synthetic".to_owned(),
                fingerprint: 0,
                seed: 0,
                index: i,
                knob: KnobVector::Software { threads: 1, layout: Layout::Aos, tile: None },
                features: vec![x],
                targets: vec![y],
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn surrogate_fit_is_bit_deterministic(
        points in prop::collection::vec((0u8..100, 0u16..2_000), 8..48),
        probes in prop::collection::vec(0u8..120, 1..8),
    ) {
        let pairs: Vec<(f64, f64)> =
            points.iter().map(|&(x, y)| (f64::from(x), f64::from(y))).collect();
        let a = SurrogateModel::fit(&table(&pairs), &FitConfig::default());
        let b = SurrogateModel::fit(&table(&pairs), &FitConfig::default());
        prop_assert_eq!(a.to_json(), b.to_json());
        for probe in probes {
            let x = [f64::from(probe)];
            prop_assert_eq!(a.predict(&x), b.predict(&x));
        }
    }

    #[test]
    fn monotone_data_yields_monotone_predictions(
        xs in prop::collection::vec(0u8..100, 12..48),
        slope in 1u8..9,
        intercept in 0u8..50,
    ) {
        // Exactly-linear responses: in plain target space the ridge
        // regressor recovers the law (near-)exactly, so whichever
        // regressor validation selects must predict a non-decreasing
        // curve over a non-decreasing input sweep.
        let pairs: Vec<(f64, f64)> = xs
            .iter()
            .map(|&x| {
                let x = f64::from(x);
                (x, f64::from(slope) * x + f64::from(intercept))
            })
            .collect();
        let cfg = FitConfig { log_targets: false, ..FitConfig::default() };
        let model = SurrogateModel::fit(&table(&pairs), &cfg);
        let span: f64 = f64::from(slope) * 100.0;
        let mut last = f64::NEG_INFINITY;
        for x in 0..=100 {
            let pred = model.predict(&[f64::from(x)])[0];
            prop_assert!(
                pred >= last - 1e-9 * span,
                "prediction dips at x={x}: {pred} < {last}"
            );
            last = pred;
        }
    }
}

fn corpus() -> everest_ir::Module {
    everest_dsl::compile_kernels(
        "kernel mm(a: tensor<8x8xf64>, b: tensor<8x8xf64>) -> tensor<8x8xf64> {
             return a @ b;
         }
         kernel ax(a: tensor<32xf64>, b: tensor<32xf64>) -> tensor<32xf64> {
             return 2.0 * a + b;
         }",
    )
    .expect("corpus compiles")
}

/// A space wide enough for the explorer to engage the model instead of
/// falling back (mirrors the unit suite's wide space).
fn wide_space() -> DesignSpace {
    DesignSpace {
        banks: vec![1, 2, 4, 8, 16],
        pes: vec![1, 2, 4, 8, 16, 32],
        pipeline: vec![true, false],
        dift: vec![false, true],
        ..DesignSpace::default()
    }
}

proptest! {
    // Each case fans real (simulated) synthesis across worker pools, so
    // keep the case count low: the property is about seeds, not volume.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn dataset_production_never_exposes_the_worker_count(
        seed in 0u64..1_000,
        points in 8usize..24,
    ) {
        let module = corpus();
        let funcs: Vec<&everest_ir::Func> = module.iter().collect();
        let reference = dataset::produce(
            &funcs,
            &DatasetConfig { seed, points, jobs: 1, ..DatasetConfig::default() },
        )
        .expect("production succeeds");
        for jobs in [2usize, 4] {
            let parallel = dataset::produce(
                &funcs,
                &DatasetConfig { seed, points, jobs, ..DatasetConfig::default() },
            )
            .expect("production succeeds");
            prop_assert_eq!(reference.to_csv(), parallel.to_csv());
        }
    }

    #[test]
    fn pruned_exploration_never_exposes_the_worker_count(seed in 0u64..1_000) {
        let module = corpus();
        let funcs: Vec<&everest_ir::Func> = module.iter().collect();
        let cfg = PruneConfig { seed, ..PruneConfig::default() };
        let space = wide_space();
        let (reference, report) =
            generate_all_pruned(&funcs, &space, 1, &cfg).expect("exploration succeeds");
        for jobs in [2usize, 4] {
            let (parallel, parallel_report) =
                generate_all_pruned(&funcs, &space, jobs, &cfg).expect("exploration succeeds");
            prop_assert_eq!(&reference, &parallel);
            prop_assert_eq!(&report, &parallel_report);
        }
        // Whatever survives pruning is a subset of the exhaustive sweep,
        // with identical ids and exactly-evaluated metrics.
        let exhaustive = generate_all(&funcs, &space, 2).expect("exhaustive sweep succeeds");
        for (pruned_set, full_set) in reference.iter().zip(&exhaustive) {
            for v in pruned_set {
                let exact = full_set.iter().find(|f| f.id == v.id);
                prop_assert_eq!(Some(&v.metrics), exact.map(|f| &f.metrics));
            }
        }
    }
}
