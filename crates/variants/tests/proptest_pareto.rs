//! Property test: the O(n log n) sort-then-sweep Pareto filter is
//! observably identical to the naive O(n²) reference on random variant
//! sets, including ties, duplicated points and degenerate axes.

use everest_variants::pareto::{dominates, pareto_front};
use everest_variants::variant::{Metrics, Variant};
use proptest::prelude::*;

fn variant(i: usize, time: f64, energy: f64, luts: u64) -> Variant {
    Variant {
        id: format!("v{i}"),
        kernel: "k".into(),
        transforms: vec![],
        metrics: Metrics {
            latency_us: time,
            transfer_us: 0.0,
            energy_mj: energy,
            area_luts: luts,
            area_brams: 0,
        },
    }
}

/// The naive reference: keep every variant no other variant dominates,
/// preserving input order.
fn naive_front(variants: &[Variant]) -> Vec<Variant> {
    variants.iter().filter(|v| !variants.iter().any(|other| dominates(other, v))).cloned().collect()
}

fn ids(front: &[Variant]) -> Vec<String> {
    front.iter().map(|v| v.id.clone()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sweep_matches_naive_on_random_sets(
        // Small discrete domains force plenty of ties and duplicates,
        // which is where a sweep is easiest to get wrong.
        points in prop::collection::vec((0u8..6, 0u8..6, 0u64..6), 0..40),
    ) {
        let variants: Vec<Variant> = points
            .iter()
            .enumerate()
            .map(|(i, &(t, e, a))| variant(i, f64::from(t), f64::from(e), a))
            .collect();
        prop_assert_eq!(ids(&pareto_front(&variants)), ids(&naive_front(&variants)));
    }

    #[test]
    fn sweep_matches_naive_on_continuous_sets(
        points in prop::collection::vec(
            (0.0f64..100.0, 0.0f64..100.0, 0u64..10_000),
            0..40,
        ),
    ) {
        let variants: Vec<Variant> = points
            .iter()
            .enumerate()
            .map(|(i, &(t, e, a))| variant(i, t, e, a))
            .collect();
        prop_assert_eq!(ids(&pareto_front(&variants)), ids(&naive_front(&variants)));
    }

    #[test]
    fn sweep_matches_naive_on_degenerate_axes(
        // Everything shares one time value: dominance is decided purely
        // by the (energy, area) staircase.
        points in prop::collection::vec((0u8..4, 0u64..4), 0..30),
    ) {
        let variants: Vec<Variant> = points
            .iter()
            .enumerate()
            .map(|(i, &(e, a))| variant(i, 1.0, f64::from(e), a))
            .collect();
        prop_assert_eq!(ids(&pareto_front(&variants)), ids(&naive_front(&variants)));
    }

    #[test]
    fn front_members_are_mutually_non_dominating(
        points in prop::collection::vec((0u8..8, 0u8..8, 0u64..8), 1..30),
    ) {
        let variants: Vec<Variant> = points
            .iter()
            .enumerate()
            .map(|(i, &(t, e, a))| variant(i, f64::from(t), f64::from(e), a))
            .collect();
        let front = pareto_front(&variants);
        prop_assert!(!front.is_empty());
        for a in &front {
            for b in &front {
                prop_assert!(!dominates(a, b));
            }
        }
    }
}
