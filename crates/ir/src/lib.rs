//! # everest-ir — the EVEREST unified intermediate representation
//!
//! The EVEREST compilation flow (paper Fig. 1) unifies workflow orchestration
//! and kernel specifications "into a single MLIR". This crate implements that
//! unified IR from scratch: an SSA-based, multi-dialect, region-structured
//! intermediate representation together with a builder API, a verifier, a
//! textual printer/parser pair, and a pass framework with the classic
//! scalar-optimization passes the middle end relies on.
//!
//! The design intentionally mirrors MLIR's concepts at a smaller scale:
//!
//! * a [`Module`] holds a list of [`Func`]s;
//! * a [`Func`] owns a [`Region`] of [`Block`]s, each block holding a list of
//!   [`Op`]s in program order;
//! * every [`Op`] is a generic record — `name`, operands, results,
//!   attributes, nested regions — whose structural constraints are supplied
//!   by a dialect registry ([`crate::registry`]);
//! * SSA [`Value`]s are function-scoped handles with types tracked in a side
//!   table on the function.
//!
//! Dialects provided (paper Section III): `arith`/`cf` (builtin scalar
//! compute + control), `tensor` (data-centric tensor abstraction), `df`
//! (dataflow/workflow orchestration), `hls` (hardware-generation directives)
//! and `secure` (data-protection annotations).
//!
//! ## Example
//!
//! ```
//! use everest_ir::{Module, FuncBuilder, Type};
//!
//! let mut module = Module::new("demo");
//! let mut fb = FuncBuilder::new("axpy", &[Type::F64, Type::F64], &[Type::F64]);
//! let a = fb.arg(0);
//! let x = fb.arg(1);
//! let prod = fb.binary("arith.mulf", a, x, Type::F64);
//! fb.ret(&[prod]);
//! module.push(fb.finish());
//! assert!(module.verify().is_ok());
//! let text = module.to_text();
//! let reparsed = everest_ir::parse_module(&text).unwrap();
//! assert_eq!(text, reparsed.to_text());
//! ```

pub mod attr;
pub mod builder;
pub mod dataflow;
pub mod diag;
pub mod dialects;
pub mod error;
pub mod footprint;
pub mod interp;
pub mod ir;
pub mod lints;
pub mod parse;
pub mod pass;
pub mod print;
pub mod registry;
pub mod simd;
pub mod transforms;
pub mod types;
pub mod verify;

pub use attr::Attr;
pub use builder::FuncBuilder;
pub use dataflow::{analyze, analyze_ordered, Analysis, Direction, Interval, Lattice, Site};
pub use diag::{render_json, render_text, Diagnostic, Severity, DIAG_SCHEMA_VERSION};
pub use error::{IrError, IrResult};
pub use footprint::{fn_footprint, module_footprints, FnFootprint, ShapeAnalysis, ShapeFact};
pub use ir::{Block, BlockId, Func, Module, Op, Region, Value};
pub use lints::{check_func, check_module, taint_summary, CheckPass, TaintSummary};
pub use parse::parse_module;
pub use pass::{Pass, PassManager};
pub use types::Type;
