//! The dialect registry: structural specifications for every operation the
//! EVEREST IR understands.
//!
//! Each op is described by an [`OpSpec`] giving its operand/result arity,
//! traits (purity, terminator), required attributes and region count. The
//! verifier, the printer/parser and the generic passes are all driven by
//! this table, so adding a dialect is a matter of adding rows here plus an
//! optional type-check hook in [`crate::verify`].

use std::collections::HashMap;
use std::sync::OnceLock;

/// Operand or result arity constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arity {
    /// Exactly `n`.
    Exact(usize),
    /// At least `n`.
    AtLeast(usize),
    /// Any number, including zero.
    Any,
}

impl Arity {
    /// Whether `n` satisfies this constraint.
    pub fn admits(&self, n: usize) -> bool {
        match self {
            Arity::Exact(k) => n == *k,
            Arity::AtLeast(k) => n >= *k,
            Arity::Any => true,
        }
    }
}

/// Static description of one operation.
#[derive(Debug, Clone, Copy)]
pub struct OpSpec {
    /// Fully qualified op name (`dialect.mnemonic`).
    pub name: &'static str,
    /// Operand arity.
    pub operands: Arity,
    /// Result arity.
    pub results: Arity,
    /// `true` if the op has no side effects and may be deleted when unused
    /// or deduplicated by CSE.
    pub pure: bool,
    /// `true` if the op must appear last in its block.
    pub terminator: bool,
    /// Attribute keys that must be present.
    pub required_attrs: &'static [&'static str],
    /// Exact number of nested regions.
    pub regions: usize,
}

/// All registered dialect names.
pub const DIALECTS: &[&str] =
    &["arith", "func", "cf", "loop", "mem", "tensor", "df", "hls", "secure"];

const fn spec(
    name: &'static str,
    operands: Arity,
    results: Arity,
    pure: bool,
    terminator: bool,
    required_attrs: &'static [&'static str],
    regions: usize,
) -> OpSpec {
    OpSpec { name, operands, results, pure, terminator, required_attrs, regions }
}

/// The full op table, grouped by dialect.
pub static OP_SPECS: &[OpSpec] = &[
    // --- arith: scalar arithmetic --------------------------------------
    spec("arith.constant", Arity::Exact(0), Arity::Exact(1), true, false, &["value"], 0),
    spec("arith.addf", Arity::Exact(2), Arity::Exact(1), true, false, &[], 0),
    spec("arith.subf", Arity::Exact(2), Arity::Exact(1), true, false, &[], 0),
    spec("arith.mulf", Arity::Exact(2), Arity::Exact(1), true, false, &[], 0),
    spec("arith.divf", Arity::Exact(2), Arity::Exact(1), true, false, &[], 0),
    spec("arith.maxf", Arity::Exact(2), Arity::Exact(1), true, false, &[], 0),
    spec("arith.minf", Arity::Exact(2), Arity::Exact(1), true, false, &[], 0),
    spec("arith.negf", Arity::Exact(1), Arity::Exact(1), true, false, &[], 0),
    spec("arith.sqrtf", Arity::Exact(1), Arity::Exact(1), true, false, &[], 0),
    spec("arith.expf", Arity::Exact(1), Arity::Exact(1), true, false, &[], 0),
    spec("arith.addi", Arity::Exact(2), Arity::Exact(1), true, false, &[], 0),
    spec("arith.subi", Arity::Exact(2), Arity::Exact(1), true, false, &[], 0),
    spec("arith.muli", Arity::Exact(2), Arity::Exact(1), true, false, &[], 0),
    spec("arith.divi", Arity::Exact(2), Arity::Exact(1), true, false, &[], 0),
    spec("arith.remi", Arity::Exact(2), Arity::Exact(1), true, false, &[], 0),
    spec("arith.cmpf", Arity::Exact(2), Arity::Exact(1), true, false, &["pred"], 0),
    spec("arith.cmpi", Arity::Exact(2), Arity::Exact(1), true, false, &["pred"], 0),
    spec("arith.select", Arity::Exact(3), Arity::Exact(1), true, false, &[], 0),
    spec("arith.sitofp", Arity::Exact(1), Arity::Exact(1), true, false, &[], 0),
    spec("arith.fptosi", Arity::Exact(1), Arity::Exact(1), true, false, &[], 0),
    // --- func: calls and returns ---------------------------------------
    spec("func.return", Arity::Any, Arity::Exact(0), false, true, &[], 0),
    spec("func.call", Arity::Any, Arity::Any, false, false, &["callee"], 0),
    // --- cf: unstructured control flow ----------------------------------
    spec("cf.br", Arity::Any, Arity::Exact(0), false, true, &["dest"], 0),
    spec(
        "cf.cond_br",
        Arity::Exact(1),
        Arity::Exact(0),
        false,
        true,
        &["true_dest", "false_dest"],
        0,
    ),
    // --- loop: structured counted loops ---------------------------------
    // Operands are the loop-carried init values; the body block takes the
    // induction variable followed by the iteration arguments; results are
    // the final iteration values.
    spec("loop.for", Arity::Any, Arity::Any, false, false, &["lo", "hi", "step"], 1),
    spec("loop.yield", Arity::Any, Arity::Exact(0), false, true, &[], 0),
    // --- mem: buffers ----------------------------------------------------
    spec("mem.alloc", Arity::Exact(0), Arity::Exact(1), false, false, &[], 0),
    spec("mem.load", Arity::AtLeast(1), Arity::Exact(1), true, false, &[], 0),
    spec("mem.store", Arity::AtLeast(2), Arity::Exact(0), false, false, &[], 0),
    spec("mem.copy", Arity::Exact(2), Arity::Exact(0), false, false, &[], 0),
    // --- tensor: data-centric dense algebra ------------------------------
    spec("tensor.fill", Arity::Exact(0), Arity::Exact(1), true, false, &["value"], 0),
    spec("tensor.matmul", Arity::Exact(2), Arity::Exact(1), true, false, &[], 0),
    spec("tensor.add", Arity::Exact(2), Arity::Exact(1), true, false, &[], 0),
    spec("tensor.sub", Arity::Exact(2), Arity::Exact(1), true, false, &[], 0),
    spec("tensor.mul", Arity::Exact(2), Arity::Exact(1), true, false, &[], 0),
    spec("tensor.scale", Arity::Exact(2), Arity::Exact(1), true, false, &[], 0),
    spec("tensor.transpose", Arity::Exact(1), Arity::Exact(1), true, false, &["perm"], 0),
    spec("tensor.reduce", Arity::Exact(1), Arity::Exact(1), true, false, &["dims", "kind"], 0),
    spec("tensor.reshape", Arity::Exact(1), Arity::Exact(1), true, false, &["shape"], 0),
    spec("tensor.conv2d", Arity::Exact(2), Arity::Exact(1), true, false, &[], 0),
    spec("tensor.stencil", Arity::Exact(1), Arity::Exact(1), true, false, &["weights"], 0),
    spec("tensor.relu", Arity::Exact(1), Arity::Exact(1), true, false, &[], 0),
    spec("tensor.sigmoid", Arity::Exact(1), Arity::Exact(1), true, false, &[], 0),
    // --- df: dataflow / workflow orchestration --------------------------
    spec("df.graph", Arity::Any, Arity::Any, false, false, &[], 1),
    spec("df.task", Arity::Any, Arity::Any, false, false, &["callee"], 0),
    spec("df.source", Arity::Exact(0), Arity::Exact(1), false, false, &["kind"], 0),
    spec("df.sink", Arity::AtLeast(1), Arity::Exact(0), false, false, &["kind"], 0),
    spec("df.yield", Arity::Any, Arity::Exact(0), false, true, &[], 0),
    // --- hls: hardware generation directives -----------------------------
    spec("hls.offload", Arity::Any, Arity::Any, false, false, &["kernel"], 0),
    spec("hls.partition", Arity::Exact(1), Arity::Exact(1), false, false, &["banks", "scheme"], 0),
    // --- secure: data-protection annotations -----------------------------
    spec("secure.encrypt", Arity::Exact(2), Arity::Exact(1), false, false, &[], 0),
    spec("secure.decrypt", Arity::Exact(2), Arity::Exact(1), false, false, &[], 0),
    spec("secure.taint", Arity::Exact(1), Arity::Exact(1), false, false, &["label"], 0),
    spec("secure.declassify", Arity::Exact(1), Arity::Exact(1), false, false, &[], 0),
    spec("secure.check", Arity::Exact(1), Arity::Exact(0), false, false, &["policy"], 0),
];

fn table() -> &'static HashMap<&'static str, &'static OpSpec> {
    static TABLE: OnceLock<HashMap<&'static str, &'static OpSpec>> = OnceLock::new();
    TABLE.get_or_init(|| OP_SPECS.iter().map(|s| (s.name, s)).collect())
}

/// Looks up the spec for an op name.
///
/// ```
/// let spec = everest_ir::registry::lookup("arith.addf").unwrap();
/// assert!(spec.pure);
/// ```
pub fn lookup(name: &str) -> Option<&'static OpSpec> {
    table().get(name).copied()
}

/// Whether the given op name denotes a pure (side-effect free) operation.
/// Unknown ops are conservatively treated as impure.
pub fn is_pure(name: &str) -> bool {
    lookup(name).map(|s| s.pure).unwrap_or(false)
}

/// Whether the given op name denotes a block terminator.
pub fn is_terminator(name: &str) -> bool {
    lookup(name).map(|s| s.terminator).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_admits() {
        assert!(Arity::Exact(2).admits(2));
        assert!(!Arity::Exact(2).admits(3));
        assert!(Arity::AtLeast(1).admits(5));
        assert!(!Arity::AtLeast(1).admits(0));
        assert!(Arity::Any.admits(0));
    }

    #[test]
    fn lookup_known_and_unknown() {
        assert!(lookup("tensor.matmul").is_some());
        assert!(lookup("bogus.op").is_none());
    }

    #[test]
    fn every_spec_name_has_registered_dialect_prefix() {
        for s in OP_SPECS {
            let dialect = s.name.split('.').next().unwrap();
            assert!(DIALECTS.contains(&dialect), "dialect of {} unregistered", s.name);
        }
    }

    #[test]
    fn spec_names_are_unique() {
        let mut names: Vec<_> = OP_SPECS.iter().map(|s| s.name).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn traits_match_expectations() {
        assert!(is_pure("arith.mulf"));
        assert!(!is_pure("mem.store"));
        assert!(!is_pure("no.such.op"));
        assert!(is_terminator("func.return"));
        assert!(is_terminator("loop.yield"));
        assert!(!is_terminator("arith.addf"));
    }

    #[test]
    fn terminators_produce_no_results() {
        for s in OP_SPECS.iter().filter(|s| s.terminator) {
            assert_eq!(s.results, Arity::Exact(0), "{} is a terminator with results", s.name);
        }
    }
}
