//! A reference interpreter for the EVEREST IR.
//!
//! The interpreter executes both representation levels the compiler works
//! on — abstract `tensor` ops *and* the lowered `loop`/`mem` form — which
//! enables differential testing: lowering a kernel must not change what it
//! computes. Floating point is evaluated in `f64` regardless of the
//! declared width (reference semantics, not bit-accuracy).

use crate::attr::Attr;
use crate::error::{IrError, IrResult};
use crate::ir::{Block, Func, Module, Op, Value};
use std::collections::HashMap;

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum RtValue {
    /// Any float (f32 is evaluated in f64).
    Float(f64),
    /// Any integer (including `index` and `i1`).
    Int(i64),
    /// A dense tensor (row-major).
    Tensor {
        /// Shape.
        shape: Vec<usize>,
        /// Row-major data.
        data: Vec<f64>,
    },
    /// A reference to an interpreter-managed buffer (memref).
    Buffer(usize),
}

impl RtValue {
    /// Builds a tensor value.
    ///
    /// # Panics
    ///
    /// Panics if `data` does not match `shape`.
    pub fn tensor(shape: &[usize], data: Vec<f64>) -> RtValue {
        assert_eq!(shape.iter().product::<usize>(), data.len(), "shape/data mismatch");
        RtValue::Tensor { shape: shape.to_vec(), data }
    }

    fn as_float(&self) -> IrResult<f64> {
        match self {
            RtValue::Float(v) => Ok(*v),
            RtValue::Int(v) => Ok(*v as f64),
            other => Err(IrError::Pass(format!("expected scalar float, got {other:?}"))),
        }
    }

    fn as_int(&self) -> IrResult<i64> {
        match self {
            RtValue::Int(v) => Ok(*v),
            other => Err(IrError::Pass(format!("expected integer, got {other:?}"))),
        }
    }

    fn as_tensor(&self) -> IrResult<(&[usize], &[f64])> {
        match self {
            RtValue::Tensor { shape, data } => Ok((shape, data)),
            other => Err(IrError::Pass(format!("expected tensor, got {other:?}"))),
        }
    }
}

/// Interpreter state: buffers backing memref values.
#[derive(Debug, Default)]
pub struct Interp<'m> {
    module: Option<&'m Module>,
    buffers: Vec<Vec<f64>>,
    buffer_shapes: Vec<Vec<usize>>,
}

impl<'m> Interp<'m> {
    /// An interpreter without module context (no `func.call` support).
    pub fn new() -> Interp<'m> {
        Interp::default()
    }

    /// An interpreter that resolves `func.call` within `module`.
    pub fn with_module(module: &'m Module) -> Interp<'m> {
        Interp { module: Some(module), buffers: Vec::new(), buffer_shapes: Vec::new() }
    }

    /// Allocates a buffer and returns its handle as an [`RtValue::Buffer`].
    pub fn alloc_buffer(&mut self, shape: &[usize], data: Vec<f64>) -> RtValue {
        assert_eq!(shape.iter().product::<usize>(), data.len(), "shape/data mismatch");
        self.buffers.push(data);
        self.buffer_shapes.push(shape.to_vec());
        RtValue::Buffer(self.buffers.len() - 1)
    }

    /// Reads back a buffer's contents.
    ///
    /// # Panics
    ///
    /// Panics on an invalid handle.
    pub fn buffer(&self, handle: &RtValue) -> &[f64] {
        match handle {
            RtValue::Buffer(id) => &self.buffers[*id],
            other => panic!("not a buffer: {other:?}"),
        }
    }

    /// Executes `func` with `args`; returns its results.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Pass`] on unsupported ops or type mismatches.
    pub fn call(&mut self, func: &Func, args: &[RtValue]) -> IrResult<Vec<RtValue>> {
        if args.len() != func.params.len() {
            return Err(IrError::Pass(format!(
                "@{} expects {} args, got {}",
                func.name,
                func.params.len(),
                args.len()
            )));
        }
        let entry =
            func.body.entry().ok_or_else(|| IrError::Pass("function has no entry block".into()))?;
        let mut env: HashMap<Value, RtValue> = HashMap::new();
        for (arg, value) in entry.args.iter().zip(args) {
            env.insert(*arg, value.clone());
        }
        self.run_block(func, entry, &mut env)
    }

    fn flat_index(&self, buf: usize, idx: &[i64]) -> IrResult<usize> {
        let shape = &self.buffer_shapes[buf];
        if idx.len() != shape.len() {
            return Err(IrError::Pass(format!(
                "rank mismatch: {} indices for shape {shape:?}",
                idx.len()
            )));
        }
        let mut flat = 0usize;
        for (i, dim) in idx.iter().zip(shape) {
            if *i < 0 || *i as usize >= *dim {
                return Err(IrError::Pass(format!("index {i} out of bounds {dim}")));
            }
            flat = flat * dim + *i as usize;
        }
        Ok(flat)
    }

    /// Runs a block; returns the terminator's operand values.
    fn run_block(
        &mut self,
        func: &Func,
        block: &Block,
        env: &mut HashMap<Value, RtValue>,
    ) -> IrResult<Vec<RtValue>> {
        for op in &block.ops {
            if crate::registry::is_terminator(&op.name) {
                return op.operands.iter().map(|o| self.get(env, *o)).collect();
            }
            let results = self.eval_op(func, op, env)?;
            for (r, v) in op.results.iter().zip(results) {
                env.insert(*r, v);
            }
        }
        Ok(Vec::new())
    }

    fn get(&self, env: &HashMap<Value, RtValue>, v: Value) -> IrResult<RtValue> {
        env.get(&v).cloned().ok_or_else(|| IrError::Pass(format!("value {v} not bound at runtime")))
    }

    fn eval_op(
        &mut self,
        func: &Func,
        op: &Op,
        env: &mut HashMap<Value, RtValue>,
    ) -> IrResult<Vec<RtValue>> {
        let operand = |i: usize| -> IrResult<RtValue> { self.get(env, op.operands[i]) };
        match op.name.as_str() {
            "arith.constant" => {
                let ty = func.value_type(op.results[0]);
                let v = match op.attr("value") {
                    Some(Attr::Float(f)) => RtValue::Float(*f),
                    Some(Attr::Int(i)) if ty.is_int() => RtValue::Int(*i),
                    Some(Attr::Int(i)) => RtValue::Float(*i as f64),
                    other => return Err(IrError::Pass(format!("bad constant {other:?}"))),
                };
                Ok(vec![v])
            }
            "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf" | "arith.maxf"
            | "arith.minf" => {
                let a = operand(0)?.as_float()?;
                let b = operand(1)?.as_float()?;
                let r = match op.name.as_str() {
                    "arith.addf" => a + b,
                    "arith.subf" => a - b,
                    "arith.mulf" => a * b,
                    "arith.divf" => a / b,
                    "arith.maxf" => a.max(b),
                    _ => a.min(b),
                };
                Ok(vec![RtValue::Float(r)])
            }
            "arith.negf" => Ok(vec![RtValue::Float(-operand(0)?.as_float()?)]),
            "arith.sqrtf" => Ok(vec![RtValue::Float(operand(0)?.as_float()?.sqrt())]),
            "arith.expf" => Ok(vec![RtValue::Float(operand(0)?.as_float()?.exp())]),
            "arith.addi" | "arith.subi" | "arith.muli" | "arith.divi" | "arith.remi" => {
                let a = operand(0)?.as_int()?;
                let b = operand(1)?.as_int()?;
                let r = match op.name.as_str() {
                    "arith.addi" => a.wrapping_add(b),
                    "arith.subi" => a.wrapping_sub(b),
                    "arith.muli" => a.wrapping_mul(b),
                    "arith.divi" if b != 0 => a.wrapping_div(b),
                    "arith.remi" if b != 0 => a.wrapping_rem(b),
                    _ => return Err(IrError::Pass("integer division by zero".into())),
                };
                Ok(vec![RtValue::Int(r)])
            }
            "arith.cmpf" | "arith.cmpi" => {
                let pred = op
                    .attr("pred")
                    .and_then(Attr::as_str)
                    .ok_or_else(|| IrError::Pass("cmp without pred".into()))?;
                let (a, b) = if op.name == "arith.cmpf" {
                    (operand(0)?.as_float()?, operand(1)?.as_float()?)
                } else {
                    (operand(0)?.as_int()? as f64, operand(1)?.as_int()? as f64)
                };
                let r = match pred {
                    "lt" => a < b,
                    "le" => a <= b,
                    "gt" => a > b,
                    "ge" => a >= b,
                    "eq" => a == b,
                    "ne" => a != b,
                    other => return Err(IrError::Pass(format!("unknown pred '{other}'"))),
                };
                Ok(vec![RtValue::Int(i64::from(r))])
            }
            "arith.select" => {
                let c = operand(0)?.as_int()?;
                Ok(vec![if c != 0 { operand(1)? } else { operand(2)? }])
            }
            "arith.sitofp" => Ok(vec![RtValue::Float(operand(0)?.as_int()? as f64)]),
            "arith.fptosi" => Ok(vec![RtValue::Int(operand(0)?.as_float()? as i64)]),
            "loop.for" => {
                let lo = op.attr("lo").and_then(Attr::as_int).unwrap_or(0);
                let hi = op.attr("hi").and_then(Attr::as_int).unwrap_or(0);
                let step = op.attr("step").and_then(Attr::as_int).unwrap_or(1);
                if step <= 0 {
                    return Err(IrError::Pass("loop step must be positive".into()));
                }
                let body = op.regions[0]
                    .entry()
                    .ok_or_else(|| IrError::Pass("loop without body".into()))?;
                let mut carried: Vec<RtValue> =
                    op.operands.iter().map(|o| self.get(env, *o)).collect::<IrResult<_>>()?;
                let mut iv = lo;
                while iv < hi {
                    env.insert(body.args[0], RtValue::Int(iv));
                    for (arg, v) in body.args[1..].iter().zip(&carried) {
                        env.insert(*arg, v.clone());
                    }
                    carried = self.run_block(func, body, env)?;
                    iv += step;
                }
                Ok(carried)
            }
            "mem.alloc" => {
                let ty = func.value_type(op.results[0]);
                let shape =
                    ty.shape().ok_or_else(|| IrError::Pass("alloc of non-memref".into()))?.to_vec();
                let size = shape.iter().product();
                Ok(vec![self.alloc_buffer(&shape, vec![0.0; size])])
            }
            "mem.load" => {
                let buf = match operand(0)? {
                    RtValue::Buffer(id) => id,
                    other => return Err(IrError::Pass(format!("load from {other:?}"))),
                };
                let idx: Vec<i64> = op.operands[1..]
                    .iter()
                    .map(|o| self.get(env, *o)?.as_int())
                    .collect::<IrResult<_>>()?;
                let flat = self.flat_index(buf, &idx)?;
                Ok(vec![RtValue::Float(self.buffers[buf][flat])])
            }
            "mem.store" => {
                let value = operand(0)?.as_float()?;
                let buf = match operand(1)? {
                    RtValue::Buffer(id) => id,
                    other => return Err(IrError::Pass(format!("store into {other:?}"))),
                };
                let idx: Vec<i64> = op.operands[2..]
                    .iter()
                    .map(|o| self.get(env, *o)?.as_int())
                    .collect::<IrResult<_>>()?;
                let flat = self.flat_index(buf, &idx)?;
                self.buffers[buf][flat] = value;
                Ok(vec![])
            }
            "mem.copy" => {
                let (src, dst) = (operand(0)?, operand(1)?);
                match (src, dst) {
                    (RtValue::Buffer(s), RtValue::Buffer(d)) => {
                        let data = self.buffers[s].clone();
                        self.buffers[d] = data;
                        Ok(vec![])
                    }
                    other => Err(IrError::Pass(format!("copy between {other:?}"))),
                }
            }
            "func.call" => {
                let callee_name = op
                    .attr("callee")
                    .and_then(Attr::as_str)
                    .ok_or_else(|| IrError::Pass("call without callee".into()))?;
                let module =
                    self.module.ok_or_else(|| IrError::Pass("no module for call".into()))?;
                let callee = module
                    .func(callee_name)
                    .ok_or_else(|| IrError::UnknownSymbol(callee_name.to_owned()))?;
                let args: Vec<RtValue> =
                    op.operands.iter().map(|o| self.get(env, *o)).collect::<IrResult<_>>()?;
                self.call(callee, &args)
            }
            name if name.starts_with("tensor.") => self.eval_tensor_op(func, op, env),
            other => Err(IrError::Pass(format!("interpreter does not support '{other}'"))),
        }
    }

    fn eval_tensor_op(
        &mut self,
        func: &Func,
        op: &Op,
        env: &mut HashMap<Value, RtValue>,
    ) -> IrResult<Vec<RtValue>> {
        let operand = |i: usize| -> IrResult<RtValue> { self.get(env, op.operands[i]) };
        match op.name.as_str() {
            "tensor.matmul" => {
                let a = operand(0)?;
                let b = operand(1)?;
                let (ashape, adata) = a.as_tensor()?;
                let (bshape, bdata) = b.as_tensor()?;
                let (m, k, n) = (ashape[0], ashape[1], bshape[1]);
                let out = crate::simd::matmul(adata, bdata, m, k, n);
                Ok(vec![RtValue::tensor(&[m, n], out)])
            }
            "tensor.add" | "tensor.sub" | "tensor.mul" => {
                let a = operand(0)?;
                let b = operand(1)?;
                let (shape, ad) = a.as_tensor()?;
                let (_, bd) = b.as_tensor()?;
                let f: fn(f64, f64) -> f64 = match op.name.as_str() {
                    "tensor.add" => |x, y| x + y,
                    "tensor.sub" => |x, y| x - y,
                    _ => |x, y| x * y,
                };
                let out = ad.iter().zip(bd).map(|(x, y)| f(*x, *y)).collect();
                Ok(vec![RtValue::tensor(shape, out)])
            }
            "tensor.scale" => {
                let s = operand(0)?.as_float()?;
                let t = operand(1)?;
                let (shape, data) = t.as_tensor()?;
                Ok(vec![RtValue::tensor(shape, data.iter().map(|x| s * x).collect())])
            }
            "tensor.relu" => {
                let t = operand(0)?;
                let (shape, data) = t.as_tensor()?;
                Ok(vec![RtValue::tensor(shape, data.iter().map(|x| x.max(0.0)).collect())])
            }
            "tensor.sigmoid" => {
                let t = operand(0)?;
                let (shape, data) = t.as_tensor()?;
                Ok(vec![RtValue::tensor(shape, crate::simd::sigmoid(data))])
            }
            "tensor.fill" => {
                let value = op.attr("value").and_then(Attr::as_float).unwrap_or(0.0);
                let ty = func.value_type(op.results[0]);
                let shape = ty.shape().ok_or_else(|| IrError::Pass("fill non-tensor".into()))?;
                Ok(vec![RtValue::tensor(shape, vec![value; shape.iter().product()])])
            }
            "tensor.transpose" => {
                let t = operand(0)?;
                let (shape, data) = t.as_tensor()?;
                let perm: Vec<usize> = op
                    .attr("perm")
                    .and_then(Attr::to_ints)
                    .ok_or_else(|| IrError::Pass("transpose without perm".into()))?
                    .iter()
                    .map(|p| *p as usize)
                    .collect();
                let out_shape: Vec<usize> = perm.iter().map(|p| shape[*p]).collect();
                let in_strides = strides(shape);
                let mut out = vec![0.0; data.len()];
                let mut out_idx = vec![0usize; shape.len()];
                for (flat, slot) in out.iter_mut().enumerate() {
                    unflatten(flat, &out_shape, &mut out_idx);
                    // out[idx] = in at position where in-dim perm[d] = idx[d].
                    let mut in_flat = 0;
                    for (d, p) in perm.iter().enumerate() {
                        in_flat += out_idx[d] * in_strides[*p];
                    }
                    *slot = data[in_flat];
                }
                Ok(vec![RtValue::tensor(&out_shape, out)])
            }
            "tensor.reduce" => {
                let t = operand(0)?;
                let (shape, data) = t.as_tensor()?;
                let dims: Vec<usize> = op
                    .attr("dims")
                    .and_then(Attr::to_ints)
                    .ok_or_else(|| IrError::Pass("reduce without dims".into()))?
                    .iter()
                    .map(|d| *d as usize)
                    .collect();
                let kind = op.attr("kind").and_then(Attr::as_str).unwrap_or("sum").to_owned();
                let kept: Vec<usize> = (0..shape.len()).filter(|d| !dims.contains(d)).collect();
                let out_shape: Vec<usize> = kept.iter().map(|d| shape[*d]).collect();
                let count: usize = dims.iter().map(|d| shape[*d]).product();
                let init = match kind.as_str() {
                    "max" => f64::NEG_INFINITY,
                    "min" => f64::INFINITY,
                    _ => 0.0,
                };
                let mut out = vec![init; out_shape.iter().product::<usize>().max(1)];
                let in_strides = strides(shape);
                let mut idx = vec![0usize; shape.len()];
                for (flat, v) in data.iter().enumerate() {
                    unflatten(flat, shape, &mut idx);
                    let mut out_flat = 0;
                    for d in &kept {
                        out_flat = out_flat * shape[*d] + idx[*d];
                    }
                    out[out_flat] = match kind.as_str() {
                        "max" => out[out_flat].max(*v),
                        "min" => out[out_flat].min(*v),
                        _ => out[out_flat] + v,
                    };
                }
                let _ = in_strides;
                if kind == "mean" {
                    for v in &mut out {
                        *v /= count as f64;
                    }
                }
                Ok(vec![RtValue::tensor(&out_shape, out)])
            }
            "tensor.stencil" => {
                // Semantics match the HLS lowering: 1-D convolution along
                // the last dim, borders copied through.
                let t = operand(0)?;
                let (shape, data) = t.as_tensor()?;
                let weights: Vec<f64> = op
                    .attr("weights")
                    .and_then(Attr::as_array)
                    .ok_or_else(|| IrError::Pass("stencil without weights".into()))?
                    .iter()
                    .filter_map(Attr::as_float)
                    .collect();
                let last = *shape.last().ok_or_else(|| IrError::Pass("stencil scalar".into()))?;
                let rows: usize = shape[..shape.len() - 1].iter().product::<usize>().max(1);
                let out = crate::simd::stencil_rows(data, rows, last, &weights);
                Ok(vec![RtValue::tensor(shape, out)])
            }
            "tensor.conv2d" => {
                // Matches the HLS lowering: interior convolution, borders
                // copied through.
                let x = operand(0)?;
                let k = operand(1)?;
                let (xs, xd) = x.as_tensor()?;
                let (ks, kd) = k.as_tensor()?;
                let (h, w) = (xs[0], xs[1]);
                let (kh, kw) = (ks[0], ks[1]);
                let (ry, rx) = (kh / 2, kw / 2);
                let mut out = xd.to_vec();
                for i in ry..h - ry {
                    for j in rx..w - rx {
                        let mut acc = 0.0;
                        for ky in 0..kh {
                            for kx in 0..kw {
                                let iy = i + ky - ry;
                                let ix = j + kx - rx;
                                acc += xd[iy * w + ix] * kd[ky * kw + kx];
                            }
                        }
                        out[i * w + j] = acc;
                    }
                }
                Ok(vec![RtValue::tensor(xs, out)])
            }
            other => Err(IrError::Pass(format!("interpreter does not support '{other}'"))),
        }
    }
}

fn strides(shape: &[usize]) -> Vec<usize> {
    let mut s = vec![1; shape.len()];
    for d in (0..shape.len().saturating_sub(1)).rev() {
        s[d] = s[d + 1] * shape[d + 1];
    }
    s
}

fn unflatten(mut flat: usize, shape: &[usize], idx: &mut [usize]) {
    for d in (0..shape.len()).rev() {
        idx[d] = flat % shape[d];
        flat /= shape[d];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::dialects::tensor as tdl;
    use crate::types::Type;

    #[test]
    fn scalar_arithmetic_evaluates() {
        let mut fb = FuncBuilder::new("f", &[Type::F64, Type::F64], &[Type::F64]);
        let s = fb.binary("arith.addf", fb.arg(0), fb.arg(1), Type::F64);
        let p = fb.binary("arith.mulf", s, fb.arg(0), Type::F64);
        fb.ret(&[p]);
        let f = fb.finish();
        let out = Interp::new().call(&f, &[RtValue::Float(3.0), RtValue::Float(4.0)]).unwrap();
        assert_eq!(out, vec![RtValue::Float(21.0)]);
    }

    #[test]
    fn loops_accumulate() {
        let mut fb = FuncBuilder::new("sum", &[], &[Type::F64]);
        let init = fb.const_f(0.0, Type::F64);
        let out = fb.for_loop(1, 6, 1, &[init], |fb, iv, c| {
            let x = fb.unary("arith.sitofp", iv, Type::F64);
            vec![fb.binary("arith.addf", c[0], x, Type::F64)]
        });
        fb.ret(&[out[0]]);
        let f = fb.finish();
        let out = Interp::new().call(&f, &[]).unwrap();
        assert_eq!(out, vec![RtValue::Float(15.0)]); // 1+2+3+4+5
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a_ty = Type::tensor(Type::F64, &[2, 2]);
        let mut fb = FuncBuilder::new("mm", &[a_ty.clone(), a_ty.clone()], &[a_ty]);
        let (x, y) = (fb.arg(0), fb.arg(1));
        let r = tdl::matmul(&mut fb, x, y);
        fb.ret(&[r]);
        let f = fb.finish();
        let a = RtValue::tensor(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = RtValue::tensor(&[2, 2], vec![5.0, 6.0, 7.0, 8.0]);
        let out = Interp::new().call(&f, &[a, b]).unwrap();
        assert_eq!(out[0], RtValue::tensor(&[2, 2], vec![19.0, 22.0, 43.0, 50.0]));
    }

    #[test]
    fn transpose_and_reduce_compose() {
        let a_ty = Type::tensor(Type::F64, &[2, 3]);
        let mut fb = FuncBuilder::new("f", &[a_ty], &[Type::tensor(Type::F64, &[3])]);
        let x = fb.arg(0);
        let t = tdl::transpose(&mut fb, x, &[1, 0]); // 3x2
        let r = tdl::reduce(&mut fb, t, &[1], "sum"); // sum rows -> [3]
        fb.ret(&[r]);
        let f = fb.finish();
        let input = RtValue::tensor(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let out = Interp::new().call(&f, &[input]).unwrap();
        // Transposed columns: [1,4], [2,5], [3,6] -> sums 5, 7, 9.
        assert_eq!(out[0], RtValue::tensor(&[3], vec![5.0, 7.0, 9.0]));
    }

    #[test]
    fn memref_load_store_round_trip() {
        use crate::types::MemSpace;
        let buf_ty = Type::memref(Type::F64, &[4], MemSpace::Scratchpad);
        let mut fb = FuncBuilder::new("f", &[buf_ty], &[]);
        let buf = fb.arg(0);
        fb.for_loop(0, 4, 1, &[], |fb, iv, _| {
            let v = fb.load(buf, &[iv], Type::F64);
            let two = fb.const_f(2.0, Type::F64);
            let d = fb.binary("arith.mulf", v, two, Type::F64);
            fb.store(d, buf, &[iv]);
            vec![]
        });
        fb.ret(&[]);
        let f = fb.finish();
        let mut interp = Interp::new();
        let handle = interp.alloc_buffer(&[4], vec![1.0, 2.0, 3.0, 4.0]);
        interp.call(&f, std::slice::from_ref(&handle)).unwrap();
        assert_eq!(interp.buffer(&handle), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn out_of_bounds_load_is_an_error() {
        use crate::types::MemSpace;
        let buf_ty = Type::memref(Type::F64, &[2], MemSpace::Host);
        let mut fb = FuncBuilder::new("f", &[buf_ty], &[Type::F64]);
        let i = fb.const_i(5, Type::Index);
        let v = fb.load(fb.arg(0), &[i], Type::F64);
        fb.ret(&[v]);
        let f = fb.finish();
        let mut interp = Interp::new();
        let handle = interp.alloc_buffer(&[2], vec![0.0, 1.0]);
        assert!(interp.call(&f, &[handle]).is_err());
    }

    #[test]
    fn calls_resolve_through_the_module() {
        let mut m = Module::new("m");
        let mut callee = FuncBuilder::new("double", &[Type::F64], &[Type::F64]);
        let a0 = callee.arg(0);
        let two = callee.const_f(2.0, Type::F64);
        let d = callee.binary("arith.mulf", a0, two, Type::F64);
        callee.ret(&[d]);
        m.push(callee.finish());
        let mut caller = FuncBuilder::new("main", &[], &[Type::F64]);
        let x = caller.const_f(21.0, Type::F64);
        let r = caller.call("double", &[x], &[Type::F64]);
        caller.ret(&[r[0]]);
        m.push(caller.finish());
        let main = m.func("main").unwrap();
        let out = Interp::with_module(&m).call(main, &[]).unwrap();
        assert_eq!(out, vec![RtValue::Float(42.0)]);
    }

    #[test]
    fn unroll_preserves_semantics() {
        let mut fb = FuncBuilder::new("f", &[Type::F64], &[Type::F64]);
        let init = fb.arg(0);
        let out = fb.for_loop(0, 5, 1, &[init], |fb, iv, c| {
            let x = fb.unary("arith.sitofp", iv, Type::F64);
            let p = fb.binary("arith.mulf", c[0], x, Type::F64);
            vec![fb.binary("arith.addf", p, x, Type::F64)]
        });
        fb.ret(&[out[0]]);
        let f = fb.finish();
        let before = Interp::new().call(&f, &[RtValue::Float(1.5)]).unwrap();
        let mut unrolled = f.clone();
        assert!(crate::transforms::unroll_func(&mut unrolled, 8));
        let after = Interp::new().call(&unrolled, &[RtValue::Float(1.5)]).unwrap();
        assert_eq!(before, after);
    }
}
