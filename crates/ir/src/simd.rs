//! Portable SIMD kernels for the tensor interpreter hot paths.
//!
//! No nightly `std::simd`: each kernel is written as an explicit 8-lane
//! chunked loop over `f64` with a branch-free inner body, which LLVM
//! auto-vectorizes to the widest vectors the target offers (AVX2/AVX-512
//! on x86-64, NEON/SVE on aarch64). Every kernel ships next to its
//! scalar reference and a parity test:
//!
//! * [`matmul`] and [`stencil_rows`] are *bit-identical* to their scalar
//!   references — the vectorized loops accumulate in the same per-element
//!   order, so no tolerance is needed;
//! * [`sigmoid`] (and the [`exp_approx`] it builds on) replaces libm
//!   `exp` with a branch-free Cody–Waite range reduction + polynomial,
//!   accurate to ~5e-9 relative — well inside the 1e-6 parity
//!   tolerance the kernels are tested at.

/// Vector width the chunked loops are written for. Eight `f64` lanes is
/// one AVX-512 register or two AVX2/NEON registers — wide enough that
/// LLVM vectorizes fully on any mainstream target.
pub const LANES: usize = 8;

// exp(x) = 2^k * exp(r), with r = x - k*ln2 split two-word Cody–Waite
// style so the reduction is exact to the last bit.
const LN2_HI: f64 = 6.931_471_803_691_238e-1;
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;

// 1.5 * 2^52: adding then subtracting it rounds an f64 in (-2^51, 2^51)
// to the nearest integer using nothing but FP adds, and the low mantissa
// bits of the sum hold that integer in two's complement. `f64::round`
// would be a libm call on baseline x86-64 (no SSE4.1), which blocks
// auto-vectorization of every loop calling this function.
const ROUND_MAGIC: f64 = 6_755_399_441_055_744.0;
const ROUND_MAGIC_BITS: u64 = 0x4338_0000_0000_0000;

/// Branch-free `exp(x)`, accurate to ~5e-9 relative over the clamped
/// domain `[-700, 700]` (inputs outside saturate, which keeps every
/// intermediate normal — no Inf/NaN paths the vectorizer would have to
/// branch around). `exp_approx(0.0) == 1.0` exactly.
#[inline]
pub fn exp_approx(x: f64) -> f64 {
    let x = x.clamp(-700.0, 700.0);
    let magic = x * std::f64::consts::LOG2_E + ROUND_MAGIC;
    let k = magic - ROUND_MAGIC;
    let r = (x - k * LN2_HI) - k * LN2_LO;
    // Degree-7 Taylor polynomial of exp on |r| <= ln2/2, Estrin form:
    // truncation error ~5e-9 relative (orders below the kernels' 1e-6
    // parity tolerance) at half the dependency-chain depth of a Horner
    // evaluation — the chain, not throughput, bounds a 2-lane SSE2 loop.
    let r2 = r * r;
    let r4 = r2 * r2;
    let q0 = 1.0 + r;
    let q1 = 1.0 / 2.0 + r * (1.0 / 6.0);
    let q2 = 1.0 / 24.0 + r * (1.0 / 120.0);
    let q3 = 1.0 / 720.0 + r * (1.0 / 5_040.0);
    let p = (q0 + q1 * r2) + (q2 + q3 * r2) * r4;
    // 2^k via direct exponent construction: the magic sum's low bits are
    // k in two's complement, and k is in [-1011, 1011] after the clamp,
    // so the biased exponent never leaves (0, 2047). Integer add + shift
    // only — no f64→i64 conversion, which SSE2 cannot vectorize.
    let kbits = magic.to_bits().wrapping_sub(ROUND_MAGIC_BITS);
    let scale = f64::from_bits(kbits.wrapping_add(1023) << 52);
    p * scale
}

/// Scalar reference sigmoid: `1 / (1 + exp(-x))` with libm `exp`.
pub fn sigmoid_scalar(data: &[f64]) -> Vec<f64> {
    data.iter().map(|x| 1.0 / (1.0 + (-x).exp())).collect()
}

/// Vectorized element-wise logistic sigmoid.
pub fn sigmoid(data: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; data.len()];
    let mut oc = out.chunks_exact_mut(LANES);
    let mut xc = data.chunks_exact(LANES);
    for (o, x) in (&mut oc).zip(&mut xc) {
        for l in 0..LANES {
            o[l] = 1.0 / (1.0 + exp_approx(-x[l]));
        }
    }
    for (o, x) in oc.into_remainder().iter_mut().zip(xc.remainder()) {
        *o = 1.0 / (1.0 + exp_approx(-x));
    }
    out
}

/// Scalar reference matmul: the classic i-j-k dot-product order.
pub fn matmul_scalar(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
    let mut out = vec![0.0; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Vectorized matmul in i-k-j axpy order: the inner loop streams one
/// row of `b` into one row of `out` with unit stride, eight lanes at a
/// time. For each output element the products still accumulate in
/// ascending `k` order, so the result is bit-identical to
/// [`matmul_scalar`].
pub fn matmul(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
    let mut out = vec![0.0; m * n];
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (kk, &aik) in arow.iter().enumerate() {
            let brow = &b[kk * n..(kk + 1) * n];
            let mut oc = orow.chunks_exact_mut(LANES);
            let mut bc = brow.chunks_exact(LANES);
            for (o, bv) in (&mut oc).zip(&mut bc) {
                for l in 0..LANES {
                    o[l] += aik * bv[l];
                }
            }
            for (o, bv) in oc.into_remainder().iter_mut().zip(bc.remainder()) {
                *o += aik * bv;
            }
        }
    }
    out
}

/// Scalar reference stencil: 1-D convolution along the last dim of a
/// `rows x last` buffer, borders copied through (the HLS lowering's
/// semantics).
pub fn stencil_rows_scalar(data: &[f64], rows: usize, last: usize, weights: &[f64]) -> Vec<f64> {
    let radius = weights.len() / 2;
    let mut out = data.to_vec();
    let hi = last.saturating_sub(radius);
    for row in 0..rows {
        let base = row * last;
        for i in radius..hi {
            let mut acc = 0.0;
            for (k, w) in weights.iter().enumerate() {
                acc += w * data[base + i + k - radius];
            }
            out[base + i] = acc;
        }
    }
    out
}

/// Vectorized stencil: eight interior outputs per step, each tap
/// broadcast across the lanes. Taps accumulate in the same order as the
/// scalar reference, so the result is bit-identical to
/// [`stencil_rows_scalar`].
pub fn stencil_rows(data: &[f64], rows: usize, last: usize, weights: &[f64]) -> Vec<f64> {
    let radius = weights.len() / 2;
    let mut out = data.to_vec();
    let hi = last.saturating_sub(radius);
    for row in 0..rows {
        let base = row * last;
        let inp = &data[base..base + last];
        let orow = &mut out[base..base + last];
        let mut i = radius;
        while i + LANES <= hi {
            let mut acc = [0.0f64; LANES];
            for (k, &w) in weights.iter().enumerate() {
                let src = &inp[i + k - radius..i + k - radius + LANES];
                for l in 0..LANES {
                    acc[l] += w * src[l];
                }
            }
            orow[i..i + LANES].copy_from_slice(&acc);
            i += LANES;
        }
        for i in i..hi {
            let mut acc = 0.0;
            for (k, &w) in weights.iter().enumerate() {
                acc += w * inp[i + k - radius];
            }
            orow[i] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random doubles in [-scale, scale).
    fn noise(n: usize, seed: u64, scale: f64) -> Vec<f64> {
        let mut z = seed;
        (0..n)
            .map(|_| {
                z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut w = z;
                w = (w ^ (w >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                w = (w ^ (w >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                w ^= w >> 31;
                (w as f64 / u64::MAX as f64 * 2.0 - 1.0) * scale
            })
            .collect()
    }

    #[test]
    fn exp_approx_is_accurate_and_exact_at_zero() {
        assert_eq!(exp_approx(0.0), 1.0);
        let mut x: f64 = -30.0;
        while x <= 30.0 {
            let exact = x.exp();
            let rel = (exp_approx(x) - exact).abs() / exact;
            assert!(rel < 1e-8, "exp({x}): rel error {rel}");
            x += 0.0137;
        }
        // Saturation keeps extreme inputs finite and monotone.
        assert!(exp_approx(-1e6) > 0.0);
        assert!(exp_approx(1e6).is_finite());
    }

    #[test]
    fn sigmoid_matches_scalar_within_parity_tolerance() {
        // Length deliberately not a multiple of LANES to cover the tail.
        let x = noise(1003, 7, 20.0);
        let fast = sigmoid(&x);
        let exact = sigmoid_scalar(&x);
        for (i, (f, e)) in fast.iter().zip(&exact).enumerate() {
            assert!((f - e).abs() < 1e-6, "sigmoid[{i}]: {f} vs {e}");
        }
    }

    #[test]
    fn matmul_is_bit_identical_to_scalar_reference() {
        for (m, k, n) in [(3, 5, 7), (8, 8, 8), (13, 17, 21), (1, 1, 1)] {
            let a = noise(m * k, 11, 2.0);
            let b = noise(k * n, 13, 2.0);
            assert_eq!(matmul(&a, &b, m, k, n), matmul_scalar(&a, &b, m, k, n), "({m},{k},{n})");
        }
    }

    #[test]
    fn stencil_is_bit_identical_to_scalar_reference() {
        let weights = [0.1, 0.25, 0.3, 0.25, 0.1];
        for (rows, last) in [(1, 9), (4, 64), (3, 37), (2, 5)] {
            let x = noise(rows * last, 17, 3.0);
            assert_eq!(
                stencil_rows(&x, rows, last, &weights),
                stencil_rows_scalar(&x, rows, last, &weights),
                "({rows},{last})"
            );
        }
        // Degenerate row shorter than the stencil: borders copy through.
        let x = noise(4, 19, 1.0);
        assert_eq!(stencil_rows(&x, 1, 4, &weights), x);
    }
}
