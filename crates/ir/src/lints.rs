//! Static analyses and lints built on the [`crate::dataflow`] engine.
//!
//! Three IR-level analyses run over every function:
//!
//! * **liveness** (backward) drives the `dead-store` and `unused-result`
//!   lints;
//! * **integer range analysis** (forward) drives `range-oob`, flagging
//!   statically out-of-bounds `mem.load`/`mem.store` indices — including
//!   loop-bound/buffer-size mismatches via `loop.for` induction ranges;
//! * **taint/IFC analysis** (forward) drives `taint-flow`: `secure.taint`
//!   ops introduce labels, flows propagate through ops, buffers and region
//!   boundaries, and any secret label reaching an unprotected sink
//!   (`df.sink`, `func.return`) is an error. Its per-function
//!   [`TaintSummary`] also feeds `everest-hls` so DIFT shadow hardware is
//!   only synthesized for kernels with real tainted flows.
//!
//! All findings use the shared [`Diagnostic`] type; [`check_module`] is the
//! entry point used by `everestc check` and the [`CheckPass`] pipeline
//! phase.

use crate::attr::Attr;
use crate::dataflow::{analyze, Analysis, Direction, Interval, Lattice};
use crate::diag::{op_snippet, record_metrics, Diagnostic, Severity};
use crate::error::IrResult;
use crate::ir::{Block, Func, Module, Op, Value};
use crate::pass::Pass;
use crate::registry;
use crate::types::Type;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;

/// A store into a locally allocated buffer that is never read afterwards.
pub const LINT_DEAD_STORE: &str = "dead-store";
/// A pure op whose results are never used.
pub const LINT_UNUSED_RESULT: &str = "unused-result";
/// A memory access whose index range provably exceeds the buffer shape.
pub const LINT_RANGE_OOB: &str = "range-oob";
/// A secret-labelled value reaching an unprotected sink.
pub const LINT_TAINT_FLOW: &str = "taint-flow";
/// Two workflow tasks touching the same dataset with no ordering edge
/// (reported by `everest-workflow`'s race detector through the same
/// diagnostic format).
pub const LINT_WF_RACE: &str = "wf-race";
/// A workflow task referencing a kernel that is not present in the kernel
/// search path (reported by `everestc check`/`fuse` — fusion analysis must
/// never run on a partial graph).
pub const LINT_UNRESOLVED_KERNEL: &str = "wf-unresolved-kernel";
/// A workflow dataset edge classified *racy* by the fusion-legality
/// classifier: unordered conflicting access with a concrete counterexample
/// (reported by `everestc fuse`).
pub const LINT_FUSE_RACY: &str = "fuse-racy";

/// Registry of every stable lint code this crate family can emit.
pub const LINT_CODES: &[&str] = &[
    LINT_DEAD_STORE,
    LINT_UNUSED_RESULT,
    LINT_RANGE_OOB,
    LINT_TAINT_FLOW,
    LINT_WF_RACE,
    LINT_UNRESOLVED_KERNEL,
    LINT_FUSE_RACY,
];

// ---------------------------------------------------------------------------
// Liveness → dead-store / unused-result
// ---------------------------------------------------------------------------

/// Backward liveness facts: values that may still be read, and buffers that
/// may still be read (or escape) later in the execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveState {
    /// SSA values with a later use.
    pub live: BTreeSet<Value>,
    /// Buffer values with a later read or escape.
    pub read_bufs: BTreeSet<Value>,
}

impl Lattice for LiveState {
    fn bottom() -> Self {
        LiveState { live: BTreeSet::new(), read_bufs: BTreeSet::new() }
    }

    fn join(&mut self, other: &Self) -> bool {
        let a = self.live.join(&other.live);
        let b = self.read_bufs.join(&other.read_bufs);
        a || b
    }
}

/// Classic backward may-liveness over SSA values plus a coarse "buffer still
/// read" bit per memref value. Everything except `mem.store`/`mem.alloc`
/// counts as reading (or escaping) its memref operands, so passing a buffer
/// to a call, sink or return conservatively keeps its stores alive.
pub struct Liveness;

impl Analysis for Liveness {
    type State = LiveState;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn transfer(&self, func: &Func, op: &Op, state: &mut Self::State) {
        for r in &op.results {
            state.live.remove(r);
        }
        for o in &op.operands {
            state.live.insert(*o);
        }
        if op.name != "mem.store" && op.name != "mem.alloc" {
            for o in &op.operands {
                if matches!(func.value_type(*o), Type::MemRef { .. }) {
                    state.read_bufs.insert(*o);
                }
            }
        }
    }
}

fn liveness_lints(func: &Func) -> Vec<Diagnostic> {
    let mut local_bufs = BTreeSet::new();
    func.walk(&mut |op| {
        if op.name == "mem.alloc" {
            local_bufs.extend(op.results.iter().copied());
        }
    });
    let mut diags = Vec::new();
    // Backward analysis: the recorded state at each op holds the facts about
    // what executes *after* it.
    for (site, op, after) in analyze(func, &Liveness) {
        if op.name == "mem.store" {
            if let Some(buf) = op.operands.get(1) {
                if local_bufs.contains(buf) && !after.read_bufs.contains(buf) {
                    diags.push(
                        Diagnostic::new(
                            Severity::Warning,
                            LINT_DEAD_STORE,
                            &func.name,
                            format!("store to {buf} is never read"),
                        )
                        .at(&site.path)
                        .with_snippet(op_snippet(op)),
                    );
                }
            }
        } else if registry::is_pure(&op.name)
            && op.regions.is_empty()
            && !op.results.is_empty()
            && op.results.iter().all(|r| !after.live.contains(r))
        {
            let rs: Vec<String> = op.results.iter().map(|r| r.to_string()).collect();
            diags.push(
                Diagnostic::new(
                    Severity::Warning,
                    LINT_UNUSED_RESULT,
                    &func.name,
                    format!("result {} of pure op {} is never used", rs.join(", "), op.name),
                )
                .at(&site.path)
                .with_snippet(op_snippet(op)),
            );
        }
    }
    diags
}

// ---------------------------------------------------------------------------
// Integer range analysis → range-oob
// ---------------------------------------------------------------------------

/// Forward interval analysis over integer-typed SSA values. Function
/// parameters and unknown results are `TOP` (anything), `loop.for`
/// induction variables get their static trip range, and only *bounded*
/// intervals ever produce diagnostics — the analysis never guesses.
pub struct RangeAnalysis;

type RangeState = BTreeMap<Value, Interval>;

fn range_of(state: &RangeState, v: Value) -> Interval {
    state.get(&v).copied().unwrap_or(Interval::BOTTOM)
}

impl Analysis for RangeAnalysis {
    type State = RangeState;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self, func: &Func) -> Self::State {
        let mut state = BTreeMap::new();
        if let Some(entry) = func.body.entry() {
            for arg in &entry.args {
                if func.value_type(*arg).is_int() {
                    state.insert(*arg, Interval::TOP);
                }
            }
        }
        state
    }

    fn transfer(&self, func: &Func, op: &Op, state: &mut Self::State) {
        let result = match op.name.as_str() {
            "arith.constant" => op.attr("value").and_then(Attr::as_int).map(Interval::point),
            "arith.addi" => Some(range_of(state, op.operands[0]) + range_of(state, op.operands[1])),
            "arith.subi" => Some(range_of(state, op.operands[0]) - range_of(state, op.operands[1])),
            "arith.muli" => Some(range_of(state, op.operands[0]) * range_of(state, op.operands[1])),
            "arith.cmpi" => Some(Interval::range(0, 1)),
            "arith.select" if op.operands.len() == 3 => {
                let mut hull = range_of(state, op.operands[1]);
                hull.join(&range_of(state, op.operands[2]));
                Some(hull)
            }
            _ => None,
        };
        match (result, op.results.first()) {
            (Some(interval), Some(r)) => {
                state.entry(*r).or_insert(Interval::BOTTOM).join(&interval);
            }
            _ => {
                // Unknown op: its integer results could be anything.
                for r in &op.results {
                    if func.value_type(*r).is_int() {
                        state.insert(*r, Interval::TOP);
                    }
                }
            }
        }
    }

    fn enter_region(
        &self,
        func: &Func,
        op: &Op,
        _region_index: usize,
        entry: &Block,
        state: &mut Self::State,
    ) {
        if op.name == "loop.for" {
            let lo = op.attr("lo").and_then(Attr::as_int);
            let hi = op.attr("hi").and_then(Attr::as_int);
            let step = op.attr("step").and_then(Attr::as_int);
            let iv_range = match (lo, hi, step) {
                (Some(lo), Some(hi), Some(step)) if step > 0 && hi > lo => {
                    let last = lo + ((hi - 1 - lo) / step) * step;
                    Interval::range(lo, last)
                }
                _ => Interval::TOP,
            };
            let mut args = entry.args.iter();
            if let Some(iv) = args.next() {
                state.insert(*iv, iv_range);
            }
            // Loop-carried values are widened to TOP: they may change every
            // iteration, and TOP guarantees the back-edge converges.
            for carried in args {
                if func.value_type(*carried).is_int() {
                    state.insert(*carried, Interval::TOP);
                }
            }
        } else {
            for arg in &entry.args {
                if func.value_type(*arg).is_int() {
                    state.insert(*arg, Interval::TOP);
                }
            }
        }
    }
}

/// `(buffer, indices)` of a memory access, if `op` is one.
fn access_of(op: &Op) -> Option<(Value, &[Value])> {
    match op.name.as_str() {
        "mem.load" => Some((*op.operands.first()?, op.operands.get(1..)?)),
        "mem.store" => Some((*op.operands.get(1)?, op.operands.get(2..)?)),
        _ => None,
    }
}

fn range_lints(func: &Func) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (site, op, before) in analyze(func, &RangeAnalysis) {
        let Some((buf, indices)) = access_of(op) else { continue };
        let Some(shape) = func.value_type(buf).shape() else { continue };
        for (dim, idx) in indices.iter().enumerate() {
            let Some(&extent) = shape.get(dim) else { continue };
            let range = range_of(&before, *idx);
            if range.is_bounded() && (range.lo < 0 || range.hi >= extent as i64) {
                diags.push(
                    Diagnostic::new(
                        Severity::Error,
                        LINT_RANGE_OOB,
                        &func.name,
                        format!(
                            "index {idx} ranges over [{}, {}] but dimension {dim} of {buf} \
                             has size {extent}",
                            range.lo, range.hi
                        ),
                    )
                    .at(&site.path)
                    .with_snippet(op_snippet(op)),
                );
            }
        }
    }
    diags
}

// ---------------------------------------------------------------------------
// Taint / IFC → taint-flow
// ---------------------------------------------------------------------------

type TaintState = BTreeMap<Value, BTreeSet<String>>;

/// Forward information-flow analysis: `secure.taint {label}` introduces a
/// label, labels union through ordinary ops, flow through buffers
/// (`mem.store`/`mem.load`/`mem.copy`) and across region boundaries via
/// yields. `secure.declassify`/`secure.encrypt` launder their input.
pub struct TaintAnalysis;

fn labels_of(state: &TaintState, v: Value) -> BTreeSet<String> {
    state.get(&v).cloned().unwrap_or_default()
}

fn add_labels(state: &mut TaintState, v: Value, labels: &BTreeSet<String>) {
    if !labels.is_empty() {
        state.entry(v).or_default().extend(labels.iter().cloned());
    }
}

/// `true` if any label denotes secret data (everything except `public`).
pub fn is_secret(labels: &BTreeSet<String>) -> bool {
    labels.iter().any(|l| l != "public")
}

impl Analysis for TaintAnalysis {
    type State = TaintState;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn transfer(&self, _func: &Func, op: &Op, state: &mut Self::State) {
        match op.name.as_str() {
            "secure.taint" => {
                let mut labels = labels_of(state, op.operands[0]);
                if let Some(label) = op.attr("label").and_then(Attr::as_str) {
                    labels.insert(label.to_string());
                }
                for r in &op.results {
                    add_labels(state, *r, &labels);
                }
            }
            // Declassification and encryption produce clean values.
            "secure.declassify" | "secure.encrypt" => {}
            "mem.store" => {
                if let (Some(value), Some(buf)) = (op.operands.first(), op.operands.get(1)) {
                    let labels = labels_of(state, *value);
                    add_labels(state, *buf, &labels);
                }
            }
            "mem.load" => {
                if let (Some(buf), Some(r)) = (op.operands.first(), op.results.first()) {
                    let labels = labels_of(state, *buf);
                    add_labels(state, *r, &labels);
                }
            }
            "mem.copy" => {
                if let (Some(src), Some(dst)) = (op.operands.first(), op.operands.get(1)) {
                    let labels = labels_of(state, *src);
                    add_labels(state, *dst, &labels);
                }
            }
            _ => {
                let mut labels = BTreeSet::new();
                for o in &op.operands {
                    labels.extend(labels_of(state, *o));
                }
                for r in &op.results {
                    add_labels(state, *r, &labels);
                }
            }
        }
    }

    fn enter_region(
        &self,
        _func: &Func,
        op: &Op,
        _region_index: usize,
        entry: &Block,
        state: &mut Self::State,
    ) {
        // Bind the labels of the op's operands to the region's entry block
        // args (`loop.for` carries its inits after the induction variable).
        let args: &[Value] =
            if op.name == "loop.for" { entry.args.get(1..).unwrap_or(&[]) } else { &entry.args };
        for (operand, arg) in op.operands.iter().zip(args) {
            let labels = labels_of(state, *operand);
            add_labels(state, *arg, &labels);
        }
    }

    fn exit_region(
        &self,
        _func: &Func,
        op: &Op,
        region_index: usize,
        exit: &Self::State,
        state: &mut Self::State,
    ) {
        // Yielded values hand their labels to the op's results.
        for block in &op.regions[region_index].blocks {
            if let Some(term) = block.terminator() {
                if term.name.ends_with(".yield") {
                    for (v, r) in term.operands.iter().zip(&op.results) {
                        let labels = labels_of(exit, *v);
                        add_labels(state, *r, &labels);
                    }
                }
            }
        }
    }
}

/// The per-function taint verdict `everest-hls` uses to gate DIFT
/// instrumentation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaintSummary {
    /// Number of `secure.taint` source ops.
    pub sources: usize,
    /// Every value that may carry a secret label at some program point.
    pub tainted_values: BTreeSet<Value>,
    /// Number of secret→unprotected-sink violations.
    pub violations: usize,
}

impl TaintSummary {
    /// `true` if any value in the function may carry secret data — the
    /// signal that DIFT shadow hardware is worth instrumenting.
    pub fn is_tainted(&self) -> bool {
        !self.tainted_values.is_empty()
    }
}

/// Values passed through a `secure.check` op (treated as protected sinks).
fn checked_values(func: &Func) -> BTreeSet<Value> {
    let mut checked = BTreeSet::new();
    func.walk(&mut |op| {
        if op.name == "secure.check" {
            checked.extend(op.operands.iter().copied());
        }
    });
    checked
}

fn taint_solution(func: &Func) -> (Vec<Diagnostic>, TaintSummary) {
    let mut summary = TaintSummary::default();
    func.walk(&mut |op| {
        if op.name == "secure.taint" {
            summary.sources += 1;
        }
    });
    let checked = checked_values(func);
    let mut diags = Vec::new();
    for (site, op, before) in analyze(func, &TaintAnalysis) {
        // Accumulate the may-taint set from the post-state of every op, so
        // values tainted by the last op of a block are seen too.
        let mut after = before.clone();
        TaintAnalysis.transfer(func, op, &mut after);
        for (v, labels) in &after {
            if is_secret(labels) {
                summary.tainted_values.insert(*v);
            }
        }
        if op.name != "df.sink" && op.name != "func.return" {
            continue;
        }
        for operand in &op.operands {
            let labels = labels_of(&before, *operand);
            if is_secret(&labels) && !checked.contains(operand) {
                let secret: Vec<&str> =
                    labels.iter().filter(|l| l.as_str() != "public").map(String::as_str).collect();
                diags.push(
                    Diagnostic::new(
                        Severity::Error,
                        LINT_TAINT_FLOW,
                        &func.name,
                        format!(
                            "value {operand} carrying secret label{} {} reaches unprotected \
                             sink {}",
                            if secret.len() == 1 { "" } else { "s" },
                            secret.join(", "),
                            op.name
                        ),
                    )
                    .at(&site.path)
                    .with_snippet(op_snippet(op)),
                );
            }
        }
    }
    summary.violations = diags.len();
    (diags, summary)
}

/// Runs the taint/IFC analysis on one function and returns its summary
/// (sources, may-tainted values, sink violations).
pub fn taint_summary(func: &Func) -> TaintSummary {
    taint_solution(func).1
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Runs every IR lint on one function.
pub fn check_func(func: &Func) -> Vec<Diagnostic> {
    let mut diags = liveness_lints(func);
    diags.extend(range_lints(func));
    diags.extend(taint_solution(func).0);
    diags
}

/// Runs every IR lint on every function of `module` and bumps the
/// `check.diag.{error,warn}` telemetry counters.
pub fn check_module(module: &Module) -> Vec<Diagnostic> {
    let mut span = everest_telemetry::span("ir.check", "ir");
    let mut diags = Vec::new();
    for func in module.iter() {
        diags.extend(check_func(func));
    }
    span.attr("diagnostics", diags.len());
    record_metrics(&diags);
    diags
}

/// A [`Pass`] wrapper so the lints can run as a pipeline analysis phase.
/// The pass never mutates the module; collected diagnostics are retrieved
/// with [`CheckPass::take`].
#[derive(Default)]
pub struct CheckPass {
    diags: Mutex<Vec<Diagnostic>>,
}

impl CheckPass {
    /// Creates an empty check phase.
    pub fn new() -> CheckPass {
        CheckPass::default()
    }

    /// Drains the diagnostics collected by previous runs.
    pub fn take(&self) -> Vec<Diagnostic> {
        std::mem::take(&mut self.diags.lock().expect("check pass mutex poisoned"))
    }
}

impl Pass for CheckPass {
    fn name(&self) -> &str {
        "check"
    }

    fn run(&self, module: &mut Module) -> IrResult<bool> {
        let diags = check_module(module);
        self.diags.lock().expect("check pass mutex poisoned").extend(diags);
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::types::{MemSpace, Type};

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn dead_store_flagged_only_without_later_read() {
        let mut fb = FuncBuilder::new("f", &[], &[Type::F32]);
        let buf = fb.op1(Op::new("mem.alloc"), Type::memref(Type::F32, &[4], MemSpace::Scratchpad));
        let i = fb.const_i(0, Type::Index);
        let v = fb.const_f(1.0, Type::F32);
        fb.store(v, buf, &[i]);
        let out = fb.load(buf, &[i], Type::F32);
        fb.ret(&[out]);
        let clean = check_func(&fb.finish());
        assert!(!codes(&clean).contains(&LINT_DEAD_STORE), "{clean:?}");

        let mut fb = FuncBuilder::new("g", &[Type::F32], &[Type::F32]);
        let buf = fb.op1(Op::new("mem.alloc"), Type::memref(Type::F32, &[4], MemSpace::Scratchpad));
        let i = fb.const_i(0, Type::Index);
        fb.store(fb.arg(0), buf, &[i]);
        fb.ret(&[fb.arg(0)]);
        let diags = check_func(&fb.finish());
        assert!(codes(&diags).contains(&LINT_DEAD_STORE), "{diags:?}");
    }

    #[test]
    fn escaping_buffer_keeps_stores_alive() {
        let buf_ty = Type::memref(Type::F32, &[4], MemSpace::Host);
        let mut fb = FuncBuilder::new("f", &[], &[]);
        let buf = fb.op1(Op::new("mem.alloc"), buf_ty);
        let i = fb.const_i(0, Type::Index);
        let v = fb.const_f(1.0, Type::F32);
        fb.store(v, buf, &[i]);
        let mut sink = Op::new("df.sink").with_attr("kind", "out");
        sink.operands = vec![buf];
        fb.push_op(sink);
        fb.ret(&[]);
        let diags = check_func(&fb.finish());
        assert!(!codes(&diags).contains(&LINT_DEAD_STORE), "{diags:?}");
    }

    #[test]
    fn unused_result_flagged_for_pure_ops() {
        let mut fb = FuncBuilder::new("f", &[Type::F64], &[Type::F64]);
        let _dead = fb.binary("arith.mulf", fb.arg(0), fb.arg(0), Type::F64);
        fb.ret(&[fb.arg(0)]);
        let diags = check_func(&fb.finish());
        assert_eq!(codes(&diags), vec![LINT_UNUSED_RESULT]);
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn loop_bound_mismatch_is_out_of_bounds() {
        let buf_ty = Type::memref(Type::F64, &[8], MemSpace::Scratchpad);
        let mut fb = FuncBuilder::new("f", &[buf_ty], &[Type::F64]);
        let init = fb.const_f(0.0, Type::F64);
        // Loop runs to 12 over a size-8 buffer.
        let out = fb.for_loop(0, 12, 1, &[init], |fb, iv, c| {
            let x = fb.load(fb.arg(0), &[iv], Type::F64);
            vec![fb.binary("arith.addf", c[0], x, Type::F64)]
        });
        fb.ret(&[out[0]]);
        let diags = check_func(&fb.finish());
        let oob: Vec<_> = diags.iter().filter(|d| d.code == LINT_RANGE_OOB).collect();
        assert_eq!(oob.len(), 1, "{diags:?}");
        assert_eq!(oob[0].severity, Severity::Error);
        assert!(oob[0].message.contains("[0, 11]"), "{}", oob[0].message);
        assert!(oob[0].location.contains(" / "), "nested site: {}", oob[0].location);
    }

    #[test]
    fn in_bounds_loop_is_clean() {
        let buf_ty = Type::memref(Type::F64, &[8], MemSpace::Scratchpad);
        let mut fb = FuncBuilder::new("f", &[buf_ty], &[Type::F64]);
        let init = fb.const_f(0.0, Type::F64);
        let out = fb.for_loop(0, 8, 1, &[init], |fb, iv, c| {
            let x = fb.load(fb.arg(0), &[iv], Type::F64);
            vec![fb.binary("arith.addf", c[0], x, Type::F64)]
        });
        fb.ret(&[out[0]]);
        let diags = check_func(&fb.finish());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unknown_index_never_flags() {
        let buf_ty = Type::memref(Type::F64, &[8], MemSpace::Scratchpad);
        let mut fb = FuncBuilder::new("f", &[buf_ty, Type::Index], &[Type::F64]);
        let x = fb.load(fb.arg(0), &[fb.arg(1)], Type::F64);
        fb.ret(&[x]);
        let diags = check_func(&fb.finish());
        assert!(diags.is_empty(), "{diags:?}");
    }

    fn tainted_to_sink() -> Func {
        let mut fb = FuncBuilder::new("leak", &[Type::F64], &[]);
        let mut taint = Op::new("secure.taint").with_attr("label", "patient-data");
        taint.operands = vec![fb.arg(0)];
        let secret = fb.op1(taint, Type::F64);
        let doubled = fb.binary("arith.addf", secret, secret, Type::F64);
        let mut sink = Op::new("df.sink").with_attr("kind", "out");
        sink.operands = vec![doubled];
        fb.push_op(sink);
        fb.ret(&[]);
        fb.finish()
    }

    #[test]
    fn secret_reaching_sink_is_reported() {
        let func = tainted_to_sink();
        let diags = check_func(&func);
        let taint: Vec<_> = diags.iter().filter(|d| d.code == LINT_TAINT_FLOW).collect();
        assert_eq!(taint.len(), 1, "{diags:?}");
        assert!(taint[0].message.contains("patient-data"));
        let summary = taint_summary(&func);
        assert!(summary.is_tainted());
        assert_eq!(summary.sources, 1);
        assert_eq!(summary.violations, 1);
    }

    #[test]
    fn declassified_flow_is_clean() {
        let mut fb = FuncBuilder::new("ok", &[Type::F64], &[]);
        let mut taint = Op::new("secure.taint").with_attr("label", "secret");
        taint.operands = vec![fb.arg(0)];
        let secret = fb.op1(taint, Type::F64);
        let public = fb.unary("secure.declassify", secret, Type::F64);
        let mut sink = Op::new("df.sink").with_attr("kind", "out");
        sink.operands = vec![public];
        fb.push_op(sink);
        fb.ret(&[]);
        let func = fb.finish();
        let diags = check_func(&func);
        assert!(codes(&diags).iter().all(|c| *c != LINT_TAINT_FLOW), "{diags:?}");
        // The function still *contains* taint, so DIFT stays on.
        assert!(taint_summary(&func).is_tainted());
    }

    #[test]
    fn taint_flows_through_buffers_and_loops() {
        let buf_ty = Type::memref(Type::F64, &[4], MemSpace::Scratchpad);
        let mut fb = FuncBuilder::new("f", &[Type::F64], &[Type::F64]);
        let mut taint = Op::new("secure.taint").with_attr("label", "key");
        taint.operands = vec![fb.arg(0)];
        let secret = fb.op1(taint, Type::F64);
        let buf = fb.op1(Op::new("mem.alloc"), buf_ty);
        let i = fb.const_i(0, Type::Index);
        fb.store(secret, buf, &[i]);
        let init = fb.const_f(0.0, Type::F64);
        let out = fb.for_loop(0, 4, 1, &[init], |fb, iv, c| {
            let x = fb.load(buf, &[iv], Type::F64);
            vec![fb.binary("arith.addf", c[0], x, Type::F64)]
        });
        fb.ret(&[out[0]]);
        let func = fb.finish();
        let diags = check_func(&func);
        // The loop result carries the label out through mem.load + yield.
        let taints: Vec<_> = diags.iter().filter(|d| d.code == LINT_TAINT_FLOW).collect();
        assert_eq!(taints.len(), 1, "{diags:?}");
        assert!(taints[0].message.contains("func.return"));
    }

    #[test]
    fn public_label_is_not_secret() {
        let mut fb = FuncBuilder::new("f", &[Type::F64], &[Type::F64]);
        let mut taint = Op::new("secure.taint").with_attr("label", "public");
        taint.operands = vec![fb.arg(0)];
        let v = fb.op1(taint, Type::F64);
        fb.ret(&[v]);
        let func = fb.finish();
        assert!(check_func(&func).is_empty());
        assert!(!taint_summary(&func).is_tainted());
    }

    #[test]
    fn check_pass_collects_without_mutating() {
        let mut module = Module::new("m");
        module.push(tainted_to_sink());
        let before = module.to_text();
        let pass = CheckPass::new();
        let changed = pass.run(&mut module).unwrap();
        assert!(!changed);
        assert_eq!(module.to_text(), before);
        let diags = pass.take();
        assert!(diags.iter().any(|d| d.code == LINT_TAINT_FLOW));
        assert!(pass.take().is_empty());
    }
}
