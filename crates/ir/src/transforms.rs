//! Structural IR transformations: full loop unrolling and call inlining.
//!
//! These are the loop-level code transformations the EVEREST middle end
//! applies while generating variants ("could tile complex tensor
//! expressions ... while allowing different threading implementations",
//! paper III-B). Both are built on a clone-with-remap primitive that
//! copies op subtrees while allocating fresh SSA values.

use crate::attr::Attr;
use crate::error::{IrError, IrResult};
use crate::ir::{Block, BlockId, Func, Module, Op, Region, Value};
use crate::types::Type;
use std::collections::HashMap;

/// Clones `op` (including nested regions) into `func`, remapping operands
/// through `map` and allocating fresh result values (recorded in `map`).
fn clone_op(func: &mut Func, op: &Op, map: &mut HashMap<Value, Value>) -> Op {
    let mut cloned = Op::new(op.name.clone());
    cloned.attrs = op.attrs.clone();
    cloned.operands = op.operands.iter().map(|o| *map.get(o).unwrap_or(o)).collect();
    for region in &op.regions {
        let mut new_region = Region::new();
        for block in &region.blocks {
            let mut new_block = Block::new(block.id);
            for arg in &block.args {
                let ty = func.value_type(*arg).clone();
                let fresh = func.new_value(ty);
                map.insert(*arg, fresh);
                new_block.args.push(fresh);
            }
            for inner in &block.ops {
                let ic = clone_op(func, inner, map);
                new_block.ops.push(ic);
            }
            new_region.blocks.push(new_block);
        }
        cloned.regions.push(new_region);
    }
    cloned.results = op
        .results
        .iter()
        .map(|r| {
            let ty = func.value_type(*r).clone();
            let fresh = func.new_value(ty);
            map.insert(*r, fresh);
            fresh
        })
        .collect();
    cloned
}

/// Rewrites every operand in `region` (recursively) through `map`.
fn remap_region(region: &mut Region, map: &HashMap<Value, Value>) {
    for block in &mut region.blocks {
        for op in &mut block.ops {
            for operand in &mut op.operands {
                if let Some(n) = map.get(operand) {
                    *operand = *n;
                }
            }
            for nested in &mut op.regions {
                remap_region(nested, map);
            }
        }
    }
}

fn trip_count(op: &Op) -> Option<(i64, i64, i64, u64)> {
    let lo = op.attr("lo")?.as_int()?;
    let hi = op.attr("hi")?.as_int()?;
    let step = op.attr("step")?.as_int()?;
    if step <= 0 {
        return None;
    }
    let trips = if hi <= lo { 0 } else { ((hi - lo + step - 1) / step) as u64 };
    Some((lo, hi, step, trips))
}

/// Fully unrolls every `loop.for` with at most `max_trips` iterations in
/// `func` (innermost-first). Returns `true` if anything changed.
///
/// Each iteration's body is cloned with the induction variable replaced by
/// a constant and the loop-carried values chained through; the loop's
/// results are replaced by the final chained values.
pub fn unroll_func(func: &mut Func, max_trips: u64) -> bool {
    let mut changed = false;
    // Iterate to a fixed point so freshly exposed (previously nested)
    // loops unroll too.
    loop {
        let mut body = std::mem::take(&mut func.body);
        let did = unroll_region(func, &mut body, max_trips);
        func.body = body;
        if !did {
            return changed;
        }
        changed = true;
    }
}

fn unroll_region(func: &mut Func, region: &mut Region, max_trips: u64) -> bool {
    let mut changed = false;
    for bi in 0..region.blocks.len() {
        let mut new_ops: Vec<Op> = Vec::new();
        // Substitution accumulated for loop results; applied to the ops
        // that follow the expanded loop.
        let mut late_map: HashMap<Value, Value> = HashMap::new();
        let ops = std::mem::take(&mut region.blocks[bi].ops);
        for mut op in ops {
            // Apply pending substitutions first.
            for operand in &mut op.operands {
                if let Some(n) = late_map.get(operand) {
                    *operand = *n;
                }
            }
            for nested in &mut op.regions {
                remap_region(nested, &late_map);
                changed |= unroll_region(func, nested, max_trips);
            }
            let expandable = op.name == "loop.for"
                && trip_count(&op).is_some_and(|(_, _, _, t)| t <= max_trips)
                && op.regions[0].blocks.len() == 1;
            if !expandable {
                new_ops.push(op);
                continue;
            }
            let (lo, _hi, step, trips) = trip_count(&op).expect("checked above");
            let body = op.regions[0].blocks[0].clone();
            let (iv, carried_args) = (body.args[0], body.args[1..].to_vec());
            let mut carried: Vec<Value> = op.operands.clone();
            for trip in 0..trips {
                let mut map: HashMap<Value, Value> = HashMap::new();
                // iv -> fresh constant
                let iv_const = func.new_value(Type::Index);
                let mut const_op =
                    Op::new("arith.constant").with_attr("value", lo + trip as i64 * step);
                const_op.results = vec![iv_const];
                new_ops.push(const_op);
                map.insert(iv, iv_const);
                for (arg, cur) in carried_args.iter().zip(&carried) {
                    map.insert(*arg, *cur);
                }
                let mut next_carried = carried.clone();
                for inner in &body.ops {
                    if inner.name == "loop.yield" {
                        next_carried =
                            inner.operands.iter().map(|o| *map.get(o).unwrap_or(o)).collect();
                        break;
                    }
                    let cloned = clone_op(func, inner, &mut map);
                    new_ops.push(cloned);
                }
                carried = next_carried;
            }
            // Loop results now refer to the final carried values.
            for (res, fin) in op.results.iter().zip(&carried) {
                late_map.insert(*res, *fin);
            }
            changed = true;
        }
        region.blocks[bi].ops = new_ops;
    }
    changed
}

/// Inlines every `func.call` in `module` whose callee is a single-block
/// function defined in the same module. Returns the number of inlined
/// call sites.
///
/// # Errors
///
/// Returns [`IrError::UnknownSymbol`] when a call names a function the
/// module does not define.
pub fn inline_calls(module: &mut Module) -> IrResult<usize> {
    let names: Vec<String> = module.iter().map(|f| f.name.clone()).collect();
    let mut inlined = 0;
    for caller_name in names {
        // Take the caller out so we can borrow callees immutably.
        let mut caller = module
            .func(&caller_name)
            .cloned()
            .ok_or_else(|| IrError::UnknownSymbol(caller_name.clone()))?;
        let mut body = std::mem::take(&mut caller.body);
        let before = inlined;
        inline_region(&mut caller, module, &caller_name, &mut body, &mut inlined)?;
        caller.body = body;
        if inlined != before {
            *module.func_mut(&caller_name).expect("caller exists") = caller;
        }
    }
    Ok(inlined)
}

fn inline_region(
    caller: &mut Func,
    module: &Module,
    caller_name: &str,
    region: &mut Region,
    inlined: &mut usize,
) -> IrResult<()> {
    for block in &mut region.blocks {
        let ops = std::mem::take(&mut block.ops);
        let mut new_ops = Vec::new();
        let mut late_map: HashMap<Value, Value> = HashMap::new();
        for mut op in ops {
            for operand in &mut op.operands {
                if let Some(n) = late_map.get(operand) {
                    *operand = *n;
                }
            }
            for nested in &mut op.regions {
                remap_region(nested, &late_map);
                inline_region(caller, module, caller_name, nested, inlined)?;
            }
            if op.name != "func.call" {
                new_ops.push(op);
                continue;
            }
            let callee_name = op
                .attr("callee")
                .and_then(Attr::as_str)
                .ok_or_else(|| IrError::Verify("func.call without callee".into()))?
                .to_owned();
            if callee_name == caller_name {
                new_ops.push(op); // no recursive inlining
                continue;
            }
            let callee = module
                .func(&callee_name)
                .ok_or_else(|| IrError::UnknownSymbol(callee_name.clone()))?
                .clone();
            if callee.body.blocks.len() != 1 {
                new_ops.push(op);
                continue;
            }
            let entry = &callee.body.blocks[0];
            let mut map: HashMap<Value, Value> = HashMap::new();
            // Remap callee values into the caller's value space: params
            // bind to call operands; everything else gets fresh values.
            for (param, arg) in entry.args.iter().zip(&op.operands) {
                map.insert(*param, *arg);
            }
            let mut returned: Vec<Value> = Vec::new();
            for inner in &entry.ops {
                if inner.name == "func.return" {
                    returned = inner.operands.iter().map(|o| *map.get(o).unwrap_or(o)).collect();
                    break;
                }
                // Clone into the *caller*: allocate the callee's value
                // types in the caller's table.
                let mut cloned = Op::new(inner.name.clone());
                cloned.attrs = inner.attrs.clone();
                cloned.operands = inner.operands.iter().map(|o| *map.get(o).unwrap_or(o)).collect();
                for r in &inner.regions {
                    let cl = clone_callee_region(caller, &callee, r, &mut map);
                    cloned.regions.push(cl);
                }
                cloned.results = inner
                    .results
                    .iter()
                    .map(|r| {
                        let ty = callee.value_type(*r).clone();
                        let fresh = caller.new_value(ty);
                        map.insert(*r, fresh);
                        fresh
                    })
                    .collect();
                new_ops.push(cloned);
            }
            for (res, ret) in op.results.iter().zip(&returned) {
                late_map.insert(*res, *ret);
            }
            *inlined += 1;
        }
        block.ops = new_ops;
    }
    Ok(())
}

fn clone_callee_region(
    caller: &mut Func,
    callee: &Func,
    region: &Region,
    map: &mut HashMap<Value, Value>,
) -> Region {
    let mut out = Region::new();
    for block in &region.blocks {
        let mut nb = Block::new(BlockId(block.id.0));
        for arg in &block.args {
            let ty = callee.value_type(*arg).clone();
            let fresh = caller.new_value(ty);
            map.insert(*arg, fresh);
            nb.args.push(fresh);
        }
        for op in &block.ops {
            let mut cloned = Op::new(op.name.clone());
            cloned.attrs = op.attrs.clone();
            cloned.operands = op.operands.iter().map(|o| *map.get(o).unwrap_or(o)).collect();
            for nested in &op.regions {
                cloned.regions.push(clone_callee_region(caller, callee, nested, map));
            }
            cloned.results = op
                .results
                .iter()
                .map(|r| {
                    let ty = callee.value_type(*r).clone();
                    let fresh = caller.new_value(ty);
                    map.insert(*r, fresh);
                    fresh
                })
                .collect();
            nb.ops.push(cloned);
        }
        out.blocks.push(nb);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::pass::{constant_of, PassManager};
    use crate::verify::verify_func;

    #[test]
    fn unrolls_simple_accumulation() {
        let mut fb = FuncBuilder::new("f", &[], &[Type::F64]);
        let init = fb.const_f(0.0, Type::F64);
        let out = fb.for_loop(0, 4, 1, &[init], |fb, _iv, c| {
            let one = fb.const_f(1.0, Type::F64);
            vec![fb.binary("arith.addf", c[0], one, Type::F64)]
        });
        fb.ret(&[out[0]]);
        let mut f = fb.finish();
        assert!(unroll_func(&mut f, 8));
        verify_func(&f).expect("unrolled function verifies");
        let mut loops = 0;
        f.walk(&mut |op| {
            if op.name == "loop.for" {
                loops += 1;
            }
        });
        assert_eq!(loops, 0, "loop fully expanded");
        // Fold the straight-line code: result must be 4.0.
        let mut m = Module::new("m");
        m.push(f);
        PassManager::standard().run(&mut m).unwrap();
        let f = m.func("f").unwrap();
        let ret = f.body.entry().unwrap().terminator().unwrap();
        assert_eq!(constant_of(f, ret.operands[0]).and_then(|a| a.as_float()), Some(4.0));
    }

    #[test]
    fn unroll_uses_induction_variable_values() {
        // sum of iv over 0,2,4 (step 2, hi 5) = 6 via sitofp-free check:
        // accumulate iv into an index sum using muli trick is clumsy; use
        // addi on index carried value.
        let mut fb = FuncBuilder::new("f", &[], &[Type::Index]);
        let init = fb.const_i(0, Type::Index);
        let out = fb.for_loop(0, 5, 2, &[init], |fb, iv, c| {
            vec![fb.binary("arith.addi", c[0], iv, Type::Index)]
        });
        fb.ret(&[out[0]]);
        let mut f = fb.finish();
        assert!(unroll_func(&mut f, 8));
        let mut m = Module::new("m");
        m.push(f);
        PassManager::standard().run(&mut m).unwrap();
        let f = m.func("f").unwrap();
        let ret = f.body.entry().unwrap().terminator().unwrap();
        assert_eq!(constant_of(f, ret.operands[0]).and_then(|a| a.as_int()), Some(6));
    }

    #[test]
    fn large_loops_stay_rolled() {
        let mut fb = FuncBuilder::new("f", &[], &[]);
        fb.for_loop(0, 1000, 1, &[], |_fb, _iv, _c| vec![]);
        fb.ret(&[]);
        let mut f = fb.finish();
        assert!(!unroll_func(&mut f, 16));
        let mut loops = 0;
        f.walk(&mut |op| {
            if op.name == "loop.for" {
                loops += 1;
            }
        });
        assert_eq!(loops, 1);
    }

    #[test]
    fn nested_loops_unroll_inside_out() {
        let mut fb = FuncBuilder::new("f", &[], &[Type::F64]);
        let init = fb.const_f(0.0, Type::F64);
        let out = fb.for_loop(0, 2, 1, &[init], |fb, _i, c| {
            let inner = fb.for_loop(0, 3, 1, &[c[0]], |fb, _j, cc| {
                let one = fb.const_f(1.0, Type::F64);
                vec![fb.binary("arith.addf", cc[0], one, Type::F64)]
            });
            vec![inner[0]]
        });
        fb.ret(&[out[0]]);
        let mut f = fb.finish();
        assert!(unroll_func(&mut f, 4));
        verify_func(&f).expect("verifies");
        let mut m = Module::new("m");
        m.push(f);
        PassManager::standard().run(&mut m).unwrap();
        let f = m.func("f").unwrap();
        let ret = f.body.entry().unwrap().terminator().unwrap();
        assert_eq!(constant_of(f, ret.operands[0]).and_then(|a| a.as_float()), Some(6.0));
    }

    #[test]
    fn zero_trip_loop_folds_to_inits() {
        let mut fb = FuncBuilder::new("f", &[], &[Type::F64]);
        let init = fb.const_f(7.5, Type::F64);
        let out = fb.for_loop(5, 5, 1, &[init], |fb, _iv, c| {
            let one = fb.const_f(1.0, Type::F64);
            vec![fb.binary("arith.addf", c[0], one, Type::F64)]
        });
        fb.ret(&[out[0]]);
        let mut f = fb.finish();
        assert!(unroll_func(&mut f, 8));
        verify_func(&f).unwrap();
        let ret_operand = f.body.entry().unwrap().terminator().unwrap().operands[0];
        assert_eq!(ret_operand, init, "zero-trip loop yields its init");
    }

    #[test]
    fn inlines_single_block_callee() {
        let mut m = Module::new("m");
        let mut callee = FuncBuilder::new("square", &[Type::F64], &[Type::F64]);
        let sq = callee.binary("arith.mulf", callee.arg(0), callee.arg(0), Type::F64);
        callee.ret(&[sq]);
        m.push(callee.finish());

        let mut caller = FuncBuilder::new("caller", &[Type::F64], &[Type::F64]);
        let a0 = caller.arg(0);
        let r = caller.call("square", &[a0], &[Type::F64]);
        let doubled = caller.binary("arith.addf", r[0], r[0], Type::F64);
        caller.ret(&[doubled]);
        m.push(caller.finish());

        let n = inline_calls(&mut m).unwrap();
        assert_eq!(n, 1);
        m.verify().expect("inlined module verifies");
        let caller = m.func("caller").unwrap();
        let mut calls = 0;
        caller.walk(&mut |op| {
            if op.name == "func.call" {
                calls += 1;
            }
        });
        assert_eq!(calls, 0);
        // Semantics preserved: fold with a constant argument by wrapping.
        let mut names = Vec::new();
        caller.walk(&mut |op| names.push(op.name.clone()));
        assert!(names.contains(&"arith.mulf".to_string()));
    }

    #[test]
    fn unknown_callee_is_an_error() {
        let mut m = Module::new("m");
        let mut caller = FuncBuilder::new("caller", &[], &[]);
        caller.call("ghost", &[], &[]);
        caller.ret(&[]);
        m.push(caller.finish());
        assert_eq!(inline_calls(&mut m).unwrap_err(), IrError::UnknownSymbol("ghost".into()));
    }

    #[test]
    fn recursive_calls_left_alone() {
        let mut m = Module::new("m");
        let mut f = FuncBuilder::new("rec", &[], &[]);
        f.call("rec", &[], &[]);
        f.ret(&[]);
        m.push(f.finish());
        assert_eq!(inline_calls(&mut m).unwrap(), 0);
    }

    #[test]
    fn inline_then_unroll_composes() {
        let mut m = Module::new("m");
        let mut callee = FuncBuilder::new("inc", &[Type::F64], &[Type::F64]);
        let a0 = callee.arg(0);
        let one = callee.const_f(1.0, Type::F64);
        let s = callee.binary("arith.addf", a0, one, Type::F64);
        callee.ret(&[s]);
        m.push(callee.finish());

        let mut caller = FuncBuilder::new("main", &[], &[Type::F64]);
        let init = caller.const_f(0.0, Type::F64);
        let out =
            caller.for_loop(0, 3, 1, &[init], |fb, _iv, c| fb.call("inc", &[c[0]], &[Type::F64]));
        caller.ret(&[out[0]]);
        m.push(caller.finish());

        inline_calls(&mut m).unwrap();
        let main = m.func_mut("main").unwrap();
        unroll_func(main, 8);
        m.verify().unwrap();
        PassManager::standard().run(&mut m).unwrap();
        let main = m.func("main").unwrap();
        let ret = main.body.entry().unwrap().terminator().unwrap();
        assert_eq!(constant_of(main, ret.operands[0]).and_then(|a| a.as_float()), Some(3.0));
    }
}
