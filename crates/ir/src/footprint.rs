//! Interprocedural buffer shape/footprint inference on the dataflow engine.
//!
//! The stream-fusion legality analysis (`everestc fuse`) needs a *byte
//! bound* for every value a kernel produces and every buffer it allocates:
//! an edge of the workflow graph may only become an FPGA→FPGA stream when
//! the data crossing it provably fits the device BRAM budget. This module
//! supplies those bounds:
//!
//! * [`ShapeFact`] — a join-semilattice over buffer shapes: unknown
//!   (`Bottom`), a per-dimension [`Interval`] hull with a fixed element
//!   width (`Dims`), or unbounded (`Top`). Joining shapes of equal rank and
//!   element width is pointwise interval hull; anything else widens to
//!   `Top`, so the lattice has finite height and the fixpoint converges.
//! * [`ShapeAnalysis`] — a forward [`Analysis`] propagating facts from
//!   typed results, through elementwise ops, `loop.for` region boundaries
//!   (loop-carried args and yields) and `func.call` using callee summaries.
//! * [`fn_footprint`] / [`module_footprints`] — per-function summaries
//!   ([`FnFootprint`]): parameter bytes, result bytes from the converged
//!   facts at `func.return`, and peak local allocation as an [`Interval`]
//!   (each `mem.alloc` scaled by the trip counts of its enclosing
//!   `loop.for` nests; an unknown trip count makes the bound unbounded).
//!   `module_footprints` iterates the call graph to a fixpoint so `f` calls
//!   `g` in either declaration order.

use crate::attr::Attr;
use crate::dataflow::{analyze, Analysis, Direction, Interval, Lattice};
use crate::ir::{Block, Func, Module, Op, Value};
use crate::types::Type;
use std::collections::BTreeMap;

/// Abstract shape of one SSA value: per-dimension extents as intervals plus
/// the element width in bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeFact {
    /// Nothing known yet (unreached).
    Bottom,
    /// A shaped value: one [`Interval`] per dimension and the element size.
    Dims {
        /// Extent hull of every dimension, outermost first.
        dims: Vec<Interval>,
        /// Bytes per element.
        elem_bytes: u64,
    },
    /// Statically unbounded (or shape-incompatible join).
    Top,
}

impl ShapeFact {
    /// The exact fact for a static type, when it has one: shaped types map
    /// every dimension to a point interval, scalars to a rank-0 fact.
    pub fn of_type(ty: &Type) -> ShapeFact {
        match (ty.shape(), ty.elem().and_then(Type::scalar_bytes), ty.scalar_bytes()) {
            (Some(shape), Some(eb), _) => ShapeFact::Dims {
                dims: shape.iter().map(|d| Interval::point(*d as i64)).collect(),
                elem_bytes: eb as u64,
            },
            (None, _, Some(eb)) => ShapeFact::Dims { dims: Vec::new(), elem_bytes: eb as u64 },
            _ => ShapeFact::Top,
        }
    }

    /// Upper bound on the byte footprint, when every dimension is bounded.
    pub fn max_bytes(&self) -> Option<u64> {
        match self {
            ShapeFact::Dims { dims, elem_bytes } => {
                let mut bytes: u64 = *elem_bytes;
                for d in dims {
                    if !d.is_bounded() || d.hi < 0 {
                        return None;
                    }
                    bytes = bytes.checked_mul(d.hi as u64)?;
                }
                Some(bytes)
            }
            _ => None,
        }
    }
}

impl Lattice for ShapeFact {
    fn bottom() -> Self {
        ShapeFact::Bottom
    }

    fn join(&mut self, other: &Self) -> bool {
        match (&mut *self, other) {
            (_, ShapeFact::Bottom) => false,
            (ShapeFact::Top, _) => false,
            (ShapeFact::Bottom, o) => {
                *self = o.clone();
                true
            }
            (
                ShapeFact::Dims { dims, elem_bytes },
                ShapeFact::Dims { dims: od, elem_bytes: oe },
            ) => {
                if dims.len() != od.len() || elem_bytes != oe {
                    *self = ShapeFact::Top;
                    return true;
                }
                let mut changed = false;
                for (mine, theirs) in dims.iter_mut().zip(od) {
                    changed |= mine.join(theirs);
                }
                changed
            }
            (_, ShapeFact::Top) => {
                *self = ShapeFact::Top;
                true
            }
        }
    }
}

/// Per-value shape facts (map lattice: missing keys are bottom).
pub type ShapeState = BTreeMap<Value, ShapeFact>;

/// Interprocedural summary of one function's memory behaviour, in bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnFootprint {
    /// Total bytes of the parameters (`None` when any is unsized).
    pub in_bytes: Option<u64>,
    /// Total bytes of the results, from the converged facts at
    /// `func.return` (`None` when any result is unbounded).
    pub out_bytes: Option<u64>,
    /// Peak locally-allocated bytes: every `mem.alloc` scaled by the trip
    /// counts of its enclosing loops, plus callee locals at call sites.
    /// `TOP` means some allocation could not be bounded.
    pub local_bytes: Interval,
    /// Converged result facts, for callers of [`ShapeAnalysis`].
    pub out_shapes: Vec<ShapeFact>,
}

impl FnFootprint {
    /// `true` when every component of the summary is statically bounded.
    pub fn is_bounded(&self) -> bool {
        self.in_bytes.is_some() && self.out_bytes.is_some() && self.local_bytes.is_bounded()
    }
}

/// Forward shape propagation. Facts are seeded from static result types
/// (the common case in this IR), joined through elementwise/unknown ops
/// operand-wise for unshaped result types, carried across `loop.for`
/// region boundaries, and resolved through `func.call` via the summary
/// table handed to the constructor.
pub struct ShapeAnalysis<'s> {
    summaries: &'s BTreeMap<String, FnFootprint>,
}

impl<'s> ShapeAnalysis<'s> {
    /// An analysis resolving `func.call` against `summaries` (pass an empty
    /// map for intraprocedural use).
    pub fn new(summaries: &'s BTreeMap<String, FnFootprint>) -> ShapeAnalysis<'s> {
        ShapeAnalysis { summaries }
    }
}

fn fact_of(state: &ShapeState, v: Value) -> ShapeFact {
    state.get(&v).cloned().unwrap_or(ShapeFact::Bottom)
}

impl Analysis for ShapeAnalysis<'_> {
    type State = ShapeState;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self, func: &Func) -> Self::State {
        let mut state = BTreeMap::new();
        if let Some(entry) = func.body.entry() {
            for arg in &entry.args {
                state.insert(*arg, ShapeFact::of_type(func.value_type(*arg)));
            }
        }
        state
    }

    fn transfer(&self, func: &Func, op: &Op, state: &mut Self::State) {
        if op.name == "func.call" {
            let callee = op.attr("callee").and_then(Attr::as_str);
            let shapes = callee.and_then(|c| self.summaries.get(c)).map(|s| &s.out_shapes);
            for (i, r) in op.results.iter().enumerate() {
                let fact = match shapes.and_then(|s| s.get(i)) {
                    Some(fact) => fact.clone(),
                    None => ShapeFact::Top,
                };
                state.entry(*r).or_insert(ShapeFact::Bottom).join(&fact);
            }
            return;
        }
        for r in &op.results {
            let ty = func.value_type(*r);
            let fact = match ShapeFact::of_type(ty) {
                // Unshaped, unsized result (stream/token): inherit the hull
                // of the operands so shapes survive dataflow plumbing.
                ShapeFact::Top if ty.byte_size().is_none() => {
                    let mut hull = ShapeFact::Bottom;
                    for o in &op.operands {
                        hull.join(&fact_of(state, *o));
                    }
                    if hull == ShapeFact::Bottom {
                        ShapeFact::Top
                    } else {
                        hull
                    }
                }
                fact => fact,
            };
            state.entry(*r).or_insert(ShapeFact::Bottom).join(&fact);
        }
    }

    fn enter_region(
        &self,
        func: &Func,
        op: &Op,
        _region_index: usize,
        entry: &Block,
        state: &mut Self::State,
    ) {
        // `loop.for` binds the induction variable first, then the carried
        // values (initialized from the op's operands); other region-bearing
        // ops bind operands to entry args positionally.
        let args: &[Value] =
            if op.name == "loop.for" { entry.args.get(1..).unwrap_or(&[]) } else { &entry.args };
        if op.name == "loop.for" {
            if let Some(iv) = entry.args.first() {
                state.insert(*iv, ShapeFact::of_type(func.value_type(*iv)));
            }
        }
        for (operand, arg) in op.operands.iter().zip(args) {
            let fact = fact_of(state, *operand);
            state.entry(*arg).or_insert(ShapeFact::Bottom).join(&fact);
        }
    }

    fn exit_region(
        &self,
        _func: &Func,
        op: &Op,
        region_index: usize,
        exit: &Self::State,
        state: &mut Self::State,
    ) {
        // Yielded values hand their facts to the op's results.
        for block in &op.regions[region_index].blocks {
            if let Some(term) = block.terminator() {
                if term.name.ends_with(".yield") {
                    for (v, r) in term.operands.iter().zip(&op.results) {
                        let fact = fact_of(exit, *v);
                        state.entry(*r).or_insert(ShapeFact::Bottom).join(&fact);
                    }
                }
            }
        }
    }
}

/// Static trip count of a `loop.for` op, as an interval: a point when the
/// bounds are literal attributes, `TOP` otherwise.
fn trip_count(op: &Op) -> Interval {
    let lo = op.attr("lo").and_then(Attr::as_int);
    let hi = op.attr("hi").and_then(Attr::as_int);
    let step = op.attr("step").and_then(Attr::as_int);
    match (lo, hi, step) {
        (Some(lo), Some(hi), Some(step)) if step > 0 => {
            Interval::point(((hi - lo).max(0) + step - 1) / step)
        }
        _ => Interval::TOP,
    }
}

/// Structural post-pass: sums `mem.alloc` sizes (and callee local+result
/// bytes at `func.call` sites), each scaled by the product of enclosing
/// loop trip counts. A deliberate over-approximation — allocations are
/// never assumed to be reused across iterations.
fn local_bytes(
    block: &Block,
    func: &Func,
    mult: Interval,
    summaries: &BTreeMap<String, FnFootprint>,
) -> Interval {
    let mut total = Interval::point(0);
    for op in &block.ops {
        if op.name == "mem.alloc" {
            let size = op
                .results
                .first()
                .and_then(|r| func.value_type(*r).byte_size())
                .map(|b| Interval::point(b as i64))
                .unwrap_or(Interval::TOP);
            total = total + size * mult;
        } else if op.name == "func.call" {
            let callee = op.attr("callee").and_then(Attr::as_str);
            let callee_bytes = match callee.and_then(|c| summaries.get(c)) {
                Some(s) => {
                    s.local_bytes
                        + s.out_bytes.map(|b| Interval::point(b as i64)).unwrap_or(Interval::TOP)
                }
                None => Interval::TOP,
            };
            total = total + callee_bytes * mult;
        }
        for region in &op.regions {
            let inner_mult = if op.name == "loop.for" { mult * trip_count(op) } else { mult };
            for b in &region.blocks {
                total = total + local_bytes(b, func, inner_mult, summaries);
            }
        }
    }
    total
}

/// Computes one function's [`FnFootprint`] given summaries for its callees.
pub fn fn_footprint(func: &Func, summaries: &BTreeMap<String, FnFootprint>) -> FnFootprint {
    let in_bytes = func.params.iter().try_fold(0u64, |acc, t| Some(acc + t.byte_size()? as u64));

    // Result facts: the converged shapes of `func.return` operands, falling
    // back to the declared result type when the analysis lost precision.
    let analysis = ShapeAnalysis::new(summaries);
    let mut out_shapes: Vec<ShapeFact> = func.results.iter().map(ShapeFact::of_type).collect();
    for (_, op, before) in analyze(func, &analysis) {
        if op.name != "func.return" {
            continue;
        }
        for (i, operand) in op.operands.iter().enumerate() {
            let fact = fact_of(&before, *operand);
            if fact.max_bytes().is_some() {
                if let Some(slot) = out_shapes.get_mut(i) {
                    *slot = fact;
                }
            }
        }
    }
    let out_bytes = out_shapes.iter().try_fold(0u64, |acc, f| Some(acc + f.max_bytes()?));

    let mut locals = Interval::point(0);
    for block in &func.body.blocks {
        locals = locals + local_bytes(block, func, Interval::point(1), summaries);
    }
    FnFootprint { in_bytes, out_bytes, local_bytes: locals, out_shapes }
}

/// Safety cap on call-graph passes (cycles or pathological chains).
const MAX_CALLGRAPH_PASSES: usize = 16;

/// Summarizes every function of `module`, iterating to a fixpoint over the
/// call graph so summaries flow through `func.call` regardless of
/// declaration order. Deterministic: functions are processed in module
/// order, results keyed by name in a sorted map.
pub fn module_footprints(module: &Module) -> BTreeMap<String, FnFootprint> {
    let mut span = everest_telemetry::span("ir.footprint", "ir");
    let mut summaries: BTreeMap<String, FnFootprint> = BTreeMap::new();
    for _ in 0..MAX_CALLGRAPH_PASSES {
        let mut changed = false;
        for func in module.iter() {
            let fresh = fn_footprint(func, &summaries);
            if summaries.get(&func.name) != Some(&fresh) {
                summaries.insert(func.name.clone(), fresh);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    span.attr("functions", summaries.len());
    summaries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::types::MemSpace;

    #[test]
    fn shape_fact_lattice_basics() {
        let t = Type::tensor(Type::F64, &[4, 8]);
        let fact = ShapeFact::of_type(&t);
        assert_eq!(fact.max_bytes(), Some(4 * 8 * 8));
        let mut j = fact.clone();
        assert!(!j.join(&ShapeFact::Bottom));
        assert!(!j.join(&fact.clone()));
        // Rank mismatch widens to top.
        let other = ShapeFact::of_type(&Type::tensor(Type::F64, &[4]));
        assert!(j.join(&other));
        assert_eq!(j, ShapeFact::Top);
        assert_eq!(ShapeFact::Top.max_bytes(), None);
        // Equal rank joins pointwise.
        let mut a = ShapeFact::of_type(&Type::tensor(Type::F32, &[2, 3]));
        let b = ShapeFact::of_type(&Type::tensor(Type::F32, &[5, 3]));
        assert!(a.join(&b));
        assert_eq!(a.max_bytes(), Some(5 * 3 * 4));
    }

    #[test]
    fn footprint_of_a_simple_kernel() {
        let a = Type::tensor(Type::F64, &[16, 16]);
        let mut fb = FuncBuilder::new("gemm", &[a.clone(), a.clone()], std::slice::from_ref(&a));
        let prod = fb.binary("tensor.matmul", fb.arg(0), fb.arg(1), a);
        fb.ret(&[prod]);
        let fp = fn_footprint(&fb.finish(), &BTreeMap::new());
        assert_eq!(fp.in_bytes, Some(2 * 16 * 16 * 8));
        assert_eq!(fp.out_bytes, Some(16 * 16 * 8));
        assert_eq!(fp.local_bytes, Interval::point(0));
        assert!(fp.is_bounded());
    }

    #[test]
    fn allocs_scale_with_loop_trip_counts() {
        let buf_ty = Type::memref(Type::F64, &[8], MemSpace::Scratchpad);
        let mut fb = FuncBuilder::new("f", &[], &[Type::F64]);
        let init = fb.const_f(0.0, Type::F64);
        let out = fb.for_loop(0, 4, 1, &[init], |fb, _iv, c| {
            let _buf = fb.op1(Op::new("mem.alloc"), buf_ty.clone());
            vec![c[0]]
        });
        fb.ret(&[out[0]]);
        let fp = fn_footprint(&fb.finish(), &BTreeMap::new());
        // 4 iterations x 8 f64 = 256 bytes, never assumed reused.
        assert_eq!(fp.local_bytes, Interval::point(4 * 8 * 8));
    }

    #[test]
    fn call_sites_use_callee_summaries_interprocedurally() {
        let t = Type::tensor(Type::F64, &[32]);
        let mut module = Module::new("m");
        // Caller first: the summary for `leaf` only exists on pass 2.
        let mut fb = FuncBuilder::new("root", std::slice::from_ref(&t), std::slice::from_ref(&t));
        let mut call = Op::new("func.call").with_attr("callee", "leaf");
        call.operands = vec![fb.arg(0)];
        let out = fb.op1(call, t.clone());
        fb.ret(&[out]);
        module.push(fb.finish());
        let mut fb = FuncBuilder::new("leaf", std::slice::from_ref(&t), std::slice::from_ref(&t));
        let buf =
            fb.op1(Op::new("mem.alloc"), Type::memref(Type::F64, &[16], MemSpace::Scratchpad));
        let _ = buf;
        let neg = fb.unary("arith.negf", fb.arg(0), t.clone());
        fb.ret(&[neg]);
        module.push(fb.finish());

        let summaries = module_footprints(&module);
        let leaf = &summaries["leaf"];
        assert_eq!(leaf.local_bytes, Interval::point(16 * 8));
        let root = &summaries["root"];
        assert_eq!(root.out_bytes, Some(32 * 8));
        // Caller accounts the callee's locals and result buffer.
        assert_eq!(root.local_bytes, Interval::point(16 * 8 + 32 * 8));
    }

    #[test]
    fn unbounded_loop_makes_locals_top() {
        let buf_ty = Type::memref(Type::F64, &[8], MemSpace::Scratchpad);
        let mut fb = FuncBuilder::new("f", &[], &[Type::F64]);
        let init = fb.const_f(0.0, Type::F64);
        let out = fb.for_loop(0, 4, 1, &[init], |fb, _iv, c| {
            let _buf = fb.op1(Op::new("mem.alloc"), buf_ty.clone());
            vec![c[0]]
        });
        fb.ret(&[out[0]]);
        let mut func = fb.finish();
        // Strip the loop bounds: the trip count is now unknown.
        func.body.entry_mut().unwrap().ops[1].attrs.remove("hi");
        let fp = fn_footprint(&func, &BTreeMap::new());
        assert!(!fp.local_bytes.is_bounded());
        assert!(!fp.is_bounded());
    }

    #[test]
    fn loop_carried_shapes_survive_the_back_edge() {
        let t = Type::tensor(Type::F64, &[8, 8]);
        let mut fb =
            FuncBuilder::new("iterate", std::slice::from_ref(&t), std::slice::from_ref(&t));
        let out = fb.for_loop(0, 10, 1, &[fb.arg(0)], |fb, _iv, c| {
            vec![fb.unary("arith.negf", c[0], Type::tensor(Type::F64, &[8, 8]))]
        });
        fb.ret(&[out[0]]);
        let fp = fn_footprint(&fb.finish(), &BTreeMap::new());
        assert_eq!(fp.out_bytes, Some(8 * 8 * 8));
        assert_eq!(fp.out_shapes.len(), 1);
        assert_eq!(fp.out_shapes[0].max_bytes(), Some(512));
    }
}
