//! Structured diagnostics shared by every static analysis and lint.
//!
//! All analyses — the IR lints in [`crate::lints`], the workflow race
//! detector, the verifier bridge in the CLI — report through one
//! [`Diagnostic`] type so tooling downstream (the `everestc check`
//! subcommand, the CI JSON gate) sees a single stable format: a severity, a
//! stable lint code, a function/task location, a human message and a
//! rendered snippet of the offending op or task pair.

use crate::ir::Op;
use std::fmt;

/// How serious a diagnostic is. Errors fail `everestc check`; warnings are
/// reported but do not change the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not definitely wrong (dead stores, unused results).
    Warning,
    /// Definitely wrong on some execution (out-of-bounds access, secret
    /// flows to an unprotected sink, dataset races).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding from a static analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Stable lint code (e.g. `"dead-store"`, `"taint-flow"`); see
    /// [`crate::lints::LINT_CODES`] for the registry.
    pub code: &'static str,
    /// Enclosing function or workflow name (without the `@`).
    pub func: String,
    /// Op or task location, e.g. `"^bb0 op 3"` (nested regions join with
    /// `" / "`); empty when the finding is not tied to one op.
    pub location: String,
    /// Human-readable explanation.
    pub message: String,
    /// Rendered snippet of the offending op or task pair.
    pub snippet: String,
    /// Source file the diagnostic came from (filled in by the CLI; empty
    /// for programmatic use).
    pub file: String,
}

impl Diagnostic {
    /// Creates a diagnostic with empty location/snippet/file, which the
    /// analysis then fills in.
    pub fn new(
        severity: Severity,
        code: &'static str,
        func: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            severity,
            code,
            func: func.into(),
            location: String::new(),
            message: message.into(),
            snippet: String::new(),
            file: String::new(),
        }
    }

    /// Sets the op/task location, returning `self` for chaining.
    #[must_use]
    pub fn at(mut self, location: impl Into<String>) -> Diagnostic {
        self.location = location.into();
        self
    }

    /// Sets the rendered snippet, returning `self` for chaining.
    #[must_use]
    pub fn with_snippet(mut self, snippet: impl Into<String>) -> Diagnostic {
        self.snippet = snippet.into();
        self
    }

    /// Renders the diagnostic as a human-readable block, mirroring the
    /// verifier's `at ^bbN op I` location format:
    ///
    /// ```text
    /// error[taint-flow] @leak at ^bb0 op 3: secret value reaches sink
    ///     df.sink %2 {kind = "out"}
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.file.is_empty() {
            out.push_str(&self.file);
            out.push_str(": ");
        }
        out.push_str(&format!("{}[{}] @{}", self.severity, self.code, self.func));
        if !self.location.is_empty() {
            out.push_str(&format!(" at {}", self.location));
        }
        out.push_str(&format!(": {}", self.message));
        if !self.snippet.is_empty() {
            out.push_str(&format!("\n    {}", self.snippet));
        }
        out
    }

    /// Serializes the diagnostic as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"severity\": \"{}\", \"code\": \"{}\", \"func\": \"{}\", \"location\": \"{}\", \
             \"message\": \"{}\", \"snippet\": \"{}\", \"file\": \"{}\"}}",
            self.severity,
            escape_json(self.code),
            escape_json(&self.func),
            escape_json(&self.location),
            escape_json(&self.message),
            escape_json(&self.snippet),
            escape_json(&self.file),
        )
    }
}

/// Renders a plain-text report: one block per diagnostic plus a summary
/// line (`check: 2 errors, 1 warning`).
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render());
        out.push('\n');
    }
    let (errors, warnings) = tally(diags);
    out.push_str(&format!(
        "check: {errors} error{}, {warnings} warning{}\n",
        if errors == 1 { "" } else { "s" },
        if warnings == 1 { "" } else { "s" },
    ));
    out
}

/// Version of the JSON envelope emitted by [`render_json`]. Bumped whenever
/// a field is renamed, removed, or changes meaning; purely additive changes
/// keep the version. CI gates and external tooling key on this.
pub const DIAG_SCHEMA_VERSION: u32 = 1;

/// Serializes diagnostics as a versioned JSON envelope (`--format json`):
/// `{"schema_version": 1, "diagnostics": [...]}`.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = format!("{{\"schema_version\": {DIAG_SCHEMA_VERSION}, \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&d.to_json());
    }
    out.push_str("]}\n");
    out
}

/// `(errors, warnings)` counts.
pub fn tally(diags: &[Diagnostic]) -> (usize, usize) {
    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    (errors, diags.len() - errors)
}

/// Bumps the `check.diag.error` / `check.diag.warn` telemetry counters for
/// a batch of findings.
pub fn record_metrics(diags: &[Diagnostic]) {
    let (errors, warnings) = tally(diags);
    let metrics = everest_telemetry::metrics();
    if errors > 0 {
        metrics.counter_add("check.diag.error", errors as u64);
    }
    if warnings > 0 {
        metrics.counter_add("check.diag.warn", warnings as u64);
    }
}

/// Renders one op as a single-line snippet using raw SSA ids (`%7`), the
/// same ids the verifier reports.
pub fn op_snippet(op: &Op) -> String {
    let mut out = String::new();
    if !op.results.is_empty() {
        let rs: Vec<String> = op.results.iter().map(|r| r.to_string()).collect();
        out.push_str(&rs.join(", "));
        out.push_str(" = ");
    }
    out.push_str(&op.name);
    if !op.operands.is_empty() {
        let os: Vec<String> = op.operands.iter().map(|o| o.to_string()).collect();
        out.push(' ');
        out.push_str(&os.join(", "));
    }
    if !op.attrs.is_empty() {
        out.push_str(" {");
        for (i, (k, v)) in op.attrs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{k} = {v}"));
        }
        out.push('}');
    }
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic::new(Severity::Error, "taint-flow", "leak", "secret reaches sink")
            .at("^bb0 op 3")
            .with_snippet("df.sink %2 {kind = \"out\"}")
    }

    #[test]
    fn renders_location_and_snippet() {
        let text = sample().render();
        assert!(text.contains("error[taint-flow] @leak at ^bb0 op 3: secret reaches sink"));
        assert!(text.contains("df.sink %2"));
    }

    #[test]
    fn json_escapes_quotes() {
        let json = sample().to_json();
        assert!(json.contains("\\\"out\\\""));
        assert!(json.contains("\"code\": \"taint-flow\""));
    }

    #[test]
    fn tally_splits_by_severity() {
        let diags =
            vec![sample(), Diagnostic::new(Severity::Warning, "dead-store", "f", "never read")];
        assert_eq!(tally(&diags), (1, 1));
        let report = render_text(&diags);
        assert!(report.contains("check: 1 error, 1 warning"));
    }

    #[test]
    fn record_metrics_bumps_counters() {
        let metrics = everest_telemetry::metrics();
        let before_e = metrics.snapshot().counter("check.diag.error");
        let before_w = metrics.snapshot().counter("check.diag.warn");
        record_metrics(&[
            sample(),
            Diagnostic::new(Severity::Warning, "dead-store", "f", "m"),
            Diagnostic::new(Severity::Warning, "unused-result", "f", "m"),
        ]);
        let after = metrics.snapshot();
        assert_eq!(after.counter("check.diag.error") - before_e, 1);
        assert_eq!(after.counter("check.diag.warn") - before_w, 2);
    }

    #[test]
    fn render_json_is_a_versioned_envelope() {
        let json = render_json(&[sample()]);
        assert!(json.starts_with("{\"schema_version\": 1, \"diagnostics\": ["));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn golden_json_envelope() {
        // Pins the envelope byte-for-byte: downstream CI gates parse this.
        assert_eq!(render_json(&[]), "{\"schema_version\": 1, \"diagnostics\": []}\n");
        let one =
            Diagnostic::new(Severity::Warning, "dead-store", "f", "never read").at("^bb0 op 0");
        assert_eq!(
            render_json(&[one]),
            "{\"schema_version\": 1, \"diagnostics\": [{\"severity\": \"warning\", \
             \"code\": \"dead-store\", \"func\": \"f\", \"location\": \"^bb0 op 0\", \
             \"message\": \"never read\", \"snippet\": \"\", \"file\": \"\"}]}\n"
        );
    }
}
