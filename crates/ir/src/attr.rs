//! Operation attributes: compile-time constant metadata attached to ops.
//!
//! Attributes carry everything that is not an SSA operand: literal constants,
//! DSL annotations ("data characteristics and requirements", paper III-B),
//! HLS directives, and security labels.

use crate::types::Type;
use std::fmt;

/// An attribute value.
///
/// ```
/// use everest_ir::Attr;
/// let a = Attr::Array(vec![Attr::Int(1), Attr::Int(2)]);
/// assert_eq!(a.to_string(), "[1, 2]");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Attr {
    /// Signed integer literal.
    Int(i64),
    /// Floating point literal.
    Float(f64),
    /// Quoted string.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Type attribute.
    Type(Type),
    /// Homogeneous or heterogeneous array of attributes.
    Array(Vec<Attr>),
}

impl Attr {
    /// Returns the integer payload, if this is an [`Attr::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Attr::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float payload, accepting integer attributes as well.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Attr::Float(v) => Some(*v),
            Attr::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the string payload, if this is an [`Attr::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Attr::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is an [`Attr::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Attr::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the array payload, if this is an [`Attr::Array`].
    pub fn as_array(&self) -> Option<&[Attr]> {
        match self {
            Attr::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: an array attribute of integers.
    pub fn ints(values: &[i64]) -> Attr {
        Attr::Array(values.iter().map(|v| Attr::Int(*v)).collect())
    }

    /// Extracts a `Vec<i64>` from an integer-array attribute.
    pub fn to_ints(&self) -> Option<Vec<i64>> {
        self.as_array()?.iter().map(Attr::as_int).collect()
    }
}

impl From<i64> for Attr {
    fn from(v: i64) -> Attr {
        Attr::Int(v)
    }
}

impl From<f64> for Attr {
    fn from(v: f64) -> Attr {
        Attr::Float(v)
    }
}

impl From<&str> for Attr {
    fn from(v: &str) -> Attr {
        Attr::Str(v.to_owned())
    }
}

impl From<bool> for Attr {
    fn from(v: bool) -> Attr {
        Attr::Bool(v)
    }
}

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Attr::Int(v) => write!(f, "{v}"),
            // Always keep a decimal point so the parser can distinguish
            // floats from ints on the way back in.
            Attr::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Attr::Str(s) => write!(f, "\"{}\"", s.escape_default()),
            Attr::Bool(b) => write!(f, "{b}"),
            Attr::Type(t) => write!(f, "!{t}"),
            Attr::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Attr::Int(7).as_int(), Some(7));
        assert_eq!(Attr::Int(7).as_float(), Some(7.0));
        assert_eq!(Attr::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Attr::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Attr::Bool(true).as_bool(), Some(true));
        assert_eq!(Attr::Int(7).as_str(), None);
    }

    #[test]
    fn int_array_round_trip() {
        let a = Attr::ints(&[3, 1, 4]);
        assert_eq!(a.to_ints(), Some(vec![3, 1, 4]));
        assert_eq!(Attr::Array(vec![Attr::Bool(true)]).to_ints(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Attr::Float(2.0).to_string(), "2.0");
        assert_eq!(Attr::Float(0.5).to_string(), "0.5");
        assert_eq!(Attr::Str("a\"b".into()).to_string(), "\"a\\\"b\"");
        assert_eq!(Attr::Type(Type::F32).to_string(), "!f32");
        assert_eq!(Attr::ints(&[1]).to_string(), "[1]");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Attr::from(3i64), Attr::Int(3));
        assert_eq!(Attr::from(true), Attr::Bool(true));
        assert_eq!(Attr::from("hi"), Attr::Str("hi".into()));
    }
}
