//! The pass framework and the standard middle-end passes.
//!
//! EVEREST's compilation engine "explores code variants" over a normalized
//! IR; the passes here perform that normalization: dead-code elimination,
//! common-subexpression elimination and constant folding, plus a
//! `canonicalize` driver that iterates them to a fixed point.

use crate::attr::Attr;
use crate::error::IrResult;
use crate::ir::{Block, Func, Module, Region, Value};
use crate::registry;
use std::collections::{HashMap, HashSet};

/// A transformation over a module.
pub trait Pass {
    /// Human-readable pass name (used in diagnostics).
    fn name(&self) -> &str;
    /// Runs the pass; returns `true` if the module changed.
    ///
    /// # Errors
    ///
    /// Passes may fail with [`crate::IrError::Pass`] when preconditions are
    /// violated.
    fn run(&self, module: &mut Module) -> IrResult<bool>;
}

/// Runs a pipeline of passes in order.
///
/// ```
/// use everest_ir::{PassManager, Module};
/// let mut pm = PassManager::new();
/// pm.add(everest_ir::pass::Dce);
/// let mut m = Module::new("m");
/// pm.run(&mut m).unwrap();
/// ```
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl std::fmt::Debug for PassManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.passes.iter().map(|p| p.name()).collect();
        f.debug_struct("PassManager").field("passes", &names).finish()
    }
}

impl PassManager {
    /// Creates an empty pipeline.
    pub fn new() -> PassManager {
        PassManager::default()
    }

    /// Appends a pass to the pipeline.
    pub fn add(&mut self, pass: impl Pass + 'static) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// The standard optimization pipeline (fold, cse, dce iterated).
    pub fn standard() -> PassManager {
        let mut pm = PassManager::new();
        pm.add(Canonicalize::default());
        pm
    }

    /// Runs every pass once, in order; returns `true` if anything changed.
    ///
    /// # Errors
    ///
    /// Propagates the first pass failure.
    pub fn run(&self, module: &mut Module) -> IrResult<bool> {
        let mut pipeline = everest_telemetry::span("ir.pipeline", "ir");
        pipeline.attr("passes", self.passes.len());
        let mut changed = false;
        for pass in &self.passes {
            let mut span = everest_telemetry::span(pass.name(), "ir.pass");
            let pass_changed = pass.run(module)?;
            span.attr("changed", pass_changed);
            if pass_changed {
                everest_telemetry::metrics().counter_inc("ir.pass.changed");
            }
            changed |= pass_changed;
        }
        Ok(changed)
    }
}

fn for_each_func(module: &mut Module, f: impl Fn(&mut Func) -> bool) -> bool {
    let mut changed = false;
    for func in module.iter_mut() {
        changed |= f(func);
    }
    changed
}

// ---------------------------------------------------------------------------
// Dead code elimination
// ---------------------------------------------------------------------------

/// Removes pure operations whose results are never used.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dce;

fn collect_uses(region: &Region, used: &mut HashSet<Value>) {
    region.walk(&mut |op| {
        for v in &op.operands {
            used.insert(*v);
        }
    });
}

fn dce_region(region: &mut Region, used: &HashSet<Value>) -> bool {
    let mut changed = false;
    for block in &mut region.blocks {
        let before = block.ops.len();
        block.ops.retain(|op| {
            let removable = registry::is_pure(&op.name)
                && op.regions.is_empty()
                && op.results.iter().all(|r| !used.contains(r));
            !removable
        });
        changed |= block.ops.len() != before;
        for op in &mut block.ops {
            for nested in &mut op.regions {
                changed |= dce_region(nested, used);
            }
        }
    }
    changed
}

/// Runs DCE on one function until a fixed point.
pub fn dce_func(func: &mut Func) -> bool {
    let mut changed = false;
    loop {
        let mut used = HashSet::new();
        collect_uses(&func.body, &mut used);
        if !dce_region(&mut func.body, &used) {
            return changed;
        }
        changed = true;
    }
}

impl Pass for Dce {
    fn name(&self) -> &str {
        "dce"
    }

    fn run(&self, module: &mut Module) -> IrResult<bool> {
        Ok(for_each_func(module, dce_func))
    }
}

// ---------------------------------------------------------------------------
// Common subexpression elimination
// ---------------------------------------------------------------------------

/// Deduplicates pure operations with identical name, operands and attributes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cse;

fn attr_key(attrs: &std::collections::BTreeMap<String, Attr>) -> String {
    let mut out = String::new();
    for (k, v) in attrs {
        out.push_str(k);
        out.push('=');
        out.push_str(&v.to_string());
        out.push(';');
    }
    out
}

fn remap(v: Value, map: &HashMap<Value, Value>) -> Value {
    let mut cur = v;
    while let Some(next) = map.get(&cur) {
        cur = *next;
    }
    cur
}

fn cse_block(
    block: &mut Block,
    seen: &mut HashMap<(String, Vec<Value>, String), Vec<Value>>,
    map: &mut HashMap<Value, Value>,
) -> bool {
    let mut changed = false;
    let mut kept = Vec::with_capacity(block.ops.len());
    for mut op in std::mem::take(&mut block.ops) {
        for operand in &mut op.operands {
            let r = remap(*operand, map);
            if r != *operand {
                *operand = r;
                changed = true;
            }
        }
        let eligible = registry::is_pure(&op.name) && op.regions.is_empty();
        if eligible {
            let key = (op.name.clone(), op.operands.clone(), attr_key(&op.attrs));
            if let Some(prev) = seen.get(&key) {
                for (old, new) in op.results.iter().zip(prev) {
                    map.insert(*old, *new);
                }
                changed = true;
                continue; // drop duplicate op
            }
            seen.insert(key, op.results.clone());
        }
        for nested in &mut op.regions {
            for nested_block in &mut nested.blocks {
                // Nested scopes inherit outer equivalences but cannot leak
                // their own upward: clone the table.
                let mut inner_seen = seen.clone();
                changed |= cse_block(nested_block, &mut inner_seen, map);
            }
        }
        kept.push(op);
    }
    block.ops = kept;
    changed
}

/// Runs CSE on one function.
pub fn cse_func(func: &mut Func) -> bool {
    let mut seen = HashMap::new();
    let mut map = HashMap::new();
    let mut changed = false;
    let mut blocks = std::mem::take(&mut func.body.blocks);
    for block in &mut blocks {
        changed |= cse_block(block, &mut seen, &mut map);
    }
    func.body.blocks = blocks;
    changed
}

impl Pass for Cse {
    fn name(&self) -> &str {
        "cse"
    }

    fn run(&self, module: &mut Module) -> IrResult<bool> {
        Ok(for_each_func(module, cse_func))
    }
}

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

/// Evaluates arithmetic ops whose operands are constants.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fold;

fn fold_float(name: &str, a: f64, b: f64) -> Option<f64> {
    Some(match name {
        "arith.addf" => a + b,
        "arith.subf" => a - b,
        "arith.mulf" => a * b,
        "arith.divf" => a / b,
        "arith.maxf" => a.max(b),
        "arith.minf" => a.min(b),
        _ => return None,
    })
}

fn fold_int(name: &str, a: i64, b: i64) -> Option<i64> {
    Some(match name {
        "arith.addi" => a.wrapping_add(b),
        "arith.subi" => a.wrapping_sub(b),
        "arith.muli" => a.wrapping_mul(b),
        "arith.divi" if b != 0 => a.wrapping_div(b),
        "arith.remi" if b != 0 => a.wrapping_rem(b),
        _ => return None,
    })
}

fn fold_unary_float(name: &str, a: f64) -> Option<f64> {
    Some(match name {
        "arith.negf" => -a,
        "arith.sqrtf" if a >= 0.0 => a.sqrt(),
        "arith.expf" => a.exp(),
        _ => return None,
    })
}

fn fold_region(func: &Func, region: &mut Region, consts: &mut HashMap<Value, Attr>) -> bool {
    let mut changed = false;
    for block in &mut region.blocks {
        for op in &mut block.ops {
            for nested in &mut op.regions {
                // Loop bodies may execute many times, but constants remain
                // constants; propagate the outer environment in.
                let mut inner = consts.clone();
                changed |= fold_region(func, nested, &mut inner);
            }
            if op.name == "arith.constant" {
                if let Some(v) = op.attr("value") {
                    consts.insert(op.results[0], v.clone());
                }
                continue;
            }
            let folded: Option<Attr> = match (op.operands.len(), op.name.as_str()) {
                (2, name) => {
                    let a = op.operands[0];
                    let b = op.operands[1];
                    match (consts.get(&a), consts.get(&b)) {
                        (Some(Attr::Float(x)), Some(Attr::Float(y))) => {
                            fold_float(name, *x, *y).map(Attr::Float)
                        }
                        (Some(Attr::Int(x)), Some(Attr::Int(y))) => {
                            fold_int(name, *x, *y).map(Attr::Int)
                        }
                        _ => None,
                    }
                }
                (1, name) => match consts.get(&op.operands[0]) {
                    Some(Attr::Float(x)) => fold_unary_float(name, *x).map(Attr::Float),
                    _ => None,
                },
                _ => None,
            };
            if let Some(value) = folded {
                // Only rewrite when the result type matches the payload kind
                // (the verifier demands e.g. float payloads for float types).
                let rt = func.value_type(op.results[0]);
                let compatible = matches!(
                    (&value, rt.is_float(), rt.is_int()),
                    (Attr::Float(_), true, _) | (Attr::Int(_), _, true)
                );
                if compatible {
                    consts.insert(op.results[0], value.clone());
                    op.name = "arith.constant".into();
                    op.operands.clear();
                    op.attrs.clear();
                    op.attrs.insert("value".into(), value);
                    changed = true;
                }
            }
        }
    }
    changed
}

/// Runs constant folding on one function.
pub fn fold_func(func: &mut Func) -> bool {
    let mut consts = HashMap::new();
    let mut body = std::mem::take(&mut func.body);
    let changed = fold_region(func, &mut body, &mut consts);
    func.body = body;
    changed
}

impl Pass for Fold {
    fn name(&self) -> &str {
        "fold"
    }

    fn run(&self, module: &mut Module) -> IrResult<bool> {
        Ok(for_each_func(module, fold_func))
    }
}

// ---------------------------------------------------------------------------
// Canonicalize: fold + cse + dce to a fixed point
// ---------------------------------------------------------------------------

/// Iterates folding, CSE and DCE until nothing changes (bounded).
#[derive(Debug, Clone, Copy)]
pub struct Canonicalize {
    /// Maximum number of iterations (safety bound).
    pub max_iters: usize,
}

impl Default for Canonicalize {
    fn default() -> Canonicalize {
        Canonicalize { max_iters: 8 }
    }
}

impl Pass for Canonicalize {
    fn name(&self) -> &str {
        "canonicalize"
    }

    fn run(&self, module: &mut Module) -> IrResult<bool> {
        type FuncPass = fn(&mut Func) -> bool;
        const STEPS: [(&str, &str, FuncPass); 3] = [
            ("fold", "ir.pass.changed.fold", fold_func),
            ("cse", "ir.pass.changed.cse", cse_func),
            ("dce", "ir.pass.changed.dce", dce_func),
        ];
        let mut any = false;
        for iter in 0..self.max_iters {
            let mut iter_span = everest_telemetry::span("canonicalize.iter", "ir.pass");
            iter_span.attr("iteration", iter);
            let mut changed = false;
            for (name, counter, func_pass) in STEPS {
                let mut span = everest_telemetry::span(name, "ir.pass");
                let step_changed = for_each_func(module, func_pass);
                span.attr("changed", step_changed);
                if step_changed {
                    everest_telemetry::metrics().counter_inc(counter);
                }
                changed |= step_changed;
            }
            iter_span.attr("changed", changed);
            if !changed {
                break;
            }
            any = true;
        }
        Ok(any)
    }
}

/// Returns the scalar constant feeding `v` in `func`, if `v` is defined by an
/// `arith.constant` anywhere in the body.
pub fn constant_of(func: &Func, v: Value) -> Option<Attr> {
    let mut found = None;
    func.walk(&mut |op| {
        if op.name == "arith.constant" && op.results.first() == Some(&v) {
            found = op.attr("value").cloned();
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::ir::Op;
    use crate::types::Type;

    fn module_of(func: Func) -> Module {
        let mut m = Module::new("t");
        m.push(func);
        m
    }

    #[test]
    fn dce_removes_unused_pure_ops() {
        let mut fb = FuncBuilder::new("f", &[Type::F64], &[Type::F64]);
        let dead = fb.const_f(9.0, Type::F64);
        let _dead2 = fb.binary("arith.mulf", dead, dead, Type::F64);
        fb.ret(&[fb.arg(0)]);
        let mut m = module_of(fb.finish());
        assert!(Dce.run(&mut m).unwrap());
        assert_eq!(m.func("f").unwrap().op_count(), 1); // just the return
        m.verify().unwrap();
    }

    #[test]
    fn dce_keeps_impure_ops() {
        let mut fb = FuncBuilder::new("f", &[], &[]);
        let v = fb.const_f(1.0, Type::F64);
        let mut sink = Op::new("df.sink").with_attr("kind", "out");
        sink.operands = vec![v];
        fb.push_op(sink);
        fb.ret(&[]);
        let mut m = module_of(fb.finish());
        Dce.run(&mut m).unwrap();
        assert_eq!(m.func("f").unwrap().op_count(), 3);
    }

    #[test]
    fn cse_deduplicates_identical_pure_ops() {
        let mut fb = FuncBuilder::new("f", &[Type::F64], &[Type::F64]);
        let a = fb.binary("arith.mulf", fb.arg(0), fb.arg(0), Type::F64);
        let b = fb.binary("arith.mulf", fb.arg(0), fb.arg(0), Type::F64);
        let s = fb.binary("arith.addf", a, b, Type::F64);
        fb.ret(&[s]);
        let mut m = module_of(fb.finish());
        assert!(Cse.run(&mut m).unwrap());
        let f = m.func("f").unwrap();
        assert_eq!(f.op_count(), 3); // mulf, addf, return
        m.verify().unwrap();
        // The addf now uses the surviving mulf twice.
        let addf = f.body.entry().unwrap().ops.iter().find(|o| o.name == "arith.addf").unwrap();
        assert_eq!(addf.operands[0], addf.operands[1]);
    }

    #[test]
    fn cse_respects_attrs() {
        let mut fb = FuncBuilder::new("f", &[], &[Type::F64, Type::F64]);
        let a = fb.const_f(1.0, Type::F64);
        let b = fb.const_f(2.0, Type::F64);
        fb.ret(&[a, b]);
        let mut m = module_of(fb.finish());
        assert!(!Cse.run(&mut m).unwrap());
        assert_eq!(m.func("f").unwrap().op_count(), 3);
    }

    #[test]
    fn fold_evaluates_constant_arith() {
        let mut fb = FuncBuilder::new("f", &[], &[Type::F64]);
        let a = fb.const_f(3.0, Type::F64);
        let b = fb.const_f(4.0, Type::F64);
        let p = fb.binary("arith.mulf", a, b, Type::F64);
        let q = fb.unary("arith.sqrtf", p, Type::F64);
        fb.ret(&[q]);
        let mut m = module_of(fb.finish());
        assert!(Fold.run(&mut m).unwrap());
        let f = m.func("f").unwrap();
        let ret = f.body.entry().unwrap().terminator().unwrap();
        let final_const = constant_of(f, ret.operands[0]).unwrap();
        assert!((final_const.as_float().unwrap() - 12f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn fold_skips_division_by_zero() {
        let mut fb = FuncBuilder::new("f", &[], &[Type::I64]);
        let a = fb.const_i(3, Type::I64);
        let b = fb.const_i(0, Type::I64);
        let d = fb.binary("arith.divi", a, b, Type::I64);
        fb.ret(&[d]);
        let mut m = module_of(fb.finish());
        assert!(!Fold.run(&mut m).unwrap());
    }

    #[test]
    fn canonicalize_reaches_fixed_point() {
        let mut fb = FuncBuilder::new("f", &[], &[Type::F64]);
        let a = fb.const_f(2.0, Type::F64);
        let b = fb.const_f(2.0, Type::F64);
        let c = fb.binary("arith.addf", a, b, Type::F64);
        let d = fb.binary("arith.mulf", c, c, Type::F64);
        let _dead = fb.binary("arith.subf", d, c, Type::F64);
        fb.ret(&[d]);
        let mut m = module_of(fb.finish());
        PassManager::standard().run(&mut m).unwrap();
        let f = m.func("f").unwrap();
        // Everything collapses to a single constant + return.
        assert_eq!(f.op_count(), 2);
        let ret = f.body.entry().unwrap().terminator().unwrap();
        assert_eq!(constant_of(f, ret.operands[0]).unwrap().as_float(), Some(16.0));
        m.verify().unwrap();
    }

    #[test]
    fn fold_inside_loop_bodies() {
        let mut fb = FuncBuilder::new("f", &[], &[Type::F64]);
        let init = fb.const_f(0.0, Type::F64);
        let out = fb.for_loop(0, 4, 1, &[init], |fb, _iv, c| {
            let two = fb.const_f(2.0, Type::F64);
            let three = fb.const_f(3.0, Type::F64);
            let six = fb.binary("arith.mulf", two, three, Type::F64);
            vec![fb.binary("arith.addf", c[0], six, Type::F64)]
        });
        fb.ret(&[out[0]]);
        let mut m = module_of(fb.finish());
        PassManager::standard().run(&mut m).unwrap();
        m.verify().unwrap();
        // The 2*3 inside the loop folds to 6.
        let mut has_six = false;
        m.func("f").unwrap().walk(&mut |op| {
            if op.name == "arith.constant" && op.attr("value").and_then(Attr::as_float) == Some(6.0)
            {
                has_six = true;
            }
        });
        assert!(has_six);
    }

    #[test]
    fn pass_manager_debug_lists_passes() {
        let mut pm = PassManager::new();
        pm.add(Dce).add(Cse);
        assert_eq!(format!("{pm:?}"), "PassManager { passes: [\"dce\", \"cse\"] }");
    }
}
