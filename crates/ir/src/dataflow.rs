//! A generic lattice-based dataflow fixpoint engine.
//!
//! Analyses implement [`Analysis`]: a join-semilattice state ([`Lattice`]),
//! a [`Direction`], and a monotone per-op transfer function. The engine
//! runs a block-level worklist over each region's control-flow graph
//! (`cf.br`/`cf.cond_br` edges), iterates structured nested regions
//! (`loop.for` bodies, `df.graph` graphs) to a local fixpoint through the
//! exit→entry back edge, and finally replays the converged solution in
//! program order, reporting the state *entering* every op (in the analysis
//! direction) so lints can inspect per-op facts.
//!
//! The worklist order is a parameter ([`analyze_ordered`]); for monotone
//! transfer functions the fixpoint is order-independent, which the property
//! tests exercise by shuffling the order. Safety caps bound the iteration
//! count so even a non-monotone (buggy) analysis terminates.

use crate::attr::Attr;
use crate::ir::{Block, BlockId, Func, Op, Region};
use std::collections::{BTreeMap, BTreeSet};

/// A join-semilattice: `bottom` is the least element, `join` computes the
/// least upper bound in place and reports whether anything changed.
pub trait Lattice: Clone + PartialEq {
    /// The least element (the solver's initial state everywhere).
    fn bottom() -> Self;
    /// In-place least upper bound; returns `true` if `self` grew.
    fn join(&mut self, other: &Self) -> bool;
}

/// Set lattice: union, ordered by inclusion.
impl<T: Ord + Clone> Lattice for BTreeSet<T> {
    fn bottom() -> Self {
        BTreeSet::new()
    }

    fn join(&mut self, other: &Self) -> bool {
        let before = self.len();
        for item in other {
            if !self.contains(item) {
                self.insert(item.clone());
            }
        }
        self.len() != before
    }
}

/// Map lattice: pointwise join, missing keys are bottom.
impl<K: Ord + Clone, V: Lattice> Lattice for BTreeMap<K, V> {
    fn bottom() -> Self {
        BTreeMap::new()
    }

    fn join(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for (k, v) in other {
            match self.get_mut(k) {
                Some(mine) => changed |= mine.join(v),
                None => {
                    self.insert(k.clone(), v.clone());
                    changed = true;
                }
            }
        }
        changed
    }
}

/// A signed-integer interval `[lo, hi]` with an explicit empty (bottom)
/// element; join is the convex hull. `i64::MIN`/`i64::MAX` bounds mean
/// "unbounded" on that side, so [`Interval::TOP`] is `[MIN, MAX]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound (`lo > hi` encodes the empty interval).
    pub hi: i64,
}

impl Interval {
    /// The empty interval (bottom).
    pub const BOTTOM: Interval = Interval { lo: i64::MAX, hi: i64::MIN };
    /// The full range (top).
    pub const TOP: Interval = Interval { lo: i64::MIN, hi: i64::MAX };

    /// The singleton interval `[c, c]`.
    pub fn point(c: i64) -> Interval {
        Interval { lo: c, hi: c }
    }

    /// The interval `[lo, hi]` (empty when `lo > hi`).
    pub fn range(lo: i64, hi: i64) -> Interval {
        if lo > hi {
            Interval::BOTTOM
        } else {
            Interval { lo, hi }
        }
    }

    /// `true` for the empty interval.
    pub fn is_bottom(&self) -> bool {
        self.lo > self.hi
    }

    /// `true` when both bounds are finite (neither sentinel), i.e. the
    /// analysis actually knows a range.
    pub fn is_bounded(&self) -> bool {
        !self.is_bottom() && self.lo > i64::MIN && self.hi < i64::MAX
    }

    /// `true` if `v` lies in the interval.
    pub fn contains(&self, v: i64) -> bool {
        !self.is_bottom() && self.lo <= v && v <= self.hi
    }

    fn binop(a: Interval, b: Interval, f: impl Fn(i128, i128) -> i128) -> Interval {
        if a.is_bottom() || b.is_bottom() {
            return Interval::BOTTOM;
        }
        if !a.is_bounded() || !b.is_bounded() {
            return Interval::TOP;
        }
        let corners = [
            f(a.lo as i128, b.lo as i128),
            f(a.lo as i128, b.hi as i128),
            f(a.hi as i128, b.lo as i128),
            f(a.hi as i128, b.hi as i128),
        ];
        let clamp = |v: i128| v.clamp(i64::MIN as i128, i64::MAX as i128) as i64;
        Interval {
            lo: clamp(*corners.iter().min().expect("four corners")),
            hi: clamp(*corners.iter().max().expect("four corners")),
        }
    }
}

impl std::ops::Add for Interval {
    type Output = Interval;

    /// Interval addition.
    fn add(self, rhs: Interval) -> Interval {
        Interval::binop(self, rhs, |x, y| x + y)
    }
}

impl std::ops::Sub for Interval {
    type Output = Interval;

    /// Interval subtraction.
    fn sub(self, rhs: Interval) -> Interval {
        Interval::binop(self, rhs, |x, y| x - y)
    }
}

impl std::ops::Mul for Interval {
    type Output = Interval;

    /// Interval multiplication.
    fn mul(self, rhs: Interval) -> Interval {
        Interval::binop(self, rhs, |x, y| x * y)
    }
}

impl Lattice for Interval {
    fn bottom() -> Self {
        Interval::BOTTOM
    }

    fn join(&mut self, other: &Self) -> bool {
        if other.is_bottom() {
            return false;
        }
        if self.is_bottom() {
            *self = *other;
            return true;
        }
        let joined = Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) };
        let changed = joined != *self;
        *self = joined;
        changed
    }
}

/// Which way facts flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from the function entry toward the exits.
    Forward,
    /// Facts flow from the exits toward the entry.
    Backward,
}

/// A dataflow analysis: state lattice, direction and transfer functions.
///
/// `transfer` must be monotone in the state for the fixpoint to be
/// order-independent (the engine still terminates otherwise, thanks to the
/// iteration caps, but the result may depend on the worklist order).
pub trait Analysis {
    /// The abstract state tracked at every program point.
    type State: Lattice;

    /// The direction facts flow.
    fn direction(&self) -> Direction;

    /// The state at the boundary (function entry for forward analyses,
    /// function exit for backward ones). Defaults to bottom.
    fn boundary(&self, _func: &Func) -> Self::State {
        Self::State::bottom()
    }

    /// Applies one op to the state. For forward analyses the state holds
    /// the facts *before* the op and must be updated to the facts after it;
    /// for backward analyses it is the other way around.
    fn transfer(&self, func: &Func, op: &Op, state: &mut Self::State);

    /// Called when control enters a nested region of `op` (e.g. to bind a
    /// `loop.for` induction variable or widen loop-carried block args).
    fn enter_region(
        &self,
        _func: &Func,
        _op: &Op,
        _region_index: usize,
        _entry: &Block,
        _state: &mut Self::State,
    ) {
    }

    /// Called after a nested region of `op` reached its fixpoint, with the
    /// region's exit state, so analyses can map region-terminator operands
    /// onto the op's results (e.g. `loop.yield` values onto `loop.for`
    /// results). The exit state has already been joined into `state`.
    fn exit_region(
        &self,
        _func: &Func,
        _op: &Op,
        _region_index: usize,
        _exit: &Self::State,
        _state: &mut Self::State,
    ) {
    }
}

/// Where a recorded program point sits, as a stable human-readable path
/// (`"^bb0 op 3"`, nested: `"^bb0 op 1 / ^bb1 op 0"`). The same format the
/// verifier uses in its error context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// The innermost block.
    pub block: BlockId,
    /// Index of the op within that block.
    pub op_index: usize,
    /// Full nested path.
    pub path: String,
}

/// One entry of the converged solution: the op, its location, and the state
/// entering it in the analysis direction (pre-state for forward analyses,
/// post-state for backward ones).
pub type SolvedOp<'f, S> = (Site, &'f Op, S);

/// Safety cap on back-edge iterations of one structured region.
const MAX_REGION_PASSES: usize = 64;
/// Safety cap on worklist pops, as a multiple of the block count.
const MAX_POPS_PER_BLOCK: usize = 128;

/// Runs `analysis` over `func` to a fixpoint and returns the per-op
/// incoming states in deterministic program order (reverse program order
/// for backward analyses).
pub fn analyze<'f, A: Analysis>(func: &'f Func, analysis: &A) -> Vec<SolvedOp<'f, A::State>> {
    let order: Vec<usize> = (0..func.body.blocks.len()).collect();
    analyze_ordered(func, analysis, &order)
}

/// Like [`analyze`], but seeds the top-level worklist in the given block
/// order (a permutation of `0..blocks.len()`). Monotone analyses converge
/// to the same solution for every order — the property the tests check.
pub fn analyze_ordered<'f, A: Analysis>(
    func: &'f Func,
    analysis: &A,
    order: &[usize],
) -> Vec<SolvedOp<'f, A::State>> {
    let solver = Solver { func, analysis };
    let input = analysis.boundary(func);
    let (in_states, _exit) = solver.converge(&func.body, &input, order);
    let mut solution = Vec::new();
    for (bi, block) in solver.block_iter(&func.body) {
        let mut state = in_states[bi].clone();
        solver.flow_block(block, "", &mut state, &mut Some(&mut solution));
    }
    solution
}

struct Solver<'f, 'a, A: Analysis> {
    func: &'f Func,
    analysis: &'a A,
}

type Record<'s, 'f, S> = Option<&'s mut Vec<SolvedOp<'f, S>>>;

impl<'f, 'a, A: Analysis> Solver<'f, 'a, A> {
    fn forward(&self) -> bool {
        self.analysis.direction() == Direction::Forward
    }

    /// Blocks of `region` in processing order for the replay pass (layout
    /// order forward, reversed backward).
    fn block_iter<'r>(&self, region: &'r Region) -> Vec<(usize, &'r Block)> {
        let mut v: Vec<(usize, &'r Block)> = region.blocks.iter().enumerate().collect();
        if !self.forward() {
            v.reverse();
        }
        v
    }

    /// CFG successor indices of every block within `region`, resolved from
    /// the terminator's `dest`/`true_dest`/`false_dest` attributes (either
    /// an integer block id or a `"^bbN"` string).
    fn successors(&self, region: &Region) -> Vec<Vec<usize>> {
        let index_of: BTreeMap<u32, usize> =
            region.blocks.iter().enumerate().map(|(i, b)| (b.id.0, i)).collect();
        let resolve = |attr: &Attr| -> Option<usize> {
            let id = match attr {
                Attr::Int(n) => u32::try_from(*n).ok()?,
                Attr::Str(s) => s.strip_prefix("^bb")?.parse().ok()?,
                _ => return None,
            };
            index_of.get(&id).copied()
        };
        region
            .blocks
            .iter()
            .map(|block| {
                let mut succs = Vec::new();
                if let Some(term) = block.terminator() {
                    for key in ["dest", "true_dest", "false_dest"] {
                        if let Some(s) = term.attr(key).and_then(resolve) {
                            if !succs.contains(&s) {
                                succs.push(s);
                            }
                        }
                    }
                }
                succs
            })
            .collect()
    }

    /// Worklist fixpoint over one region's blocks starting from `input`.
    /// Returns the per-block incoming states (entry facts in the analysis
    /// direction) and the region's exit state.
    fn converge(
        &self,
        region: &Region,
        input: &A::State,
        order: &[usize],
    ) -> (Vec<A::State>, A::State) {
        let n = region.blocks.len();
        if n == 0 {
            return (Vec::new(), input.clone());
        }
        let succs = self.successors(region);
        // Edges along which state propagates, and the boundary blocks that
        // receive the region input.
        let (seeds, edges, terminals): (Vec<usize>, Vec<Vec<usize>>, Vec<usize>) = if self.forward()
        {
            let terminals: Vec<usize> = (0..n).filter(|b| succs[*b].is_empty()).collect();
            (vec![0], succs, terminals)
        } else {
            let mut preds = vec![Vec::new(); n];
            for (b, ss) in succs.iter().enumerate() {
                for s in ss {
                    preds[*s].push(b);
                }
            }
            let seeds: Vec<usize> = (0..n).filter(|b| succs[*b].is_empty()).collect();
            (seeds, preds, vec![0])
        };

        let mut in_states: Vec<A::State> = vec![A::State::bottom(); n];
        for s in &seeds {
            in_states[*s].join(input);
        }
        let mut out_states: Vec<A::State> = vec![A::State::bottom(); n];
        // Every block is processed at least once; the pop order follows
        // `order` (a stack seeded in reverse so order[0] pops first).
        let mut worklist: Vec<usize> = order.iter().rev().copied().collect();
        let mut queued = vec![true; n];
        let mut pops = 0usize;
        while let Some(b) = worklist.pop() {
            queued[b] = false;
            pops += 1;
            if pops > n * MAX_POPS_PER_BLOCK {
                break; // safety cap for non-monotone transfers
            }
            let mut state = in_states[b].clone();
            self.flow_block(&region.blocks[b], "", &mut state, &mut None);
            out_states[b] = state;
            for succ in &edges[b] {
                if in_states[*succ].join(&out_states[b]) && !queued[*succ] {
                    queued[*succ] = true;
                    worklist.push(*succ);
                }
            }
        }

        let mut exit = A::State::bottom();
        for t in terminals {
            exit.join(&out_states[t]);
        }
        (in_states, exit)
    }

    /// Applies every op of `block` to `state` in the analysis direction,
    /// recursing into nested regions. When `record` is set, pushes the
    /// incoming state of every op onto the solution.
    fn flow_block(
        &self,
        block: &'f Block,
        prefix: &str,
        state: &mut A::State,
        record: &mut Record<'_, 'f, A::State>,
    ) {
        let indices: Vec<usize> = if self.forward() {
            (0..block.ops.len()).collect()
        } else {
            (0..block.ops.len()).rev().collect()
        };
        for i in indices {
            let op = &block.ops[i];
            let path = format!("{prefix}^bb{} op {i}", block.id.0);
            if let Some(rec) = record.as_deref_mut() {
                rec.push((
                    Site { block: block.id, op_index: i, path: path.clone() },
                    op,
                    state.clone(),
                ));
            }
            for (ri, nested) in op.regions.iter().enumerate() {
                self.flow_nested_region(op, ri, nested, &format!("{path} / "), state, record);
            }
            self.analysis.transfer(self.func, op, state);
        }
    }

    /// Runs a structured nested region to its local fixpoint: the region
    /// input is the current state (plus the `enter_region` hook), and the
    /// exit state feeds back into the input until it stabilizes (bounded),
    /// modelling repeated execution of loop bodies. The final exit state is
    /// joined into the surrounding state.
    fn flow_nested_region(
        &self,
        op: &'f Op,
        region_index: usize,
        region: &'f Region,
        prefix: &str,
        state: &mut A::State,
        record: &mut Record<'_, 'f, A::State>,
    ) {
        if region.blocks.is_empty() {
            return;
        }
        let order: Vec<usize> = (0..region.blocks.len()).collect();
        let enter = |input: &mut A::State| {
            if let Some(entry) = region.entry() {
                self.analysis.enter_region(self.func, op, region_index, entry, input);
            }
        };
        let mut input = state.clone();
        enter(&mut input);
        let mut exit = A::State::bottom();
        for _ in 0..MAX_REGION_PASSES {
            let (_, pass_exit) = self.converge(region, &input, &order);
            exit = pass_exit;
            // Back edge: the next iteration starts from the previous
            // iteration's exit facts (re-applying the entry hook so bound
            // block args stay bound).
            let mut next = input.clone();
            let mut feedback = exit.clone();
            enter(&mut feedback);
            if !next.join(&feedback) {
                break;
            }
            input = next;
        }
        if record.is_some() {
            let (in_states, _) = self.converge(region, &input, &order);
            for (bi, nested_block) in self.block_iter(region) {
                let mut s = in_states[bi].clone();
                self.flow_block(nested_block, prefix, &mut s, record);
            }
        }
        state.join(&exit);
        self.analysis.exit_region(self.func, op, region_index, &exit, state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::ir::Value;
    use crate::types::Type;

    /// Forward "reaching ops" analysis: collects the names of ops seen on
    /// some path to the program point.
    struct SeenOps;

    impl Analysis for SeenOps {
        type State = BTreeSet<String>;

        fn direction(&self) -> Direction {
            Direction::Forward
        }

        fn transfer(&self, _func: &Func, op: &Op, state: &mut Self::State) {
            state.insert(op.name.clone());
        }
    }

    #[test]
    fn interval_lattice_behaves() {
        let mut a = Interval::point(3);
        assert!(a.join(&Interval::point(7)));
        assert_eq!(a, Interval::range(3, 7));
        assert!(!a.join(&Interval::point(5)));
        assert!(a.contains(5));
        assert!(Interval::BOTTOM.is_bottom());
        assert!(!Interval::TOP.is_bounded());
        assert_eq!(Interval::range(0, 3) + Interval::point(2), Interval::range(2, 5));
        assert_eq!(Interval::range(-2, 3) * Interval::point(-4), Interval::range(-12, 8));
        assert_eq!(Interval::TOP + Interval::point(1), Interval::TOP);
        assert!((Interval::BOTTOM - Interval::point(1)).is_bottom());
    }

    #[test]
    fn map_lattice_joins_pointwise() {
        let mut a: BTreeMap<Value, Interval> = BTreeMap::new();
        a.insert(Value(0), Interval::point(1));
        let mut b = BTreeMap::new();
        b.insert(Value(0), Interval::point(4));
        b.insert(Value(1), Interval::point(9));
        assert!(a.join(&b));
        assert_eq!(a[&Value(0)], Interval::range(1, 4));
        assert_eq!(a[&Value(1)], Interval::point(9));
        assert!(!a.join(&b));
    }

    #[test]
    fn forward_analysis_sees_ops_in_program_order() {
        let mut fb = FuncBuilder::new("f", &[Type::F64], &[Type::F64]);
        let x = fb.unary("arith.negf", fb.arg(0), Type::F64);
        fb.ret(&[x]);
        let func = fb.finish();
        let solution = analyze(&func, &SeenOps);
        assert_eq!(solution.len(), 2);
        // Before the negf nothing has executed; before the return it has.
        assert!(solution[0].2.is_empty());
        assert_eq!(solution[0].0.path, "^bb0 op 0");
        assert!(solution[1].2.contains("arith.negf"));
    }

    #[test]
    fn loop_regions_reach_ops_and_feed_back() {
        let mut fb = FuncBuilder::new("f", &[], &[Type::F64]);
        let init = fb.const_f(0.0, Type::F64);
        let out = fb.for_loop(0, 4, 1, &[init], |fb, _iv, c| {
            let k = fb.const_f(1.0, Type::F64);
            vec![fb.binary("arith.addf", c[0], k, Type::F64)]
        });
        fb.ret(&[out[0]]);
        let func = fb.finish();
        let solution = analyze(&func, &SeenOps);
        // Ops inside the loop body are recorded with nested paths.
        let nested: Vec<&str> = solution
            .iter()
            .filter(|(s, ..)| s.path.contains(" / "))
            .map(|(s, ..)| s.path.as_str())
            .collect();
        assert!(nested.iter().all(|p| p.starts_with("^bb0 op 1 / ^bb1")), "{nested:?}");
        // The loop body sees its own ops through the back edge.
        let (_, _, body_state) =
            solution.iter().find(|(_, op, _)| op.name == "arith.addf").expect("addf recorded");
        assert!(body_state.contains("arith.constant"));
        // After the loop, the return sees the body's ops.
        let (_, _, ret_state) =
            solution.iter().find(|(_, op, _)| op.name == "func.return").expect("return recorded");
        assert!(ret_state.contains("arith.addf"));
        assert!(ret_state.contains("loop.for"));
    }

    #[test]
    fn backward_direction_reverses_flow() {
        /// Backward analysis collecting op names seen on some path to exit.
        struct SeenBelow;
        impl Analysis for SeenBelow {
            type State = BTreeSet<String>;
            fn direction(&self) -> Direction {
                Direction::Backward
            }
            fn transfer(&self, _func: &Func, op: &Op, state: &mut Self::State) {
                state.insert(op.name.clone());
            }
        }
        let mut fb = FuncBuilder::new("f", &[Type::F64], &[Type::F64]);
        let x = fb.unary("arith.negf", fb.arg(0), Type::F64);
        fb.ret(&[x]);
        let func = fb.finish();
        let solution = analyze(&func, &SeenBelow);
        // Backward: the negf's incoming state holds what executes after it.
        let (_, _, below) =
            solution.iter().find(|(_, op, _)| op.name == "arith.negf").expect("negf recorded");
        assert!(below.contains("func.return"));
        let (_, _, at_ret) =
            solution.iter().find(|(_, op, _)| op.name == "func.return").expect("ret recorded");
        assert!(at_ret.is_empty());
    }
}
