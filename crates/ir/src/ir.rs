//! Core IR data structures: modules, functions, regions, blocks, operations
//! and SSA values.

use crate::attr::Attr;
use crate::error::IrResult;
use crate::types::Type;
use std::collections::BTreeMap;
use std::fmt;

/// A function-scoped SSA value handle.
///
/// Values are created by [`Func::new_value`] and printed as `%N`. The type of
/// a value lives in the owning function's side table
/// ([`Func::value_type`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Value(pub u32);

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Identifier of a block within a function, printed as `^bbN`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "^bb{}", self.0)
    }
}

/// A generic operation record.
///
/// Every op is identified by its dotted `dialect.mnemonic` name. Structural
/// constraints (arity, result count, required attributes, traits such as
/// purity or being a terminator) come from the [registry](crate::registry).
#[derive(Debug, Clone, PartialEq)]
pub struct Op {
    /// Fully qualified name, e.g. `"arith.addf"`.
    pub name: String,
    /// SSA operands, in order.
    pub operands: Vec<Value>,
    /// SSA results, in order.
    pub results: Vec<Value>,
    /// Attribute dictionary (deterministically ordered).
    pub attrs: BTreeMap<String, Attr>,
    /// Nested regions (e.g. loop bodies, dataflow graphs).
    pub regions: Vec<Region>,
}

impl Op {
    /// Creates an op with the given name and no operands/results/attributes.
    pub fn new(name: impl Into<String>) -> Op {
        Op {
            name: name.into(),
            operands: Vec::new(),
            results: Vec::new(),
            attrs: BTreeMap::new(),
            regions: Vec::new(),
        }
    }

    /// The dialect prefix of the op name (`"arith"` for `"arith.addf"`).
    pub fn dialect(&self) -> &str {
        self.name.split('.').next().unwrap_or(&self.name)
    }

    /// Looks up an attribute by name.
    pub fn attr(&self, key: &str) -> Option<&Attr> {
        self.attrs.get(key)
    }

    /// Inserts or replaces an attribute, returning `self` for chaining.
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<Attr>) -> Op {
        self.attrs.insert(key.into(), value.into());
        self
    }

    /// The single result of this op.
    ///
    /// # Panics
    ///
    /// Panics if the op does not have exactly one result.
    pub fn result(&self) -> Value {
        assert_eq!(self.results.len(), 1, "op {} has {} results", self.name, self.results.len());
        self.results[0]
    }
}

/// A straight-line sequence of operations with block arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// This block's id, unique within its function.
    pub id: BlockId,
    /// Block arguments (the entry block's arguments are the function params).
    pub args: Vec<Value>,
    /// Operations in program order; the last op of a complete block is a
    /// terminator.
    pub ops: Vec<Op>,
}

impl Block {
    /// Creates an empty block.
    pub fn new(id: BlockId) -> Block {
        Block { id, args: Vec::new(), ops: Vec::new() }
    }

    /// The terminator op, if the block is non-empty.
    pub fn terminator(&self) -> Option<&Op> {
        self.ops.last()
    }
}

/// A list of blocks; the first block is the region entry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Region {
    /// Blocks in layout order; `blocks[0]` is the entry.
    pub blocks: Vec<Block>,
}

impl Region {
    /// Creates an empty region.
    pub fn new() -> Region {
        Region::default()
    }

    /// The entry block, if present.
    pub fn entry(&self) -> Option<&Block> {
        self.blocks.first()
    }

    /// Mutable access to the entry block, if present.
    pub fn entry_mut(&mut self) -> Option<&mut Block> {
        self.blocks.first_mut()
    }

    /// Visits every op in this region, depth-first, in program order.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Op)) {
        for block in &self.blocks {
            for op in &block.ops {
                f(op);
                for region in &op.regions {
                    region.walk(f);
                }
            }
        }
    }

    /// Counts all ops in the region, including nested ones.
    pub fn op_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }
}

/// A function: a named region with typed parameters and results.
#[derive(Debug, Clone, PartialEq)]
pub struct Func {
    /// Symbol name (printed as `@name`).
    pub name: String,
    /// Parameter types (types of the entry block arguments).
    pub params: Vec<Type>,
    /// Result types.
    pub results: Vec<Type>,
    /// Function-level attribute dictionary (e.g. HLS directives).
    pub attrs: BTreeMap<String, Attr>,
    /// The body region.
    pub body: Region,
    value_types: Vec<Type>,
}

impl Func {
    /// Creates a function whose entry block already carries one argument per
    /// parameter type.
    pub fn new(name: impl Into<String>, params: &[Type], results: &[Type]) -> Func {
        let mut func = Func {
            name: name.into(),
            params: params.to_vec(),
            results: results.to_vec(),
            attrs: BTreeMap::new(),
            body: Region::new(),
            value_types: Vec::new(),
        };
        let mut entry = Block::new(BlockId(0));
        for ty in params {
            let v = func.new_value(ty.clone());
            entry.args.push(v);
        }
        func.body.blocks.push(entry);
        func
    }

    /// Allocates a fresh SSA value of the given type.
    pub fn new_value(&mut self, ty: Type) -> Value {
        let v = Value(self.value_types.len() as u32);
        self.value_types.push(ty);
        v
    }

    /// The type of a value.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not allocated by this function.
    pub fn value_type(&self, v: Value) -> &Type {
        &self.value_types[v.0 as usize]
    }

    /// The number of SSA values allocated so far.
    pub fn num_values(&self) -> usize {
        self.value_types.len()
    }

    /// Replaces the recorded type of `v` (used by the parser, which learns
    /// result types only after the op's regions have been read).
    ///
    /// # Panics
    ///
    /// Panics if `v` was not allocated by this function.
    pub fn set_value_type(&mut self, v: Value, ty: Type) {
        self.value_types[v.0 as usize] = ty;
    }

    /// The `i`-th entry-block argument.
    ///
    /// # Panics
    ///
    /// Panics if the function has no entry block or `i` is out of range.
    pub fn arg(&self, i: usize) -> Value {
        self.body.entry().expect("function has an entry block").args[i]
    }

    /// Visits every op in the function body.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Op)) {
        self.body.walk(f);
    }

    /// Counts all ops in the body (nested regions included).
    pub fn op_count(&self) -> usize {
        self.body.op_count()
    }
}

/// A compilation unit: a named collection of functions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Module symbol name.
    pub name: String,
    funcs: Vec<Func>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module { name: name.into(), funcs: Vec::new() }
    }

    /// Appends a function.
    pub fn push(&mut self, func: Func) {
        self.funcs.push(func);
    }

    /// Looks up a function by symbol name.
    pub fn func(&self, name: &str) -> Option<&Func> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Mutable lookup of a function by symbol name.
    pub fn func_mut(&mut self, name: &str) -> Option<&mut Func> {
        self.funcs.iter_mut().find(|f| f.name == name)
    }

    /// Iterates over functions in definition order.
    pub fn iter(&self) -> std::slice::Iter<'_, Func> {
        self.funcs.iter()
    }

    /// Mutably iterates over functions.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, Func> {
        self.funcs.iter_mut()
    }

    /// Number of functions in the module.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// `true` if the module holds no functions.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// Verifies the whole module (see [`crate::verify`]).
    pub fn verify(&self) -> IrResult<()> {
        crate::verify::verify_module(self)
    }

    /// Renders the module in the canonical textual format
    /// (see [`crate::print`]).
    pub fn to_text(&self) -> String {
        crate::print::print_module(self)
    }
}

impl FromIterator<Func> for Module {
    fn from_iter<I: IntoIterator<Item = Func>>(iter: I) -> Module {
        Module { name: String::new(), funcs: iter.into_iter().collect() }
    }
}

impl Extend<Func> for Module {
    fn extend<I: IntoIterator<Item = Func>>(&mut self, iter: I) {
        self.funcs.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn func_entry_args_match_params() {
        let f = Func::new("f", &[Type::F32, Type::I64], &[Type::F32]);
        assert_eq!(f.body.entry().unwrap().args.len(), 2);
        assert_eq!(f.value_type(f.arg(0)), &Type::F32);
        assert_eq!(f.value_type(f.arg(1)), &Type::I64);
        assert_eq!(f.num_values(), 2);
    }

    #[test]
    fn op_builder_helpers() {
        let op = Op::new("arith.constant").with_attr("value", 4i64);
        assert_eq!(op.dialect(), "arith");
        assert_eq!(op.attr("value").and_then(Attr::as_int), Some(4));
        assert_eq!(op.attr("missing"), None);
    }

    #[test]
    #[should_panic(expected = "has 0 results")]
    fn result_panics_without_results() {
        Op::new("x.y").result();
    }

    #[test]
    fn module_lookup_and_iteration() {
        let mut m = Module::new("m");
        m.push(Func::new("a", &[], &[]));
        m.push(Func::new("b", &[], &[]));
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        assert!(m.func("a").is_some());
        assert!(m.func("c").is_none());
        let names: Vec<_> = m.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn region_walk_visits_nested_ops() {
        let mut f = Func::new("f", &[], &[]);
        let mut outer = Op::new("df.graph");
        let mut inner_region = Region::new();
        let mut inner_block = Block::new(BlockId(1));
        inner_block.ops.push(Op::new("df.task"));
        inner_block.ops.push(Op::new("df.task"));
        inner_region.blocks.push(inner_block);
        outer.regions.push(inner_region);
        f.body.entry_mut().unwrap().ops.push(outer);
        f.body.entry_mut().unwrap().ops.push(Op::new("func.return"));
        assert_eq!(f.op_count(), 4);
    }

    #[test]
    fn module_collect_from_iterator() {
        let m: Module = vec![Func::new("x", &[], &[])].into_iter().collect();
        assert_eq!(m.len(), 1);
    }
}
