//! Typed helper constructors for the non-builtin dialects.
//!
//! These functions build well-formed [`Op`]s for the `tensor`, `df`, `hls`
//! and `secure` dialects so frontends don't assemble op records by hand.

use crate::attr::Attr;
use crate::builder::FuncBuilder;
use crate::ir::{Op, Value};
use crate::types::Type;

/// Helpers for the `tensor` dialect: EVEREST's data-centric dense-algebra
/// abstraction (paper III-B).
pub mod tensor {
    use super::*;

    /// Emits `tensor.matmul` with the result shape inferred from the inputs.
    ///
    /// # Panics
    ///
    /// Panics if either input is not a rank-2 tensor.
    pub fn matmul(fb: &mut FuncBuilder, a: Value, b: Value) -> Value {
        let (m, elem) = match fb.value_type(a) {
            Type::Tensor { shape, elem } if shape.len() == 2 => (shape[0], (**elem).clone()),
            other => panic!("matmul lhs must be rank-2 tensor, got {other}"),
        };
        let n = match fb.value_type(b) {
            Type::Tensor { shape, .. } if shape.len() == 2 => shape[1],
            other => panic!("matmul rhs must be rank-2 tensor, got {other}"),
        };
        let mut op = Op::new("tensor.matmul");
        op.operands = vec![a, b];
        fb.op1(op, Type::tensor(elem, &[m, n]))
    }

    /// Emits an elementwise op (`tensor.add`/`sub`/`mul`).
    pub fn elementwise(fb: &mut FuncBuilder, name: &str, a: Value, b: Value) -> Value {
        let ty = fb.value_type(a).clone();
        let mut op = Op::new(name);
        op.operands = vec![a, b];
        fb.op1(op, ty)
    }

    /// Emits `tensor.transpose` with the given permutation.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of the input rank.
    pub fn transpose(fb: &mut FuncBuilder, a: Value, perm: &[usize]) -> Value {
        let (shape, elem) = match fb.value_type(a) {
            Type::Tensor { shape, elem } => (shape.clone(), (**elem).clone()),
            other => panic!("transpose input must be a tensor, got {other}"),
        };
        assert_eq!(perm.len(), shape.len(), "permutation rank mismatch");
        let mut sorted: Vec<usize> = perm.to_vec();
        sorted.sort_unstable();
        assert!(sorted.iter().enumerate().all(|(i, p)| i == *p), "not a permutation: {perm:?}");
        let new_shape: Vec<usize> = perm.iter().map(|p| shape[*p]).collect();
        let mut op = Op::new("tensor.transpose")
            .with_attr("perm", Attr::ints(&perm.iter().map(|p| *p as i64).collect::<Vec<_>>()));
        op.operands = vec![a];
        fb.op1(op, Type::tensor(elem, &new_shape))
    }

    /// Emits `tensor.reduce` over the given dimensions (`kind` in
    /// `{"sum", "max", "min", "mean"}`), producing a tensor with those
    /// dimensions removed.
    pub fn reduce(fb: &mut FuncBuilder, a: Value, dims: &[usize], kind: &str) -> Value {
        let (shape, elem) = match fb.value_type(a) {
            Type::Tensor { shape, elem } => (shape.clone(), (**elem).clone()),
            other => panic!("reduce input must be a tensor, got {other}"),
        };
        let keep: Vec<usize> = (0..shape.len()).filter(|d| !dims.contains(d)).collect();
        let new_shape: Vec<usize> = keep.iter().map(|d| shape[*d]).collect();
        let mut op = Op::new("tensor.reduce")
            .with_attr("dims", Attr::ints(&dims.iter().map(|d| *d as i64).collect::<Vec<_>>()))
            .with_attr("kind", kind);
        op.operands = vec![a];
        fb.op1(op, Type::tensor(elem, &new_shape))
    }

    /// Emits a 5-point (or generic odd-width) `tensor.stencil` with weights.
    pub fn stencil(fb: &mut FuncBuilder, a: Value, weights: &[f64]) -> Value {
        let ty = fb.value_type(a).clone();
        let mut op = Op::new("tensor.stencil")
            .with_attr("weights", Attr::Array(weights.iter().map(|w| Attr::Float(*w)).collect()));
        op.operands = vec![a];
        fb.op1(op, ty)
    }

    /// Emits `tensor.relu`.
    pub fn relu(fb: &mut FuncBuilder, a: Value) -> Value {
        let ty = fb.value_type(a).clone();
        let mut op = Op::new("tensor.relu");
        op.operands = vec![a];
        fb.op1(op, ty)
    }

    /// Emits `tensor.sigmoid`.
    pub fn sigmoid(fb: &mut FuncBuilder, a: Value) -> Value {
        let ty = fb.value_type(a).clone();
        let mut op = Op::new("tensor.sigmoid");
        op.operands = vec![a];
        fb.op1(op, ty)
    }

    /// Emits `tensor.fill` of the given shape and constant.
    pub fn fill(fb: &mut FuncBuilder, value: f64, elem: Type, shape: &[usize]) -> Value {
        let op = Op::new("tensor.fill").with_attr("value", value);
        fb.op1(op, Type::tensor(elem, shape))
    }
}

/// Helpers for the `df` dialect: workflow orchestration ops that lower to
/// HyperLoom-style task graphs (paper III-A).
pub mod df {
    use super::*;

    /// Emits a `df.task` node invoking `callee` on `inputs`.
    pub fn task(
        fb: &mut FuncBuilder,
        callee: &str,
        inputs: &[Value],
        result_types: &[Type],
    ) -> Vec<Value> {
        let mut op = Op::new("df.task").with_attr("callee", callee);
        op.operands = inputs.to_vec();
        fb.op(op, result_types)
    }

    /// Emits a `df.source` producing a stream/token of external data.
    pub fn source(fb: &mut FuncBuilder, kind: &str, ty: Type) -> Value {
        fb.op1(Op::new("df.source").with_attr("kind", kind), ty)
    }

    /// Emits a `df.sink` consuming final results.
    pub fn sink(fb: &mut FuncBuilder, kind: &str, values: &[Value]) {
        let mut op = Op::new("df.sink").with_attr("kind", kind);
        op.operands = values.to_vec();
        fb.push_op(op);
    }
}

/// Helpers for the `secure` dialect: data-protection annotations that the
/// backend turns into crypto calls and DIFT instrumentation (paper III-A).
pub mod secure {
    use super::*;

    /// Emits `secure.taint` labelling a value as sensitive.
    pub fn taint(fb: &mut FuncBuilder, v: Value, label: &str) -> Value {
        let ty = fb.value_type(v).clone();
        let mut op = Op::new("secure.taint").with_attr("label", label);
        op.operands = vec![v];
        fb.op1(op, ty)
    }

    /// Emits `secure.encrypt data, key`, producing ciphertext bytes.
    pub fn encrypt(fb: &mut FuncBuilder, data: Value, key: Value) -> Value {
        let n = fb.value_type(data).byte_size().unwrap_or(0);
        let mut op = Op::new("secure.encrypt");
        op.operands = vec![data, key];
        // GCM adds a 12-byte nonce and a 16-byte tag.
        fb.op1(op, Type::Bytes(n + 28))
    }

    /// Emits `secure.check` asserting a runtime policy over a value.
    pub fn check(fb: &mut FuncBuilder, v: Value, policy: &str) {
        let mut op = Op::new("secure.check").with_attr("policy", policy);
        op.operands = vec![v];
        fb.push_op(op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_func;

    #[test]
    fn matmul_infers_result_shape() {
        let a = Type::tensor(Type::F32, &[4, 8]);
        let b = Type::tensor(Type::F32, &[8, 3]);
        let mut fb = FuncBuilder::new("mm", &[a, b], &[Type::tensor(Type::F32, &[4, 3])]);
        let (a0, a1) = (fb.arg(0), fb.arg(1));
        let c = tensor::matmul(&mut fb, a0, a1);
        assert_eq!(fb.value_type(c), &Type::tensor(Type::F32, &[4, 3]));
        fb.ret(&[c]);
        verify_func(&fb.finish()).unwrap();
    }

    #[test]
    #[should_panic(expected = "rank-2")]
    fn matmul_rejects_rank1() {
        let a = Type::tensor(Type::F32, &[4]);
        let mut fb = FuncBuilder::new("mm", &[a.clone(), a], &[]);
        let (a0, a1) = (fb.arg(0), fb.arg(1));
        tensor::matmul(&mut fb, a0, a1);
    }

    #[test]
    fn transpose_permutes_shape() {
        let a = Type::tensor(Type::F64, &[2, 3, 5]);
        let mut fb = FuncBuilder::new("t", &[a], &[Type::tensor(Type::F64, &[5, 2, 3])]);
        let a0 = fb.arg(0);
        let r = tensor::transpose(&mut fb, a0, &[2, 0, 1]);
        assert_eq!(fb.value_type(r).shape(), Some(&[5, 2, 3][..]));
        fb.ret(&[r]);
        verify_func(&fb.finish()).unwrap();
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn transpose_rejects_bad_perm() {
        let a = Type::tensor(Type::F64, &[2, 3]);
        let mut fb = FuncBuilder::new("t", &[a], &[]);
        let a0 = fb.arg(0);
        tensor::transpose(&mut fb, a0, &[0, 0]);
    }

    #[test]
    fn reduce_removes_dims() {
        let a = Type::tensor(Type::F32, &[6, 7]);
        let mut fb = FuncBuilder::new("r", &[a], &[Type::tensor(Type::F32, &[6])]);
        let a0 = fb.arg(0);
        let r = tensor::reduce(&mut fb, a0, &[1], "sum");
        assert_eq!(fb.value_type(r).shape(), Some(&[6][..]));
        fb.ret(&[r]);
        verify_func(&fb.finish()).unwrap();
    }

    #[test]
    fn workflow_graph_builds_and_verifies() {
        let t = Type::tensor(Type::F32, &[16]);
        let mut fb = FuncBuilder::new("wf", &[], &[]);
        let src = df::source(&mut fb, "sensors", t.clone());
        let out = df::task(&mut fb, "clean", &[src], std::slice::from_ref(&t));
        let pred = df::task(&mut fb, "predict", &[out[0]], &[t]);
        df::sink(&mut fb, "dashboard", &[pred[0]]);
        fb.ret(&[]);
        verify_func(&fb.finish()).unwrap();
    }

    #[test]
    fn secure_ops_verify() {
        let data = Type::tensor(Type::F64, &[8]);
        let key = Type::Bytes(16);
        let mut fb = FuncBuilder::new("s", &[data, key], &[]);
        let a0 = fb.arg(0);
        let tainted = secure::taint(&mut fb, a0, "pii");
        let a1 = fb.arg(1);
        let ct = secure::encrypt(&mut fb, tainted, a1);
        assert_eq!(fb.value_type(ct), &Type::Bytes(8 * 8 + 28));
        secure::check(&mut fb, ct, "no-declassify");
        fb.ret(&[]);
        verify_func(&fb.finish()).unwrap();
    }
}
