//! Canonical textual form of the IR.
//!
//! The printer renumbers SSA values in print order, so the output of
//! [`print_module`] is a fixed point: parsing it back and printing again
//! yields byte-identical text. Grammar sketch (see [`crate::parse`] for the
//! reader):
//!
//! ```text
//! module @name {
//!   func @f(%0: f32, %1: f32) -> (f32) attrs {key = 1} {
//!     %2 = arith.addf %0, %1 : f32
//!     func.return %2
//!   }
//! }
//! ```
//!
//! Ops with nested regions print them in parentheses after the attribute
//! dictionary; every region block carries an explicit `^bbN(...)` header.

use crate::ir::{Block, Func, Module, Op, Region, Value};
use std::collections::HashMap;
use std::fmt::Write;

struct Printer<'f> {
    func: &'f Func,
    names: HashMap<Value, usize>,
    next: usize,
    out: String,
}

impl<'f> Printer<'f> {
    fn name(&mut self, v: Value) -> usize {
        if let Some(n) = self.names.get(&v) {
            return *n;
        }
        let n = self.next;
        self.next += 1;
        self.names.insert(v, n);
        n
    }

    fn indent(&mut self, depth: usize) {
        for _ in 0..depth {
            self.out.push_str("  ");
        }
    }

    fn print_op(&mut self, op: &Op, depth: usize) {
        self.indent(depth);
        if !op.results.is_empty() {
            let names: Vec<String> =
                op.results.iter().map(|r| format!("%{}", self.name(*r))).collect();
            write!(self.out, "{} = ", names.join(", ")).unwrap();
        }
        self.out.push_str(&op.name);
        if !op.operands.is_empty() {
            let names: Vec<String> =
                op.operands.iter().map(|o| format!("%{}", self.name(*o))).collect();
            write!(self.out, " {}", names.join(", ")).unwrap();
        }
        if !op.attrs.is_empty() {
            self.out.push_str(" {");
            for (i, (k, v)) in op.attrs.iter().enumerate() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                write!(self.out, "{k} = {v}").unwrap();
            }
            self.out.push('}');
        }
        if !op.regions.is_empty() {
            self.out.push_str(" (");
            for (i, region) in op.regions.iter().enumerate() {
                if i > 0 {
                    self.out.push_str(", ");
                }
                self.out.push_str("{\n");
                self.print_region(region, depth + 1);
                self.indent(depth);
                self.out.push('}');
            }
            self.out.push(')');
        }
        if !op.results.is_empty() {
            let types: Vec<String> =
                op.results.iter().map(|r| self.func.value_type(*r).to_string()).collect();
            write!(self.out, " : {}", types.join(", ")).unwrap();
        }
        self.out.push('\n');
    }

    fn print_region(&mut self, region: &Region, depth: usize) {
        for block in &region.blocks {
            self.print_block_header(block, depth);
            for op in &block.ops {
                self.print_op(op, depth + 1);
            }
        }
    }

    fn print_block_header(&mut self, block: &Block, depth: usize) {
        self.indent(depth);
        write!(self.out, "^bb{}(", block.id.0).unwrap();
        for (i, arg) in block.args.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            let n = self.name(*arg);
            write!(self.out, "%{}: {}", n, self.func.value_type(*arg)).unwrap();
        }
        self.out.push_str("):\n");
    }
}

/// Prints one function in canonical form at the given indentation depth.
pub fn print_func(func: &Func, depth: usize) -> String {
    let mut p = Printer { func, names: HashMap::new(), next: 0, out: String::new() };
    p.indent(depth);
    write!(p.out, "func @{}(", func.name).unwrap();
    if let Some(entry) = func.body.entry() {
        for (i, arg) in entry.args.iter().enumerate() {
            if i > 0 {
                p.out.push_str(", ");
            }
            let n = p.name(*arg);
            write!(p.out, "%{}: {}", n, func.value_type(*arg)).unwrap();
        }
    }
    p.out.push_str(") -> (");
    for (i, t) in func.results.iter().enumerate() {
        if i > 0 {
            p.out.push_str(", ");
        }
        write!(p.out, "{t}").unwrap();
    }
    p.out.push(')');
    if !func.attrs.is_empty() {
        p.out.push_str(" attrs {");
        for (i, (k, v)) in func.attrs.iter().enumerate() {
            if i > 0 {
                p.out.push_str(", ");
            }
            write!(p.out, "{k} = {v}").unwrap();
        }
        p.out.push('}');
    }
    p.out.push_str(" {\n");
    // The entry block body prints without a header; additional blocks get
    // explicit headers.
    for (i, block) in func.body.blocks.iter().enumerate() {
        if i > 0 {
            p.print_block_header(block, depth + 1);
        }
        for op in &block.ops {
            p.print_op(op, depth + 1);
        }
    }
    p.indent(depth);
    p.out.push_str("}\n");
    p.out
}

/// Prints a whole module in canonical form.
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    writeln!(out, "module @{} {{", module.name).unwrap();
    for func in module.iter() {
        out.push_str(&print_func(func, 1));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::types::Type;

    #[test]
    fn prints_simple_function() {
        let mut fb = FuncBuilder::new("add", &[Type::F32, Type::F32], &[Type::F32]);
        let s = fb.binary("arith.addf", fb.arg(0), fb.arg(1), Type::F32);
        fb.ret(&[s]);
        let mut m = Module::new("m");
        m.push(fb.finish());
        let text = m.to_text();
        assert!(text.contains("module @m {"));
        assert!(text.contains("func @add(%0: f32, %1: f32) -> (f32) {"));
        assert!(text.contains("%2 = arith.addf %0, %1 : f32"));
        assert!(text.contains("func.return %2"));
    }

    #[test]
    fn renumbers_in_print_order() {
        // Build a function where value allocation order differs from
        // definition order (loop results are allocated after body values).
        let mut fb = FuncBuilder::new("f", &[], &[Type::F64]);
        let init = fb.const_f(0.0, Type::F64);
        let out = fb.for_loop(0, 4, 1, &[init], |fb, _iv, c| {
            let k = fb.const_f(1.0, Type::F64);
            vec![fb.binary("arith.addf", c[0], k, Type::F64)]
        });
        fb.ret(&[out[0]]);
        let mut m = Module::new("m");
        m.push(fb.finish());
        let text = m.to_text();
        // loop.for results must be numbered before the region's contents.
        let loop_line = text.lines().find(|l| l.contains("loop.for")).unwrap();
        assert!(loop_line.trim_start().starts_with("%1 = loop.for %0"));
        assert!(text.contains("^bb1(%2: index, %3: f64):"));
    }

    #[test]
    fn attrs_print_deterministically() {
        let mut fb = FuncBuilder::new("f", &[], &[]);
        let op =
            crate::ir::Op::new("df.source").with_attr("kind", "sensor").with_attr("arity", 2i64);
        fb.op(op, &[Type::Token]);
        fb.ret(&[]);
        let mut m = Module::new("m");
        m.push(fb.finish());
        let text = m.to_text();
        // BTreeMap ordering: arity before kind.
        assert!(text.contains("df.source {arity = 2, kind = \"sensor\"}"));
    }
}
