//! IR structural and type verification.
//!
//! The verifier enforces, in order:
//!
//! 1. every op is registered and satisfies its [`OpSpec`] (arity, required
//!    attributes, region count, terminator placement);
//! 2. SSA form: every value has exactly one definition, and every use is
//!    dominated by its definition (program order, with nested regions
//!    inheriting the enclosing scope);
//! 3. per-op type rules for the builtin dialects (scalar arithmetic,
//!    memory, tensor algebra, returns and structured loops).

use crate::attr::Attr;
use crate::error::{IrError, IrResult};
use crate::ir::{Block, Func, Module, Op, Value};
use crate::registry::{self, OpSpec};
use crate::types::Type;
use std::collections::HashSet;

/// Verifies every function in `module`.
///
/// # Errors
///
/// Returns the first [`IrError`] encountered; the module is left untouched.
pub fn verify_module(module: &Module) -> IrResult<()> {
    let mut names = HashSet::new();
    for func in module.iter() {
        if !names.insert(func.name.as_str()) {
            return Err(IrError::Verify(format!("duplicate function symbol @{}", func.name)));
        }
    }
    for func in module.iter() {
        verify_func(func).map_err(|e| match e {
            IrError::Verify(msg) => IrError::Verify(format!("in @{}: {msg}", func.name)),
            other => other,
        })?;
    }
    Ok(())
}

/// Verifies a single function.
///
/// # Errors
///
/// Returns [`IrError::Verify`] or [`IrError::UnknownOp`] on the first
/// violation.
pub fn verify_func(func: &Func) -> IrResult<()> {
    let entry =
        func.body.entry().ok_or_else(|| IrError::Verify("function has no entry block".into()))?;
    if entry.args.len() != func.params.len() {
        return Err(IrError::Verify(format!(
            "entry block has {} args but function has {} params",
            entry.args.len(),
            func.params.len()
        )));
    }
    for (arg, param) in entry.args.iter().zip(&func.params) {
        if func.value_type(*arg) != param {
            return Err(IrError::Verify(format!(
                "entry arg {arg} type {} does not match param type {param}",
                func.value_type(*arg)
            )));
        }
    }

    let mut defined: HashSet<Value> = HashSet::new();
    let mut all_defs: HashSet<Value> = HashSet::new();
    for block in &func.body.blocks {
        verify_block(func, block, &mut defined, &mut all_defs)?;
    }
    Ok(())
}

fn define(
    v: Value,
    func: &Func,
    defined: &mut HashSet<Value>,
    all_defs: &mut HashSet<Value>,
) -> IrResult<()> {
    if v.0 as usize >= func.num_values() {
        return Err(IrError::Verify(format!("value {v} was never allocated")));
    }
    if !all_defs.insert(v) {
        return Err(IrError::Verify(format!("value {v} defined more than once")));
    }
    defined.insert(v);
    Ok(())
}

fn verify_block(
    func: &Func,
    block: &Block,
    defined: &mut HashSet<Value>,
    all_defs: &mut HashSet<Value>,
) -> IrResult<()> {
    for arg in &block.args {
        define(*arg, func, defined, all_defs)?;
    }
    if block.ops.is_empty() {
        return Err(IrError::Verify(format!("block {} is empty", block.id)));
    }
    for (i, op) in block.ops.iter().enumerate() {
        // Tag every op-local failure with its exact location, in the same
        // `^bbN op I` format the dataflow lints report, so verifier and
        // `everestc check` findings are directly comparable.
        let ctx = |e: IrError| match e {
            IrError::Verify(msg) => {
                IrError::Verify(format!("at {} op {i} ({}): {msg}", block.id, op.name))
            }
            other => other,
        };
        let spec = registry::lookup(&op.name).ok_or_else(|| IrError::UnknownOp(op.name.clone()))?;
        verify_op_shape(op, spec).map_err(ctx)?;
        let is_last = i + 1 == block.ops.len();
        if spec.terminator && !is_last {
            return Err(ctx(IrError::Verify(format!(
                "terminator {} is not last in block {}",
                op.name, block.id
            ))));
        }
        if is_last && !spec.terminator {
            return Err(ctx(IrError::Verify(format!(
                "block {} does not end with a terminator (ends with {})",
                block.id, op.name
            ))));
        }
        for operand in &op.operands {
            if !defined.contains(operand) {
                return Err(ctx(IrError::Verify(format!(
                    "operand {operand} of {} used before definition",
                    op.name
                ))));
            }
        }
        // Nested regions see everything defined so far (but their local
        // definitions must not leak back out except through op results).
        // Their errors carry their own inner location context.
        for region in &op.regions {
            let mut inner = defined.clone();
            for inner_block in &region.blocks {
                verify_block(func, inner_block, &mut inner, all_defs)?;
            }
        }
        for result in &op.results {
            define(*result, func, defined, all_defs).map_err(ctx)?;
        }
        verify_op_types(func, op).map_err(ctx)?;
    }
    Ok(())
}

fn verify_op_shape(op: &Op, spec: &OpSpec) -> IrResult<()> {
    if !spec.operands.admits(op.operands.len()) {
        return Err(IrError::Verify(format!(
            "{} expects operands {:?}, got {}",
            op.name,
            spec.operands,
            op.operands.len()
        )));
    }
    if !spec.results.admits(op.results.len()) {
        return Err(IrError::Verify(format!(
            "{} expects results {:?}, got {}",
            op.name,
            spec.results,
            op.results.len()
        )));
    }
    for key in spec.required_attrs {
        if !op.attrs.contains_key(*key) {
            return Err(IrError::Verify(format!("{} missing required attr '{key}'", op.name)));
        }
    }
    if op.regions.len() != spec.regions {
        return Err(IrError::Verify(format!(
            "{} expects {} regions, got {}",
            op.name,
            spec.regions,
            op.regions.len()
        )));
    }
    Ok(())
}

fn ty(func: &Func, v: Value) -> &Type {
    func.value_type(v)
}

fn verify_op_types(func: &Func, op: &Op) -> IrResult<()> {
    let err = |msg: String| Err(IrError::Verify(format!("{}: {msg}", op.name)));
    match op.name.as_str() {
        "arith.constant" => {
            let rt = ty(func, op.results[0]);
            match op.attrs.get("value") {
                Some(Attr::Int(_)) if rt.is_int() => Ok(()),
                Some(Attr::Float(_)) if rt.is_float() => Ok(()),
                Some(a) => err(format!("value attr {a} incompatible with result type {rt}")),
                None => unreachable!("required attr checked earlier"),
            }
        }
        "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf" | "arith.maxf" | "arith.minf" => {
            let (a, b, r) =
                (ty(func, op.operands[0]), ty(func, op.operands[1]), ty(func, op.results[0]));
            if a != b || a != r {
                return err(format!("operand/result types differ: {a}, {b} -> {r}"));
            }
            if !a.is_float() {
                return err(format!("float op on non-float type {a}"));
            }
            Ok(())
        }
        "arith.addi" | "arith.subi" | "arith.muli" | "arith.divi" | "arith.remi" => {
            let (a, b, r) =
                (ty(func, op.operands[0]), ty(func, op.operands[1]), ty(func, op.results[0]));
            if a != b || a != r {
                return err(format!("operand/result types differ: {a}, {b} -> {r}"));
            }
            if !a.is_int() {
                return err(format!("integer op on non-integer type {a}"));
            }
            Ok(())
        }
        "arith.cmpf" | "arith.cmpi" => {
            if ty(func, op.results[0]) != &Type::I1 {
                return err("comparison result must be i1".into());
            }
            Ok(())
        }
        "arith.select" => {
            if ty(func, op.operands[0]) != &Type::I1 {
                return err("select condition must be i1".into());
            }
            let (t, e, r) =
                (ty(func, op.operands[1]), ty(func, op.operands[2]), ty(func, op.results[0]));
            if t != e || t != r {
                return err("select branches/result types differ".into());
            }
            Ok(())
        }
        "mem.load" => {
            let buf = ty(func, op.operands[0]);
            match buf {
                Type::MemRef { elem, shape, .. } => {
                    if op.operands.len() - 1 != shape.len() {
                        return err(format!(
                            "{} indices for rank-{} memref",
                            op.operands.len() - 1,
                            shape.len()
                        ));
                    }
                    if ty(func, op.results[0]) != elem.as_ref() {
                        return err("load result type != element type".into());
                    }
                    Ok(())
                }
                other => err(format!("load from non-memref type {other}")),
            }
        }
        "mem.store" => {
            let buf = ty(func, op.operands[1]);
            match buf {
                Type::MemRef { elem, shape, .. } => {
                    if op.operands.len() - 2 != shape.len() {
                        return err(format!(
                            "{} indices for rank-{} memref",
                            op.operands.len() - 2,
                            shape.len()
                        ));
                    }
                    if ty(func, op.operands[0]) != elem.as_ref() {
                        return err("stored value type != element type".into());
                    }
                    Ok(())
                }
                other => err(format!("store into non-memref type {other}")),
            }
        }
        "tensor.matmul" => {
            let (a, b, r) =
                (ty(func, op.operands[0]), ty(func, op.operands[1]), ty(func, op.results[0]));
            match (a.shape(), b.shape(), r.shape()) {
                (Some([m, k1]), Some([k2, n]), Some([rm, rn])) => {
                    if k1 != k2 || m != rm || n != rn {
                        return err(format!("shape mismatch {a} x {b} -> {r}"));
                    }
                    Ok(())
                }
                _ => err("matmul requires rank-2 tensors".into()),
            }
        }
        "tensor.conv2d" => {
            let (x, k, r) =
                (ty(func, op.operands[0]), ty(func, op.operands[1]), ty(func, op.results[0]));
            match (x.shape(), k.shape()) {
                (Some([_, _]), Some([kh, kw])) => {
                    if kh % 2 == 0 || kw % 2 == 0 {
                        return err("conv2d kernel dims must be odd".into());
                    }
                    if x != r {
                        return err("conv2d result shape must match input".into());
                    }
                    Ok(())
                }
                _ => err("conv2d requires rank-2 tensors".into()),
            }
        }
        "tensor.add" | "tensor.sub" | "tensor.mul" => {
            let (a, b, r) =
                (ty(func, op.operands[0]), ty(func, op.operands[1]), ty(func, op.results[0]));
            if a != b || a != r {
                return err(format!("elementwise shape mismatch: {a}, {b} -> {r}"));
            }
            Ok(())
        }
        "tensor.scale" => {
            let (s, t, r) =
                (ty(func, op.operands[0]), ty(func, op.operands[1]), ty(func, op.results[0]));
            if !s.is_scalar() {
                return err("scale factor must be scalar".into());
            }
            if t != r {
                return err("scale result shape mismatch".into());
            }
            Ok(())
        }
        "func.return" => {
            if op.operands.len() != func.results.len() {
                return err(format!(
                    "returns {} values but function declares {}",
                    op.operands.len(),
                    func.results.len()
                ));
            }
            for (v, want) in op.operands.iter().zip(&func.results) {
                if ty(func, *v) != want {
                    return err(format!("return type {} != declared {want}", ty(func, *v)));
                }
            }
            Ok(())
        }
        "loop.for" => {
            if op.results.len() != op.operands.len() {
                return err("loop results must match loop-carried inits".into());
            }
            let body = op.regions[0]
                .entry()
                .ok_or_else(|| IrError::Verify("loop.for: empty body region".into()))?;
            if body.args.len() != 1 + op.operands.len() {
                return err("loop body must take induction var + carried args".into());
            }
            if ty(func, body.args[0]) != &Type::Index {
                return err("loop induction variable must be index".into());
            }
            match body.terminator() {
                Some(t) if t.name == "loop.yield" => {
                    if t.operands.len() != op.operands.len() {
                        return err("loop.yield count != carried count".into());
                    }
                    Ok(())
                }
                _ => err("loop body must end with loop.yield".into()),
            }
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::ir::Op as IrOp;

    fn simple_func() -> Func {
        let mut fb = FuncBuilder::new("f", &[Type::F32, Type::F32], &[Type::F32]);
        let s = fb.binary("arith.addf", fb.arg(0), fb.arg(1), Type::F32);
        fb.ret(&[s]);
        fb.finish()
    }

    #[test]
    fn valid_function_verifies() {
        assert!(verify_func(&simple_func()).is_ok());
    }

    #[test]
    fn duplicate_symbols_rejected() {
        let mut m = Module::new("m");
        m.push(simple_func());
        m.push(simple_func());
        let err = verify_module(&m).unwrap_err();
        assert!(err.to_string().contains("duplicate function symbol"));
    }

    #[test]
    fn use_before_def_rejected() {
        let mut f = Func::new("f", &[], &[]);
        let ghost = f.new_value(Type::F32);
        let ghost2 = f.new_value(Type::F32);
        let mut op = IrOp::new("arith.negf");
        op.operands = vec![ghost];
        op.results = vec![ghost2];
        let entry = f.body.entry_mut().unwrap();
        entry.ops.push(op);
        entry.ops.push(IrOp::new("func.return"));
        let err = verify_func(&f).unwrap_err();
        assert!(err.to_string().contains("used before definition"));
    }

    #[test]
    fn unknown_op_rejected() {
        let mut f = Func::new("f", &[], &[]);
        f.body.entry_mut().unwrap().ops.push(IrOp::new("alien.op"));
        assert_eq!(verify_func(&f).unwrap_err(), IrError::UnknownOp("alien.op".into()));
    }

    #[test]
    fn missing_terminator_rejected() {
        let mut fb = FuncBuilder::new("f", &[], &[]);
        fb.const_f(1.0, Type::F64);
        let f = fb.finish();
        let err = verify_func(&f).unwrap_err();
        assert!(err.to_string().contains("does not end with a terminator"));
    }

    #[test]
    fn mixed_float_types_rejected() {
        let mut fb = FuncBuilder::new("f", &[Type::F32, Type::F64], &[Type::F32]);
        let s = fb.binary("arith.addf", fb.arg(0), fb.arg(1), Type::F32);
        fb.ret(&[s]);
        let err = verify_func(&fb.finish()).unwrap_err();
        assert!(err.to_string().contains("types differ"));
    }

    #[test]
    fn matmul_shape_mismatch_rejected() {
        let a = Type::tensor(Type::F32, &[4, 8]);
        let b = Type::tensor(Type::F32, &[9, 3]);
        let c = Type::tensor(Type::F32, &[4, 3]);
        let mut fb = FuncBuilder::new("f", &[a, b], std::slice::from_ref(&c));
        let r = fb.binary("tensor.matmul", fb.arg(0), fb.arg(1), c);
        fb.ret(&[r]);
        let err = verify_func(&fb.finish()).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"));
    }

    #[test]
    fn return_arity_mismatch_rejected() {
        let mut fb = FuncBuilder::new("f", &[], &[Type::F64]);
        fb.ret(&[]);
        let err = verify_func(&fb.finish()).unwrap_err();
        assert!(err.to_string().contains("declares"));
    }

    #[test]
    fn constant_type_attr_mismatch_rejected() {
        let mut fb = FuncBuilder::new("f", &[], &[]);
        // Float payload with integer result type.
        fb.const_f(1.5, Type::I32);
        fb.ret(&[]);
        let err = verify_func(&fb.finish()).unwrap_err();
        assert!(err.to_string().contains("incompatible"));
    }

    #[test]
    fn loop_structure_verified() {
        let mut fb = FuncBuilder::new("f", &[], &[Type::F64]);
        let init = fb.const_f(0.0, Type::F64);
        let out = fb.for_loop(0, 8, 2, &[init], |fb, _iv, c| {
            let k = fb.const_f(3.0, Type::F64);
            vec![fb.binary("arith.addf", c[0], k, Type::F64)]
        });
        fb.ret(&[out[0]]);
        assert!(verify_func(&fb.finish()).is_ok());
    }

    #[test]
    fn errors_carry_block_and_op_index() {
        let mut fb = FuncBuilder::new("f", &[Type::F32, Type::F64], &[Type::F32]);
        let s = fb.binary("arith.addf", fb.arg(0), fb.arg(1), Type::F32);
        fb.ret(&[s]);
        let err = verify_func(&fb.finish()).unwrap_err();
        assert!(err.to_string().contains("at ^bb0 op 0 (arith.addf):"), "{err}");
        let mut m = Module::new("m");
        let mut fb = FuncBuilder::new("g", &[], &[Type::F64]);
        fb.ret(&[]);
        m.push(fb.finish());
        let err = verify_module(&m).unwrap_err();
        assert!(err.to_string().contains("in @g: at ^bb0 op 0 (func.return):"), "{err}");
    }

    #[test]
    fn load_rank_mismatch_rejected() {
        use crate::types::MemSpace;
        let buf = Type::memref(Type::F32, &[4, 4], MemSpace::Host);
        let mut fb = FuncBuilder::new("f", &[buf], &[]);
        let i = fb.const_i(0, Type::Index);
        fb.load(fb.arg(0), &[i], Type::F32); // rank-2 memref, one index
        fb.ret(&[]);
        let err = verify_func(&fb.finish()).unwrap_err();
        assert!(err.to_string().contains("rank-2"));
    }
}
