//! The EVEREST IR type system.
//!
//! Types are small, cheaply clonable values. Besides scalar types the IR
//! models the two data-centric abstractions the paper singles out —
//! *tensors* (dense multi-dimensional arrays) and *particles* (bags of
//! structured records) — plus `memref`-like buffers annotated with a memory
//! space, and stream/token types used by the dataflow dialect.

use std::fmt;

/// Memory spaces a buffer may live in on the EVEREST target (paper Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum MemSpace {
    /// Host DRAM attached to the CPU.
    #[default]
    Host,
    /// Device DRAM local to an FPGA card.
    Device,
    /// On-chip BRAM/URAM scratchpad inside the FPGA fabric.
    Scratchpad,
    /// Remote memory reachable over the network (disaggregated node).
    Remote,
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemSpace::Host => "host",
            MemSpace::Device => "device",
            MemSpace::Scratchpad => "scratch",
            MemSpace::Remote => "remote",
        };
        f.write_str(s)
    }
}

/// A type in the EVEREST IR.
///
/// ```
/// use everest_ir::Type;
/// let t = Type::tensor(Type::F32, &[32, 32]);
/// assert_eq!(t.to_string(), "tensor<32x32xf32>");
/// assert_eq!(t.num_elements(), Some(1024));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// 1-bit boolean.
    I1,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE float.
    F64,
    /// Platform-sized index (loop counters, extents).
    Index,
    /// Dense tensor with static shape.
    Tensor { elem: Box<Type>, shape: Vec<usize> },
    /// Buffer reference in a specific memory space.
    MemRef { elem: Box<Type>, shape: Vec<usize>, space: MemSpace },
    /// Unbounded stream of elements (dataflow channels).
    Stream(Box<Type>),
    /// Control token carrying no data (dataflow ordering edges).
    Token,
    /// Opaque byte string of known length (crypto payloads).
    Bytes(usize),
}

impl Type {
    /// Constructs a tensor type with the given element type and shape.
    pub fn tensor(elem: Type, shape: &[usize]) -> Type {
        Type::Tensor { elem: Box::new(elem), shape: shape.to_vec() }
    }

    /// Constructs a memref type in the given memory space.
    pub fn memref(elem: Type, shape: &[usize], space: MemSpace) -> Type {
        Type::MemRef { elem: Box::new(elem), shape: shape.to_vec(), space }
    }

    /// Constructs a stream-of-`elem` type.
    pub fn stream(elem: Type) -> Type {
        Type::Stream(Box::new(elem))
    }

    /// Returns `true` for scalar numeric types (including `index`).
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::I1 | Type::I32 | Type::I64 | Type::F32 | Type::F64 | Type::Index)
    }

    /// Returns `true` for floating-point scalar types.
    pub fn is_float(&self) -> bool {
        matches!(self, Type::F32 | Type::F64)
    }

    /// Returns `true` for integer scalar types (including `i1` and `index`).
    pub fn is_int(&self) -> bool {
        matches!(self, Type::I1 | Type::I32 | Type::I64 | Type::Index)
    }

    /// Returns the shape for shaped types (tensor/memref), `None` otherwise.
    pub fn shape(&self) -> Option<&[usize]> {
        match self {
            Type::Tensor { shape, .. } | Type::MemRef { shape, .. } => Some(shape),
            _ => None,
        }
    }

    /// Returns the element type for shaped/stream types, `None` otherwise.
    pub fn elem(&self) -> Option<&Type> {
        match self {
            Type::Tensor { elem, .. } | Type::MemRef { elem, .. } | Type::Stream(elem) => {
                Some(elem)
            }
            _ => None,
        }
    }

    /// Total number of elements for shaped types.
    pub fn num_elements(&self) -> Option<usize> {
        self.shape().map(|s| s.iter().product())
    }

    /// Size of one scalar of this type in bytes, if meaningful.
    pub fn scalar_bytes(&self) -> Option<usize> {
        match self {
            Type::I1 => Some(1),
            Type::I32 | Type::F32 => Some(4),
            Type::I64 | Type::F64 | Type::Index => Some(8),
            _ => None,
        }
    }

    /// Total byte footprint of a value of this type (shaped types multiply
    /// element size by element count; `Bytes(n)` is `n`).
    pub fn byte_size(&self) -> Option<usize> {
        match self {
            Type::Bytes(n) => Some(*n),
            Type::Tensor { elem, .. } | Type::MemRef { elem, .. } => {
                Some(elem.scalar_bytes()? * self.num_elements()?)
            }
            t if t.is_scalar() => t.scalar_bytes(),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::I1 => f.write_str("i1"),
            Type::I32 => f.write_str("i32"),
            Type::I64 => f.write_str("i64"),
            Type::F32 => f.write_str("f32"),
            Type::F64 => f.write_str("f64"),
            Type::Index => f.write_str("index"),
            Type::Tensor { elem, shape } => {
                f.write_str("tensor<")?;
                for d in shape {
                    write!(f, "{d}x")?;
                }
                write!(f, "{elem}>")
            }
            Type::MemRef { elem, shape, space } => {
                f.write_str("memref<")?;
                for d in shape {
                    write!(f, "{d}x")?;
                }
                write!(f, "{elem}, {space}>")
            }
            Type::Stream(elem) => write!(f, "stream<{elem}>"),
            Type::Token => f.write_str("token"),
            Type::Bytes(n) => write!(f, "bytes<{n}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_shapes() {
        assert_eq!(Type::tensor(Type::F32, &[4, 8]).to_string(), "tensor<4x8xf32>");
        assert_eq!(
            Type::memref(Type::F64, &[16], MemSpace::Scratchpad).to_string(),
            "memref<16xf64, scratch>"
        );
        assert_eq!(Type::stream(Type::I32).to_string(), "stream<i32>");
        assert_eq!(Type::Bytes(64).to_string(), "bytes<64>");
    }

    #[test]
    fn scalar_predicates() {
        assert!(Type::F32.is_scalar());
        assert!(Type::F32.is_float());
        assert!(!Type::F32.is_int());
        assert!(Type::Index.is_int());
        assert!(!Type::tensor(Type::F32, &[2]).is_scalar());
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Type::tensor(Type::F32, &[32, 32]).byte_size(), Some(4096));
        assert_eq!(Type::F64.byte_size(), Some(8));
        assert_eq!(Type::Bytes(100).byte_size(), Some(100));
        assert_eq!(Type::Token.byte_size(), None);
    }

    #[test]
    fn zero_dim_tensor_is_scalar_like_but_shaped() {
        let t = Type::tensor(Type::F32, &[]);
        assert_eq!(t.num_elements(), Some(1));
        assert_eq!(t.to_string(), "tensor<f32>");
    }

    #[test]
    fn elem_accessor() {
        let t = Type::stream(Type::F64);
        assert_eq!(t.elem(), Some(&Type::F64));
        assert_eq!(Type::I32.elem(), None);
    }
}
