//! Recursive-descent parser for the canonical textual IR format produced by
//! [`crate::print`].
//!
//! The parser allocates SSA values in order of first definition, which is
//! exactly the order the printer numbers them in — so
//! `parse_module(m.to_text()).to_text() == m.to_text()`.

use crate::attr::Attr;
use crate::error::{IrError, IrResult};
use crate::ir::{Block, BlockId, Func, Module, Op, Region, Value};
use crate::types::{MemSpace, Type};
use std::collections::HashMap;

/// Parses the canonical textual form of a module.
///
/// # Errors
///
/// Returns [`IrError::Parse`] with a line number on malformed input.
///
/// ```
/// let m = everest_ir::parse_module(
///     "module @m {\n  func @id(%0: f64) -> (f64) {\n    func.return %0\n  }\n}\n",
/// ).unwrap();
/// assert_eq!(m.len(), 1);
/// ```
pub fn parse_module(text: &str) -> IrResult<Module> {
    let mut p = Parser::new(text);
    let module = p.module()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing input after module"));
    }
    Ok(module)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

struct FuncCtx {
    func: Func,
    names: HashMap<String, Value>,
}

impl FuncCtx {
    fn define(&mut self, name: String, ty: Type) -> Value {
        let v = self.func.new_value(ty);
        self.names.insert(name, v);
        v
    }
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Parser<'a> {
        Parser { src: src.as_bytes(), pos: 0 }
    }

    fn line(&self) -> usize {
        1 + self.src[..self.pos].iter().filter(|b| **b == b'\n').count()
    }

    fn err(&self, msg: impl Into<String>) -> IrError {
        IrError::Parse { line: self.line(), msg: msg.into() }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => {
                    self.pos += 1;
                }
                b'/' if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> IrResult<()> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{token}'")))
        }
    }

    fn peek_is(&mut self, token: &str) -> bool {
        self.skip_ws();
        self.src[self.pos..].starts_with(token.as_bytes())
    }

    /// Identifier: letters, digits, `_`, `.` (for dotted op names).
    fn ident(&mut self) -> IrResult<String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn integer(&mut self) -> IrResult<i64> {
        self.skip_ws();
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start || (self.pos == start + 1 && self.src[start] == b'-') {
            return Err(self.err("expected integer"));
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("integer out of range"))
    }

    fn usize_lit(&mut self) -> IrResult<usize> {
        let v = self.integer()?;
        usize::try_from(v).map_err(|_| self.err("expected non-negative integer"))
    }

    /// `%N` value reference; returns the textual name `"N"`.
    fn value_name(&mut self) -> IrResult<String> {
        self.expect("%")?;
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected value number after '%'"));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn string_lit(&mut self) -> IrResult<String> {
        self.expect("\"")?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'0') => out.push('\0'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'"') => out.push('"'),
                    Some(b'\'') => out.push('\''),
                    Some(b'u') => {
                        self.expect("{")?;
                        let start = self.pos;
                        while self.peek().is_some_and(|b| b.is_ascii_hexdigit()) {
                            self.pos += 1;
                        }
                        let hex = std::str::from_utf8(&self.src[start..self.pos])
                            .map_err(|_| self.err("bad unicode escape"))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| self.err("bad unicode escape"))?;
                        out.push(char::from_u32(cp).ok_or_else(|| self.err("bad unicode escape"))?);
                        self.expect("}")?;
                    }
                    _ => return Err(self.err("unknown escape")),
                },
                Some(b) => {
                    // Multi-byte UTF-8: copy raw bytes through.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(b);
                        self.pos = start + width;
                        out.push_str(
                            std::str::from_utf8(&self.src[start..self.pos])
                                .map_err(|_| self.err("invalid utf-8 in string"))?,
                        );
                    }
                }
            }
        }
    }

    fn ty(&mut self) -> IrResult<Type> {
        self.skip_ws();
        let name = self.ident()?;
        match name.as_str() {
            "i1" => Ok(Type::I1),
            "i32" => Ok(Type::I32),
            "i64" => Ok(Type::I64),
            "f32" => Ok(Type::F32),
            "f64" => Ok(Type::F64),
            "index" => Ok(Type::Index),
            "token" => Ok(Type::Token),
            "bytes" => {
                self.expect("<")?;
                let n = self.usize_lit()?;
                self.expect(">")?;
                Ok(Type::Bytes(n))
            }
            "stream" => {
                self.expect("<")?;
                let elem = self.ty()?;
                self.expect(">")?;
                Ok(Type::stream(elem))
            }
            "tensor" | "memref" => {
                self.expect("<")?;
                let (shape, elem) = self.shape_and_elem()?;
                if name == "tensor" {
                    self.expect(">")?;
                    Ok(Type::tensor(elem, &shape))
                } else {
                    self.expect(",")?;
                    let space = match self.ident()?.as_str() {
                        "host" => MemSpace::Host,
                        "device" => MemSpace::Device,
                        "scratch" => MemSpace::Scratchpad,
                        "remote" => MemSpace::Remote,
                        other => return Err(self.err(format!("unknown memory space '{other}'"))),
                    };
                    self.expect(">")?;
                    Ok(Type::memref(elem, &shape, space))
                }
            }
            other => Err(self.err(format!("unknown type '{other}'"))),
        }
    }

    /// Parses `4x8xf32`-style shaped-type interiors: dims are digit runs
    /// followed by `x`; everything after the last `x`-separated dim is the
    /// element type.
    fn shape_and_elem(&mut self) -> IrResult<(Vec<usize>, Type)> {
        self.skip_ws();
        let mut shape = Vec::new();
        loop {
            let save = self.pos;
            if self.peek().is_some_and(|b| b.is_ascii_digit()) {
                let mut end = self.pos;
                while self.src.get(end).is_some_and(|b| b.is_ascii_digit()) {
                    end += 1;
                }
                if self.src.get(end) == Some(&b'x') {
                    let dim: usize = std::str::from_utf8(&self.src[self.pos..end])
                        .ok()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| self.err("bad dimension"))?;
                    shape.push(dim);
                    self.pos = end + 1;
                    continue;
                }
            }
            self.pos = save;
            break;
        }
        let elem = self.ty()?;
        Ok((shape, elem))
    }

    fn attr(&mut self) -> IrResult<Attr> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(Attr::Str(self.string_lit()?)),
            Some(b'[') => {
                self.expect("[")?;
                let mut items = Vec::new();
                if !self.peek_is("]") {
                    loop {
                        items.push(self.attr()?);
                        if !self.eat(",") {
                            break;
                        }
                    }
                }
                self.expect("]")?;
                Ok(Attr::Array(items))
            }
            Some(b'!') => {
                self.expect("!")?;
                Ok(Attr::Type(self.ty()?))
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => {
                // Number: float iff it contains '.', 'e', 'inf' or 'NaN'.
                let start = self.pos;
                if b == b'-' {
                    self.pos += 1;
                }
                let mut is_float = false;
                while let Some(c) = self.peek() {
                    if c.is_ascii_digit() {
                        self.pos += 1;
                    } else if c == b'.' || c == b'e' || c == b'E' {
                        is_float = true;
                        self.pos += 1;
                        if matches!(self.peek(), Some(b'-') | Some(b'+')) {
                            self.pos += 1;
                        }
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| self.err("bad number"))?;
                if is_float {
                    text.parse::<f64>().map(Attr::Float).map_err(|_| self.err("bad float literal"))
                } else {
                    text.parse::<i64>().map(Attr::Int).map_err(|_| self.err("bad int literal"))
                }
            }
            _ => {
                let word = self.ident()?;
                match word.as_str() {
                    "true" => Ok(Attr::Bool(true)),
                    "false" => Ok(Attr::Bool(false)),
                    "NaN" => Ok(Attr::Float(f64::NAN)),
                    "inf" => Ok(Attr::Float(f64::INFINITY)),
                    other => Err(self.err(format!("unknown attribute literal '{other}'"))),
                }
            }
        }
    }

    fn attr_dict(&mut self) -> IrResult<Vec<(String, Attr)>> {
        self.expect("{")?;
        let mut attrs = Vec::new();
        if !self.peek_is("}") {
            loop {
                let key = self.ident()?;
                self.expect("=")?;
                let value = self.attr()?;
                attrs.push((key, value));
                if !self.eat(",") {
                    break;
                }
            }
        }
        self.expect("}")?;
        Ok(attrs)
    }

    fn module(&mut self) -> IrResult<Module> {
        self.expect("module")?;
        self.expect("@")?;
        let name = self.ident()?;
        self.expect("{")?;
        let mut module = Module::new(name);
        while self.peek_is("func") {
            module.push(self.func()?);
        }
        self.expect("}")?;
        Ok(module)
    }

    fn func(&mut self) -> IrResult<Func> {
        self.expect("func")?;
        self.expect("@")?;
        let name = self.ident()?;
        self.expect("(")?;
        let mut param_names = Vec::new();
        let mut param_types = Vec::new();
        if !self.peek_is(")") {
            loop {
                let vname = self.value_name()?;
                self.expect(":")?;
                let ty = self.ty()?;
                param_names.push(vname);
                param_types.push(ty);
                if !self.eat(",") {
                    break;
                }
            }
        }
        self.expect(")")?;
        self.expect("->")?;
        self.expect("(")?;
        let mut result_types = Vec::new();
        if !self.peek_is(")") {
            loop {
                result_types.push(self.ty()?);
                if !self.eat(",") {
                    break;
                }
            }
        }
        self.expect(")")?;
        let mut func_attrs = Vec::new();
        if self.eat("attrs") {
            func_attrs = self.attr_dict()?;
        }
        let mut ctx =
            FuncCtx { func: Func::new(name, &param_types, &result_types), names: HashMap::new() };
        for (pname, arg) in
            param_names.iter().zip(ctx.func.body.entry().expect("fresh func entry").args.clone())
        {
            ctx.names.insert(pname.clone(), arg);
        }
        for (k, v) in func_attrs {
            ctx.func.attrs.insert(k, v);
        }
        self.expect("{")?;
        // Entry block ops (no header), then optional extra header'd blocks.
        let mut blocks = Vec::new();
        let mut entry = ctx.func.body.blocks.remove(0);
        entry.ops = self.op_list(&mut ctx)?;
        blocks.push(entry);
        while self.peek_is("^") {
            blocks.push(self.block(&mut ctx)?);
        }
        self.expect("}")?;
        ctx.func.body.blocks = blocks;
        Ok(ctx.func)
    }

    fn op_list(&mut self, ctx: &mut FuncCtx) -> IrResult<Vec<Op>> {
        let mut ops = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'}') | Some(b'^') | None => break,
                _ => ops.push(self.op(ctx)?),
            }
        }
        Ok(ops)
    }

    fn block(&mut self, ctx: &mut FuncCtx) -> IrResult<Block> {
        self.expect("^bb")?;
        let id = self.usize_lit()? as u32;
        self.expect("(")?;
        let mut block = Block::new(BlockId(id));
        if !self.peek_is(")") {
            loop {
                let vname = self.value_name()?;
                self.expect(":")?;
                let ty = self.ty()?;
                block.args.push(ctx.define(vname, ty));
                if !self.eat(",") {
                    break;
                }
            }
        }
        self.expect(")")?;
        self.expect(":")?;
        block.ops = self.op_list(ctx)?;
        Ok(block)
    }

    fn op(&mut self, ctx: &mut FuncCtx) -> IrResult<Op> {
        // Optional result list.
        let mut result_names = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'%') {
            loop {
                result_names.push(self.value_name()?);
                if !self.eat(",") {
                    break;
                }
            }
            self.expect("=")?;
        }
        let name = self.ident()?;
        if !name.contains('.') {
            return Err(self.err(format!("op name '{name}' is not dialect-qualified")));
        }
        let mut op = Op::new(name);
        // Operands.
        self.skip_ws();
        if self.peek() == Some(b'%') {
            loop {
                let vname = self.value_name()?;
                let v = *ctx
                    .names
                    .get(&vname)
                    .ok_or_else(|| self.err(format!("use of undefined value %{vname}")))?;
                op.operands.push(v);
                if !self.eat(",") {
                    break;
                }
            }
        }
        // Attribute dictionary.
        if self.peek_is("{") {
            for (k, v) in self.attr_dict()? {
                op.attrs.insert(k, v);
            }
        }
        // Define results *before* parsing regions, matching print order.
        // Result types appear after the regions, so park the names and
        // pre-allocate placeholders once we know the types; to keep numbering
        // identical we must allocate now. We therefore parse the op in two
        // steps: peek ahead for the types is impractical, so instead we
        // allocate values lazily with a patchable type table.
        // Simpler: canonical printing always emits `: types` at end-of-line,
        // but regions come before. We pre-allocate with a placeholder type
        // and fix it up after reading the trailing types.
        let results: Vec<Value> =
            result_names.iter().map(|n| ctx.define(n.clone(), Type::Token)).collect();
        op.results = results.clone();
        // Regions.
        if self.peek_is("(") {
            self.expect("(")?;
            loop {
                self.expect("{")?;
                let mut region = Region::new();
                while self.peek_is("^") {
                    region.blocks.push(self.block(ctx)?);
                }
                self.expect("}")?;
                op.regions.push(region);
                if !self.eat(",") {
                    break;
                }
            }
            self.expect(")")?;
        }
        // Trailing result types.
        if !results.is_empty() {
            self.expect(":")?;
            let mut types = Vec::new();
            loop {
                types.push(self.ty()?);
                if !self.eat(",") {
                    break;
                }
            }
            if types.len() != results.len() {
                return Err(self.err(format!(
                    "{} results but {} result types",
                    results.len(),
                    types.len()
                )));
            }
            for (v, t) in results.iter().zip(types) {
                ctx.func.set_value_type(*v, t);
            }
        }
        Ok(op)
    }
}

fn utf8_width(lead: u8) -> usize {
    match lead {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::types::Type;

    fn round_trip(module: &Module) {
        let text = module.to_text();
        let parsed = parse_module(&text).expect("parse canonical text");
        assert_eq!(parsed.to_text(), text);
        parsed.verify().expect("reparsed module verifies");
    }

    #[test]
    fn round_trips_arith_function() {
        let mut fb = FuncBuilder::new("f", &[Type::F32, Type::F32], &[Type::F32]);
        let a = fb.binary("arith.mulf", fb.arg(0), fb.arg(1), Type::F32);
        let b = fb.binary("arith.addf", a, fb.arg(0), Type::F32);
        fb.ret(&[b]);
        let mut m = Module::new("m");
        m.push(fb.finish());
        round_trip(&m);
    }

    #[test]
    fn round_trips_loops_and_regions() {
        let mut fb = FuncBuilder::new("sum", &[], &[Type::F64]);
        let init = fb.const_f(0.0, Type::F64);
        let out = fb.for_loop(0, 16, 1, &[init], |fb, _iv, c| {
            let k = fb.const_f(0.5, Type::F64);
            vec![fb.binary("arith.addf", c[0], k, Type::F64)]
        });
        fb.ret(&[out[0]]);
        let mut m = Module::new("loops");
        m.push(fb.finish());
        round_trip(&m);
    }

    #[test]
    fn round_trips_shaped_types_and_attrs() {
        let t = Type::tensor(Type::F32, &[8, 16]);
        let mut fb = FuncBuilder::new("t", &[t.clone(), t.clone()], std::slice::from_ref(&t));
        fb.set_func_attr("target", "fpga");
        let mut op = crate::ir::Op::new("tensor.add");
        op.operands = vec![fb.arg(0), fb.arg(1)];
        let r = fb.op1(op, t);
        fb.ret(&[r]);
        let mut m = Module::new("shaped");
        m.push(fb.finish());
        round_trip(&m);
    }

    #[test]
    fn round_trips_every_attr_kind() {
        let mut fb = FuncBuilder::new("attrs", &[], &[]);
        let op = crate::ir::Op::new("df.source")
            .with_attr("kind", "weather \"station\"\n")
            .with_attr("count", 42i64)
            .with_attr("rate", 2.5f64)
            .with_attr("live", true)
            .with_attr("ty", Attr::Type(Type::memref(Type::F64, &[4], MemSpace::Remote)))
            .with_attr("dims", Attr::ints(&[1, -2, 3]));
        fb.op(op, &[Type::Token]);
        fb.ret(&[]);
        let mut m = Module::new("attrs");
        m.push(fb.finish());
        round_trip(&m);
    }

    #[test]
    fn rejects_undefined_value_use() {
        let text = "module @m {\n  func @f() -> () {\n    df.sink %9 {kind = \"x\"}\n    func.return\n  }\n}\n";
        let err = parse_module(text).unwrap_err();
        assert!(err.to_string().contains("undefined value"));
    }

    #[test]
    fn rejects_unqualified_op_name() {
        let text = "module @m {\n  func @f() -> () {\n    ret\n  }\n}\n";
        assert!(parse_module(text).is_err());
    }

    #[test]
    fn reports_line_numbers() {
        let text = "module @m {\n  func @f() -> () {\n    %0 = arith.constant : f64\n  }\n}\n";
        // Missing `value` attr parses fine but the colon without attrs is ok;
        // force a real syntax error instead:
        let bad = text.replace("-> ()", "-> (");
        let err = parse_module(&bad).unwrap_err();
        match err {
            IrError::Parse { line, .. } => assert!(line >= 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn parses_comments() {
        let text = "// leading comment\nmodule @m {\n  // inner\n  func @f() -> () {\n    func.return\n  }\n}\n";
        assert!(parse_module(text).is_ok());
    }
}
