//! Error types shared by the IR crate.

use std::fmt;

/// Result alias used throughout [`everest_ir`](crate).
pub type IrResult<T> = Result<T, IrError>;

/// Errors produced while building, verifying, parsing or transforming IR.
///
/// ```
/// use everest_ir::IrError;
/// let err = IrError::Verify("dangling value".into());
/// assert_eq!(err.to_string(), "verification failed: dangling value");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// Structural verification failed (SSA dominance, arity, type checks).
    Verify(String),
    /// The textual parser rejected the input. Carries line number and message.
    Parse { line: usize, msg: String },
    /// An operation name is not registered with any dialect.
    UnknownOp(String),
    /// A referenced symbol (function, value) does not exist.
    UnknownSymbol(String),
    /// A pass precondition was violated.
    Pass(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Verify(msg) => write!(f, "verification failed: {msg}"),
            IrError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            IrError::UnknownOp(name) => write!(f, "unknown operation '{name}'"),
            IrError::UnknownSymbol(name) => write!(f, "unknown symbol '{name}'"),
            IrError::Pass(msg) => write!(f, "pass failed: {msg}"),
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants_are_lowercase_and_informative() {
        let cases: Vec<(IrError, &str)> = vec![
            (IrError::Verify("x".into()), "verification failed: x"),
            (
                IrError::Parse { line: 3, msg: "bad token".into() },
                "parse error at line 3: bad token",
            ),
            (IrError::UnknownOp("foo.bar".into()), "unknown operation 'foo.bar'"),
            (IrError::UnknownSymbol("@f".into()), "unknown symbol '@f'"),
            (IrError::Pass("no".into()), "pass failed: no"),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IrError>();
    }
}
