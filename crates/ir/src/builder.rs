//! Ergonomic construction of IR functions.

use crate::attr::Attr;
use crate::ir::{Block, BlockId, Func, Op, Region, Value};
use crate::types::Type;

/// Builds a [`Func`] by appending operations to a cursor block.
///
/// The builder keeps a stack of open blocks so structured ops with nested
/// regions (such as `loop.for`) can be built with closures:
///
/// ```
/// use everest_ir::{FuncBuilder, Type};
///
/// let mut fb = FuncBuilder::new("sum", &[], &[Type::F64]);
/// let zero = fb.const_f(0.0, Type::F64);
/// let total = fb.for_loop(0, 10, 1, &[zero], |fb, _iv, carried| {
///     let one = fb.const_f(1.0, Type::F64);
///     vec![fb.binary("arith.addf", carried[0], one, Type::F64)]
/// })[0];
/// fb.ret(&[total]);
/// let func = fb.finish();
/// assert_eq!(func.op_count(), 6);
/// ```
#[derive(Debug)]
pub struct FuncBuilder {
    func: Func,
    /// Stack of blocks under construction; the top receives new ops. The
    /// bottom entry is the function entry block.
    stack: Vec<Block>,
    next_block: u32,
}

impl FuncBuilder {
    /// Starts building a function with the given signature.
    pub fn new(name: impl Into<String>, params: &[Type], results: &[Type]) -> FuncBuilder {
        let mut func = Func::new(name, params, results);
        let entry = func.body.blocks.pop().expect("fresh function has an entry block");
        FuncBuilder { func, stack: vec![entry], next_block: 1 }
    }

    /// The `i`-th function argument.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn arg(&self, i: usize) -> Value {
        self.stack[0].args[i]
    }

    /// Sets a function-level attribute.
    pub fn set_func_attr(&mut self, key: impl Into<String>, value: impl Into<Attr>) {
        self.func.attrs.insert(key.into(), value.into());
    }

    /// Appends a fully-formed op whose results were already allocated.
    pub fn push_op(&mut self, op: Op) {
        self.stack.last_mut().expect("builder has an open block").ops.push(op);
    }

    /// Appends `op` after allocating one result value per type in
    /// `result_types`; returns the result values.
    pub fn op(&mut self, mut op: Op, result_types: &[Type]) -> Vec<Value> {
        let results: Vec<Value> =
            result_types.iter().map(|t| self.func.new_value(t.clone())).collect();
        op.results = results.clone();
        self.push_op(op);
        results
    }

    /// Appends a single-result op; returns its result.
    pub fn op1(&mut self, op: Op, result_type: Type) -> Value {
        self.op(op, &[result_type])[0]
    }

    /// Emits an `arith.constant` with a float payload.
    pub fn const_f(&mut self, value: f64, ty: Type) -> Value {
        self.op1(Op::new("arith.constant").with_attr("value", value), ty)
    }

    /// Emits an `arith.constant` with an integer payload.
    pub fn const_i(&mut self, value: i64, ty: Type) -> Value {
        self.op1(Op::new("arith.constant").with_attr("value", value), ty)
    }

    /// Emits a two-operand, one-result op such as `arith.addf`.
    pub fn binary(&mut self, name: &str, lhs: Value, rhs: Value, ty: Type) -> Value {
        let mut op = Op::new(name);
        op.operands = vec![lhs, rhs];
        self.op1(op, ty)
    }

    /// Emits a one-operand, one-result op such as `arith.negf`.
    pub fn unary(&mut self, name: &str, operand: Value, ty: Type) -> Value {
        let mut op = Op::new(name);
        op.operands = vec![operand];
        self.op1(op, ty)
    }

    /// Emits `func.call @callee(args)`.
    pub fn call(&mut self, callee: &str, args: &[Value], result_types: &[Type]) -> Vec<Value> {
        let mut op = Op::new("func.call").with_attr("callee", callee);
        op.operands = args.to_vec();
        self.op(op, result_types)
    }

    /// Emits a `mem.load` from `buf` at `indices`.
    pub fn load(&mut self, buf: Value, indices: &[Value], ty: Type) -> Value {
        let mut op = Op::new("mem.load");
        op.operands = std::iter::once(buf).chain(indices.iter().copied()).collect();
        self.op1(op, ty)
    }

    /// Emits a `mem.store` of `value` into `buf` at `indices`.
    pub fn store(&mut self, value: Value, buf: Value, indices: &[Value]) {
        let mut op = Op::new("mem.store");
        op.operands = [value, buf].iter().copied().chain(indices.iter().copied()).collect();
        self.push_op(op);
    }

    /// Emits a counted `loop.for` with loop-carried values.
    ///
    /// The `body` closure receives the induction variable and the carried
    /// values for the current iteration and must return the next-iteration
    /// values (same count as `inits`). Returns the loop results.
    ///
    /// # Panics
    ///
    /// Panics if the closure yields a different number of values than
    /// `inits`.
    pub fn for_loop(
        &mut self,
        lo: i64,
        hi: i64,
        step: i64,
        inits: &[Value],
        body: impl FnOnce(&mut FuncBuilder, Value, &[Value]) -> Vec<Value>,
    ) -> Vec<Value> {
        let mut block = Block::new(BlockId(self.next_block));
        self.next_block += 1;
        let iv = self.func.new_value(Type::Index);
        block.args.push(iv);
        let carried: Vec<Value> = inits
            .iter()
            .map(|v| {
                let ty = self.func.value_type(*v).clone();
                let arg = self.func.new_value(ty);
                block.args.push(arg);
                arg
            })
            .collect();
        self.stack.push(block);
        let yields = body(self, iv, &carried);
        assert_eq!(yields.len(), inits.len(), "loop body must yield one value per init");
        let mut yield_op = Op::new("loop.yield");
        yield_op.operands = yields;
        self.push_op(yield_op);
        let block = self.stack.pop().expect("loop body block is open");

        let mut op =
            Op::new("loop.for").with_attr("lo", lo).with_attr("hi", hi).with_attr("step", step);
        op.operands = inits.to_vec();
        op.regions = vec![Region { blocks: vec![block] }];
        let result_types: Vec<Type> =
            inits.iter().map(|v| self.func.value_type(*v).clone()).collect();
        self.op(op, &result_types)
    }

    /// Emits the `func.return` terminator.
    pub fn ret(&mut self, values: &[Value]) {
        let mut op = Op::new("func.return");
        op.operands = values.to_vec();
        self.push_op(op);
    }

    /// The type previously recorded for `v`.
    pub fn value_type(&self, v: Value) -> &Type {
        self.func.value_type(v)
    }

    /// Finalizes and returns the function.
    ///
    /// # Panics
    ///
    /// Panics if nested blocks (e.g. an unfinished loop body) are still open.
    pub fn finish(mut self) -> Func {
        assert_eq!(self.stack.len(), 1, "unclosed nested region");
        let entry = self.stack.pop().expect("entry block present");
        self.func.body.blocks.push(entry);
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_arith_function() {
        let mut fb = FuncBuilder::new("f", &[Type::F32, Type::F32], &[Type::F32]);
        let s = fb.binary("arith.addf", fb.arg(0), fb.arg(1), Type::F32);
        fb.ret(&[s]);
        let f = fb.finish();
        assert_eq!(f.op_count(), 2);
        assert!(crate::verify::verify_func(&f).is_ok());
    }

    #[test]
    fn loop_carried_values_have_matching_types() {
        let mut fb = FuncBuilder::new("g", &[], &[Type::F64]);
        let init = fb.const_f(1.0, Type::F64);
        let out = fb.for_loop(0, 4, 1, &[init], |fb, _iv, c| {
            vec![fb.binary("arith.mulf", c[0], c[0], Type::F64)]
        });
        assert_eq!(fb.value_type(out[0]), &Type::F64);
        fb.ret(&out);
        let f = fb.finish();
        assert!(crate::verify::verify_func(&f).is_ok());
    }

    #[test]
    #[should_panic(expected = "one value per init")]
    fn loop_yield_count_mismatch_panics() {
        let mut fb = FuncBuilder::new("g", &[], &[]);
        let init = fb.const_f(0.0, Type::F64);
        fb.for_loop(0, 4, 1, &[init], |_fb, _iv, _c| vec![]);
    }

    #[test]
    fn call_allocates_results() {
        let mut fb = FuncBuilder::new("caller", &[], &[Type::I64]);
        let r = fb.call("callee", &[], &[Type::I64]);
        fb.ret(&r);
        let f = fb.finish();
        assert_eq!(f.num_values(), 1);
    }

    #[test]
    fn store_emits_no_results() {
        use crate::types::MemSpace;
        let buf_ty = Type::memref(Type::F32, &[8], MemSpace::Scratchpad);
        let mut fb = FuncBuilder::new("h", &[buf_ty], &[]);
        let i = fb.const_i(0, Type::Index);
        let v = fb.const_f(1.0, Type::F32);
        fb.store(v, fb.arg(0), &[i]);
        fb.ret(&[]);
        let f = fb.finish();
        assert_eq!(f.body.entry().unwrap().ops.len(), 4);
    }
}
