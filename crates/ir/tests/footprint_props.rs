//! Property tests for the shape/footprint lattice behind the fusion
//! legality analysis: [`ShapeFact`] obeys the semilattice laws, its byte
//! bound is monotone in the lattice order, and the shape analysis reaches
//! the same fixpoint regardless of worklist seeding order on random CFGs
//! — mirroring `dataflow_props.rs` for the interval engine.

use everest_ir::footprint::{ShapeAnalysis, ShapeFact};
use everest_ir::{
    analyze, analyze_ordered, fn_footprint, Block, BlockId, Func, FuncBuilder, Interval, Lattice,
    Op, Type,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// `a ⊑ b` in the shape lattice: joining `b` into `a` yields exactly `b`.
fn leq(a: &ShapeFact, b: &ShapeFact) -> bool {
    let mut j = a.clone();
    j.join(b);
    j == *b
}

/// A random shape fact: bottom, top, or 0–3 bounded interval dims with a
/// 4- or 8-byte element.
fn shape_fact() -> impl Strategy<Value = ShapeFact> {
    let dims = || {
        (prop::collection::vec((0i64..32, 0i64..32), 0..4), prop_oneof![Just(4u64), Just(8u64)])
            .prop_map(|(pairs, elem_bytes)| ShapeFact::Dims {
                dims: pairs.into_iter().map(|(a, b)| Interval::range(a.min(b), a.max(b))).collect(),
                elem_bytes,
            })
    };
    prop_oneof![Just(ShapeFact::Bottom), Just(ShapeFact::Top), dims(), dims(), dims(), dims(),]
}

/// Builds an `n`-block CFG shaped by `picks` (same scheme as
/// `dataflow_props::random_cfg`), where every block defines a tensor value
/// through a `mark` op feeding on the previous block's value — so shape
/// facts actually flow across the random edges.
fn random_shaped_cfg(n: usize, picks: &[(usize, usize)], ranks: &[usize]) -> Func {
    let mut func = Func::new("f", &[], &[]);
    for i in 1..n {
        func.body.blocks.push(Block::new(BlockId(i as u32)));
    }
    let mut prev: Option<everest_ir::Value> = None;
    for i in 0..n {
        let dim = 2 + ranks[i % ranks.len()] % 7;
        let v = func.new_value(Type::tensor(Type::F64, &[dim, dim]));
        let mut mark = Op::new(format!("mark.b{i}"));
        if let Some(p) = prev {
            mark.operands = vec![p];
        }
        mark.results = vec![v];
        prev = Some(v);
        let mut ops = vec![mark];
        if i + 1 < n {
            let (p1, p2) = picks[i % picks.len()];
            let forward = i + 1 + p1 % (n - 1 - i);
            let anywhere = p2 % n;
            ops.push(
                Op::new("cf.cond_br")
                    .with_attr("true_dest", forward as i64)
                    .with_attr("false_dest", anywhere as i64),
            );
        } else {
            ops.push(Op::new("func.return"));
        }
        func.body.blocks[i].ops = ops;
    }
    func
}

type ShapeSolution<'a> = Vec<(everest_ir::Site, &'a Op, BTreeMap<everest_ir::Value, ShapeFact>)>;

/// Projects a solution onto comparable (path, op, state) triples.
fn shape(solution: &ShapeSolution<'_>) -> Vec<(String, String, String)> {
    solution
        .iter()
        .map(|(site, op, state)| (site.path.clone(), op.name.clone(), format!("{:?}", state)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn shape_join_is_a_semilattice(
        a in shape_fact(),
        b in shape_fact(),
        c in shape_fact(),
    ) {
        // Idempotent, commutative, associative; join is an upper bound.
        let mut aa = a.clone();
        aa.join(&a);
        prop_assert_eq!(&aa, &a);
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        prop_assert_eq!(&ab, &ba);
        let mut ab_c = ab.clone();
        ab_c.join(&c);
        let mut bc = b.clone();
        bc.join(&c);
        let mut a_bc = a.clone();
        a_bc.join(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
        prop_assert!(leq(&a, &ab) && leq(&b, &ab));
        // Bottom is the identity; everything is below top.
        let mut bot = ShapeFact::Bottom;
        bot.join(&a);
        prop_assert_eq!(&bot, &a);
        prop_assert!(leq(&a, &ShapeFact::Top));
    }

    #[test]
    fn byte_bound_is_monotone_in_the_lattice_order(
        a in shape_fact(),
        grow in shape_fact(),
    ) {
        // Widening a fact can only widen (or unbound) its byte bound: the
        // transfer functions built on max_bytes stay monotone.
        let mut b = a.clone();
        b.join(&grow);
        prop_assert!(leq(&a, &b));
        if let (Some(ab), Some(bb)) = (a.max_bytes(), b.max_bytes()) {
            prop_assert!(ab <= bb, "{a:?} ⊑ {b:?} but {ab} > {bb}");
        }
        // And whenever the wider fact is bounded, so is the narrower one
        // (except bottom, which has no bytes at all).
        if b.max_bytes().is_some() && a != ShapeFact::Bottom {
            prop_assert!(a.max_bytes().is_some());
        }
    }

    #[test]
    fn shape_fixpoint_is_independent_of_worklist_order(
        n in 2usize..7,
        picks in prop::collection::vec((any::<usize>(), any::<usize>()), 6),
        ranks in prop::collection::vec(any::<usize>(), 6),
        keys in prop::collection::vec(any::<u64>(), 7),
    ) {
        let func = random_shaped_cfg(n, &picks, &ranks);
        let summaries = BTreeMap::new();
        let analysis = ShapeAnalysis::new(&summaries);
        let reference = analyze(&func, &analysis);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|i| keys[*i]);
        let shuffled = analyze_ordered(&func, &analysis, &order);
        prop_assert_eq!(shape(&reference), shape(&shuffled));
    }

    #[test]
    fn footprints_of_straightline_kernels_are_exact(
        rows in 1usize..32,
        cols in 1usize..32,
        trip in 1i64..16,
    ) {
        // in/out bytes follow directly from the types; locals scale with
        // the loop trip count — for any random size.
        let t = Type::tensor(Type::F64, &[rows, cols]);
        let buf = Type::memref(Type::F64, &[cols], everest_ir::types::MemSpace::Scratchpad);
        let mut fb = FuncBuilder::new("k", std::slice::from_ref(&t), std::slice::from_ref(&t));
        let init = fb.const_f(0.0, Type::F64);
        let out = fb.for_loop(0, trip, 1, &[init], |fb, _iv, c| {
            let _scratch = fb.op1(Op::new("mem.alloc"), buf.clone());
            vec![c[0]]
        });
        let _ = out;
        fb.ret(&[fb.arg(0)]);
        let fp = fn_footprint(&fb.finish(), &BTreeMap::new());
        let tensor_bytes = (rows * cols * 8) as u64;
        prop_assert_eq!(fp.in_bytes, Some(tensor_bytes));
        prop_assert_eq!(fp.out_bytes, Some(tensor_bytes));
        prop_assert_eq!(fp.local_bytes, Interval::point(trip * (cols as i64) * 8));
        prop_assert!(fp.is_bounded());
    }
}
