//! `PassManager::standard()` fixpoint convergence, observed through the
//! telemetry iteration spans. Lives in its own integration binary (with
//! one test) because it installs the global recording tracer.

use everest_ir::builder::FuncBuilder;
use everest_ir::pass::{constant_of, PassManager};
use everest_ir::types::Type;
use everest_ir::Module;
use everest_telemetry::Tracer;

#[test]
fn standard_pipeline_needs_two_iterations_to_converge() {
    let tracer = Tracer::recording();
    everest_telemetry::install_global(tracer.clone());

    // Folding collapses 2+2 and (2+2)*(2+2), CSE merges the duplicate
    // constants, and DCE sweeps the dead subtraction — all in the first
    // canonicalize iteration. A second iteration is then required to
    // observe that nothing changes and declare the fixpoint.
    let mut fb = FuncBuilder::new("f", &[], &[Type::F64]);
    let a = fb.const_f(2.0, Type::F64);
    let b = fb.const_f(2.0, Type::F64);
    let c = fb.binary("arith.addf", a, b, Type::F64);
    let d = fb.binary("arith.mulf", c, c, Type::F64);
    let _dead = fb.binary("arith.subf", d, c, Type::F64);
    fb.ret(&[d]);
    let mut module = Module::new("t");
    module.push(fb.finish());

    let pm = PassManager::standard();
    assert!(pm.run(&mut module).unwrap(), "first run must change the module");
    let first_run = tracer.finish();

    assert!(!pm.run(&mut module).unwrap(), "second run must be at the fixpoint");
    let second_run = tracer.finish();
    everest_telemetry::install_global(Tracer::disabled());

    module.verify().unwrap();
    let func = module.func("f").unwrap();
    assert_eq!(func.op_count(), 2); // constant 16.0 + return
    let ret = func.body.entry().unwrap().terminator().unwrap();
    assert_eq!(constant_of(func, ret.operands[0]).unwrap().as_float(), Some(16.0));

    // The converging run takes exactly two iterations: one that changes
    // the module and one that confirms the fixpoint.
    let iters: Vec<_> = first_run.iter().filter(|s| s.name == "canonicalize.iter").collect();
    assert_eq!(iters.len(), 2, "expected a changing plus a confirming iteration");
    let attr = |s: &everest_telemetry::SpanRecord, key: &str| {
        s.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
    };
    assert_eq!(attr(iters[0], "changed").as_deref(), Some("true"));
    assert_eq!(attr(iters[1], "changed").as_deref(), Some("false"));

    // Span nesting: iterations sit under the canonicalize pass span,
    // which sits under the pipeline span; fold/cse/dce sit under their
    // iteration.
    let pipeline = first_run.iter().find(|s| s.name == "ir.pipeline").unwrap();
    let pass = first_run.iter().find(|s| s.name == "canonicalize").unwrap();
    assert_eq!(pass.parent, Some(pipeline.id));
    for iter in &iters {
        assert_eq!(iter.parent, Some(pass.id));
    }
    let folds: Vec<_> = first_run.iter().filter(|s| s.name == "fold").collect();
    assert_eq!(folds.len(), 2);
    assert!(folds.iter().all(|s| iters.iter().any(|i| Some(i.id) == s.parent)));

    // An already-canonical module converges in a single iteration.
    let second_iters = second_run.iter().filter(|s| s.name == "canonicalize.iter").count();
    assert_eq!(second_iters, 1);

    // The changed counters fired once per changing step.
    let metrics = everest_telemetry::metrics().snapshot();
    assert!(metrics.counter("ir.pass.changed.fold") >= 1);
    assert!(metrics.counter("ir.pass.changed.dce") >= 1);
    assert!(metrics.counter("ir.pass.changed") >= 1);
}
