//! Property tests: the canonical printer and parser are mutually inverse on
//! arbitrary well-formed modules, and canonicalization preserves
//! verifiability.

use everest_ir::pass::PassManager;
use everest_ir::{parse_module, Attr, FuncBuilder, Module, Op, Type, Value};
use proptest::prelude::*;

/// Strategy for scalar float/int types used in generated functions.
fn scalar_type() -> impl Strategy<Value = Type> {
    prop_oneof![Just(Type::F32), Just(Type::F64), Just(Type::I32), Just(Type::I64)]
}

fn attr_strategy() -> impl Strategy<Value = Attr> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Attr::Int),
        // Finite floats only: NaN breaks equality-based round-trip checks.
        (-1.0e12f64..1.0e12).prop_map(Attr::Float),
        "[a-zA-Z0-9 _.-]{0,12}".prop_map(Attr::Str),
        any::<bool>().prop_map(Attr::Bool),
        scalar_type().prop_map(Attr::Type),
    ];
    leaf.prop_recursive(2, 8, 4, |inner| prop::collection::vec(inner, 0..4).prop_map(Attr::Array))
}

/// Builds a random straight-line function over one scalar type: a chain of
/// binary/unary arithmetic over constants and parameters.
fn random_func(
    name: String,
    ty: Type,
    seeds: Vec<f64>,
    picks: Vec<(u8, usize, usize)>,
) -> everest_ir::Func {
    let is_float = ty.is_float();
    let params = vec![ty.clone(); 2];
    let mut fb = FuncBuilder::new(name, &params, std::slice::from_ref(&ty));
    let mut avail: Vec<Value> = vec![fb.arg(0), fb.arg(1)];
    for s in seeds {
        let v = if is_float { fb.const_f(s, ty.clone()) } else { fb.const_i(s as i64, ty.clone()) };
        avail.push(v);
    }
    for (kind, i, j) in picks {
        let a = avail[i % avail.len()];
        let b = avail[j % avail.len()];
        let op = if is_float {
            match kind % 4 {
                0 => "arith.addf",
                1 => "arith.subf",
                2 => "arith.mulf",
                _ => "arith.maxf",
            }
        } else {
            match kind % 3 {
                0 => "arith.addi",
                1 => "arith.subi",
                _ => "arith.muli",
            }
        };
        let v = fb.binary(op, a, b, ty.clone());
        avail.push(v);
    }
    let last = *avail.last().unwrap();
    fb.ret(&[last]);
    fb.finish()
}

proptest! {
    #[test]
    fn print_parse_print_is_identity(
        ty in scalar_type(),
        seeds in prop::collection::vec(-100.0f64..100.0, 1..6),
        picks in prop::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 0..20),
    ) {
        let mut m = Module::new("prop");
        m.push(random_func("f".into(), ty, seeds, picks));
        m.verify().expect("generated module verifies");
        let text = m.to_text();
        let parsed = parse_module(&text).expect("canonical text parses");
        prop_assert_eq!(parsed.to_text(), text);
        parsed.verify().expect("reparsed module verifies");
    }

    #[test]
    fn attrs_round_trip_through_text(attr in attr_strategy()) {
        let mut fb = FuncBuilder::new("f", &[], &[]);
        let op = Op::new("df.source").with_attr("kind", "k").with_attr("payload", attr.clone());
        fb.op(op, &[Type::Token]);
        fb.ret(&[]);
        let mut m = Module::new("attrs");
        m.push(fb.finish());
        let text = m.to_text();
        let parsed = parse_module(&text).expect("parses");
        let f = parsed.func("f").unwrap();
        let got = f.body.entry().unwrap().ops[0].attr("payload").unwrap();
        prop_assert_eq!(got, &attr);
    }

    #[test]
    fn canonicalize_preserves_verification_and_return_value(
        seeds in prop::collection::vec(-10.0f64..10.0, 2..5),
        picks in prop::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..12),
    ) {
        let mut m = Module::new("prop");
        m.push(random_func("f".into(), Type::F64, seeds, picks));
        let before_ops = m.func("f").unwrap().op_count();
        PassManager::standard().run(&mut m).expect("passes run");
        m.verify().expect("canonical module verifies");
        let after_ops = m.func("f").unwrap().op_count();
        prop_assert!(after_ops <= before_ops);
        // The terminator must still return a value of the declared type.
        let f = m.func("f").unwrap();
        let ret = f.body.entry().unwrap().terminator().unwrap();
        prop_assert_eq!(&ret.name, "func.return");
        prop_assert_eq!(f.value_type(ret.operands[0]), &Type::F64);
    }
}
