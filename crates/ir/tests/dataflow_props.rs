//! Property tests for the dataflow engine: the interval lattice obeys the
//! lattice laws, its arithmetic transfer functions are monotone and sound,
//! and converged fixpoints are independent of worklist seeding order. A
//! companion golden suite pins the rendered text of one diagnostic per
//! lint code.

use everest_ir::types::MemSpace;
use everest_ir::{
    analyze, analyze_ordered, check_func, Analysis, Block, BlockId, Direction, Func, FuncBuilder,
    Interval, Lattice, Op, Type,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// `a ⊑ b` in the interval lattice: joining `b` into `a` changes nothing
/// beyond `b` itself.
fn leq(a: Interval, b: Interval) -> bool {
    let mut j = a;
    j.join(&b);
    j == b
}

fn interval(pair: (i64, i64)) -> Interval {
    Interval::range(pair.0.min(pair.1), pair.0.max(pair.1))
}

/// Forward may-analysis collecting the names of ops on some path to the
/// program point — the simplest monotone set analysis.
struct SeenOps;

impl Analysis for SeenOps {
    type State = BTreeSet<String>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn transfer(&self, _func: &Func, op: &Op, state: &mut Self::State) {
        state.insert(op.name.clone());
    }
}

/// Builds an `n`-block CFG whose shape is driven by `picks`: block `i`
/// holds a unique marker op and a `cf.cond_br` with one forward edge and
/// one arbitrary edge (which may point backward, forming loops); the last
/// block returns.
fn random_cfg(n: usize, picks: &[(usize, usize)]) -> Func {
    let mut func = Func::new("f", &[], &[]);
    for i in 1..n {
        func.body.blocks.push(Block::new(BlockId(i as u32)));
    }
    for i in 0..n {
        let mut ops = vec![Op::new(format!("mark.b{i}"))];
        if i + 1 < n {
            let (p1, p2) = picks[i % picks.len()];
            let forward = i + 1 + p1 % (n - 1 - i);
            let anywhere = p2 % n;
            ops.push(
                Op::new("cf.cond_br")
                    .with_attr("true_dest", forward as i64)
                    .with_attr("false_dest", anywhere as i64),
            );
        } else {
            ops.push(Op::new("func.return"));
        }
        func.body.blocks[i].ops = ops;
    }
    func
}

/// Projects a solution onto comparable (path, op name, state) triples.
fn shape(solution: &[(everest_ir::Site, &Op, BTreeSet<String>)]) -> Vec<(String, String, String)> {
    solution
        .iter()
        .map(|(site, op, state)| (site.path.clone(), op.name.clone(), format!("{:?}", state)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn interval_join_is_a_semilattice(
        a in (-100i64..100, -100i64..100),
        b in (-100i64..100, -100i64..100),
        c in (-100i64..100, -100i64..100),
    ) {
        let (a, b, c) = (interval(a), interval(b), interval(c));
        // Idempotent, commutative, associative; join is an upper bound.
        let mut aa = a;
        aa.join(&a);
        prop_assert_eq!(aa, a);
        let mut ab = a;
        ab.join(&b);
        let mut ba = b;
        ba.join(&a);
        prop_assert_eq!(ab, ba);
        let mut ab_c = ab;
        ab_c.join(&c);
        let mut bc = b;
        bc.join(&c);
        let mut a_bc = a;
        a_bc.join(&bc);
        prop_assert_eq!(ab_c, a_bc);
        prop_assert!(leq(a, ab) && leq(b, ab));
        // Joining bottom is the identity; everything is below top.
        let mut bot = Interval::BOTTOM;
        bot.join(&a);
        prop_assert_eq!(bot, a);
        prop_assert!(leq(a, Interval::TOP));
    }

    #[test]
    fn interval_arithmetic_is_monotone_and_sound(
        a in (-50i64..50, -50i64..50),
        b in (-50i64..50, -50i64..50),
        grow_a in (-50i64..50, -50i64..50),
        grow_b in (-50i64..50, -50i64..50),
        x in 0f64..1.0,
        y in 0f64..1.0,
    ) {
        let (a, b) = (interval(a), interval(b));
        let mut a2 = a;
        a2.join(&interval(grow_a));
        let mut b2 = b;
        b2.join(&interval(grow_b));
        type AbstractOp = fn(Interval, Interval) -> Interval;
        type ConcreteOp = fn(i64, i64) -> i64;
        let ops: [(AbstractOp, ConcreteOp); 3] = [
            (|a, b| a + b, |x, y| x + y),
            (|a, b| a - b, |x, y| x - y),
            (|a, b| a * b, |x, y| x * y),
        ];
        for (abs, conc) in ops {
            // Monotone: wider inputs can only widen the output.
            prop_assert!(leq(abs(a, b), abs(a2, b2)));
            // Sound: concrete points stay inside the abstract result.
            let cx = a.lo + ((x * (a.hi - a.lo) as f64) as i64);
            let cy = b.lo + ((y * (b.hi - b.lo) as f64) as i64);
            prop_assert!(
                abs(a, b).contains(conc(cx, cy)),
                "{:?} op {:?} = {:?} missing {}", a, b, abs(a, b), conc(cx, cy)
            );
        }
    }

    #[test]
    fn fixpoint_is_independent_of_worklist_order(
        n in 2usize..7,
        picks in prop::collection::vec((any::<usize>(), any::<usize>()), 6),
        keys in prop::collection::vec(any::<u64>(), 7),
    ) {
        let func = random_cfg(n, &picks);
        let reference = analyze(&func, &SeenOps);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|i| keys[*i]);
        let shuffled = analyze_ordered(&func, &SeenOps, &order);
        prop_assert_eq!(shape(&reference), shape(&shuffled));
    }
}

// ---------------------------------------------------------------------------
// Golden diagnostics: one pinned rendering per lint code, so the exact
// text `everestc check` prints is part of the contract.

fn rendered(func: &Func, code: &str) -> String {
    let diags = check_func(func);
    let hit = diags.iter().find(|d| d.code == code);
    hit.unwrap_or_else(|| panic!("no {code} diagnostic in {diags:?}")).render()
}

#[test]
fn golden_dead_store() {
    let mut fb = FuncBuilder::new("stale", &[Type::F32], &[Type::F32]);
    let buf = fb.op1(Op::new("mem.alloc"), Type::memref(Type::F32, &[4], MemSpace::Scratchpad));
    let i = fb.const_i(0, Type::Index);
    fb.store(fb.arg(0), buf, &[i]);
    fb.ret(&[fb.arg(0)]);
    assert_eq!(
        rendered(&fb.finish(), "dead-store"),
        "warning[dead-store] @stale at ^bb0 op 2: store to %1 is never read\n    \
         mem.store %0, %1, %2"
    );
}

#[test]
fn golden_unused_result() {
    let mut fb = FuncBuilder::new("wasted", &[Type::F64], &[Type::F64]);
    let _dead = fb.binary("arith.mulf", fb.arg(0), fb.arg(0), Type::F64);
    fb.ret(&[fb.arg(0)]);
    assert_eq!(
        rendered(&fb.finish(), "unused-result"),
        "warning[unused-result] @wasted at ^bb0 op 0: result %1 of pure op arith.mulf is never \
         used\n    %1 = arith.mulf %0, %0"
    );
}

#[test]
fn golden_range_oob() {
    let buf_ty = Type::memref(Type::F64, &[8], MemSpace::Scratchpad);
    let mut fb = FuncBuilder::new("overrun", &[buf_ty], &[Type::F64]);
    let init = fb.const_f(0.0, Type::F64);
    let out = fb.for_loop(0, 12, 1, &[init], |fb, iv, c| {
        let x = fb.load(fb.arg(0), &[iv], Type::F64);
        vec![fb.binary("arith.addf", c[0], x, Type::F64)]
    });
    fb.ret(&[out[0]]);
    assert_eq!(
        rendered(&fb.finish(), "range-oob"),
        "error[range-oob] @overrun at ^bb0 op 1 / ^bb1 op 0: index %2 ranges over [0, 11] but \
         dimension 0 of %0 has size 8\n    %4 = mem.load %0, %2"
    );
}

#[test]
fn golden_taint_flow() {
    let mut fb = FuncBuilder::new("leak", &[Type::F64], &[]);
    let mut taint = Op::new("secure.taint").with_attr("label", "patient-data");
    taint.operands = vec![fb.arg(0)];
    let secret = fb.op1(taint, Type::F64);
    let mut sink = Op::new("df.sink").with_attr("kind", "out");
    sink.operands = vec![secret];
    fb.push_op(sink);
    fb.ret(&[]);
    assert_eq!(
        rendered(&fb.finish(), "taint-flow"),
        "error[taint-flow] @leak at ^bb0 op 1: value %1 carrying secret label patient-data \
         reaches unprotected sink df.sink\n    df.sink %1 {kind = \"out\"}"
    );
}
