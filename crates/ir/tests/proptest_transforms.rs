//! Property tests: structural transforms (unrolling, inlining) and the
//! canonicalization pipeline preserve a function's observable semantics,
//! checked with the reference interpreter.

use everest_ir::interp::{Interp, RtValue};
use everest_ir::pass::PassManager;
use everest_ir::transforms::{inline_calls, unroll_func};
use everest_ir::{FuncBuilder, Module, Type, Value};
use proptest::prelude::*;

/// Builds a function with a loop whose body is a random arithmetic chain
/// over the induction variable and carried accumulator.
fn random_loop_func(lo: i64, trips: i64, picks: &[(u8, bool)]) -> everest_ir::Func {
    let mut fb = FuncBuilder::new("f", &[Type::F64], &[Type::F64]);
    let init = fb.arg(0);
    let picks = picks.to_vec();
    let out = fb.for_loop(lo, lo + trips, 1, &[init], move |fb, iv, c| {
        let ivf = fb.unary("arith.sitofp", iv, Type::F64);
        let mut acc: Value = c[0];
        for (kind, use_iv) in &picks {
            let rhs =
                if *use_iv { ivf } else { fb.const_f(f64::from(*kind) * 0.25 + 0.5, Type::F64) };
            let name = match kind % 4 {
                0 => "arith.addf",
                1 => "arith.subf",
                2 => "arith.mulf",
                _ => "arith.maxf",
            };
            acc = fb.binary(name, acc, rhs, Type::F64);
        }
        vec![acc]
    });
    fb.ret(&[out[0]]);
    fb.finish()
}

fn eval(func: &everest_ir::Func, x: f64) -> Vec<RtValue> {
    Interp::new().call(func, &[RtValue::Float(x)]).expect("interprets")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn unrolling_preserves_semantics(
        lo in -3i64..4,
        trips in 0i64..7,
        picks in prop::collection::vec((any::<u8>(), any::<bool>()), 1..6),
        x in -10.0f64..10.0,
    ) {
        let f = random_loop_func(lo, trips, &picks);
        let before = eval(&f, x);
        let mut unrolled = f.clone();
        unroll_func(&mut unrolled, 16);
        everest_ir::verify::verify_func(&unrolled).expect("unrolled verifies");
        let after = eval(&unrolled, x);
        prop_assert_eq!(before, after);
    }

    #[test]
    fn canonicalize_preserves_semantics(
        lo in 0i64..3,
        trips in 1i64..6,
        picks in prop::collection::vec((any::<u8>(), any::<bool>()), 1..6),
        x in -5.0f64..5.0,
    ) {
        let f = random_loop_func(lo, trips, &picks);
        let before = eval(&f, x);
        let mut m = Module::new("m");
        m.push(f);
        PassManager::standard().run(&mut m).expect("passes run");
        m.verify().expect("canonical module verifies");
        let after = eval(m.func("f").unwrap(), x);
        prop_assert_eq!(before, after);
    }

    #[test]
    fn unroll_then_canonicalize_preserves_semantics(
        trips in 1i64..6,
        picks in prop::collection::vec((any::<u8>(), any::<bool>()), 1..5),
        x in -5.0f64..5.0,
    ) {
        let f = random_loop_func(0, trips, &picks);
        let before = eval(&f, x);
        let mut g = f.clone();
        unroll_func(&mut g, 16);
        let mut m = Module::new("m");
        m.push(g);
        PassManager::standard().run(&mut m).expect("passes run");
        let after = eval(m.func("f").unwrap(), x);
        // Full pipeline: float ops are evaluated in the same order by the
        // interpreter and the folder, so equality is exact.
        prop_assert_eq!(before, after);
    }

    #[test]
    fn inlining_preserves_semantics(
        picks in prop::collection::vec((any::<u8>(), any::<bool>()), 1..5),
        x in -5.0f64..5.0,
    ) {
        // callee: a straight-line chain; caller calls it twice.
        let mut m = Module::new("m");
        let mut callee = FuncBuilder::new("g", &[Type::F64], &[Type::F64]);
        let mut acc = callee.arg(0);
        for (kind, _) in &picks {
            let k = callee.const_f(f64::from(*kind) * 0.1 + 0.3, Type::F64);
            let name = match kind % 3 {
                0 => "arith.addf",
                1 => "arith.mulf",
                _ => "arith.subf",
            };
            acc = callee.binary(name, acc, k, Type::F64);
        }
        callee.ret(&[acc]);
        m.push(callee.finish());

        let mut caller = FuncBuilder::new("f", &[Type::F64], &[Type::F64]);
        let a0 = caller.arg(0);
        let once = caller.call("g", &[a0], &[Type::F64]);
        let twice = caller.call("g", &[once[0]], &[Type::F64]);
        caller.ret(&[twice[0]]);
        m.push(caller.finish());

        let before =
            Interp::with_module(&m).call(m.func("f").unwrap(), &[RtValue::Float(x)]).unwrap();
        let mut inlined = m.clone();
        let n = inline_calls(&mut inlined).expect("inlines");
        prop_assert_eq!(n, 2);
        inlined.verify().expect("inlined verifies");
        let after = Interp::new().call(inlined.func("f").unwrap(), &[RtValue::Float(x)]).unwrap();
        prop_assert_eq!(before, after);
    }
}
