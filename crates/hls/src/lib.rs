//! # everest-hls — high-level synthesis engine
//!
//! EVEREST "uses Bambu, an open-source HLS tool" to turn kernels into FPGA
//! accelerators and "optimize execution and memory bandwidth" (paper III-B).
//! This crate is a from-scratch functional equivalent of that flow:
//!
//! 1. [`tensor_to_loops`] lowers `tensor`-dialect kernels into explicit
//!    memref loop nests (the form HLS schedules);
//! 2. [`cdfg`] builds a control/data-flow graph per loop body, including
//!    memory-ordering edges;
//! 3. [`schedule`] runs ASAP/ALAP and resource-constrained list scheduling
//!    against the operator library in [`oplib`];
//! 4. [`binding`] allocates and binds functional units and estimates
//!    registers;
//! 5. [`memory`] partitions array buffers across BRAM banks (block/cyclic)
//!    and analyses port conflicts;
//! 6. [`pipeline`] computes initiation intervals for pipelined loops;
//! 7. [`dift`] adds TaintHLS-style dynamic information-flow tracking and
//!    reports its area/latency overhead;
//! 8. [`rtl`] emits a Verilog-subset FSMD description;
//! 9. [`accel`] drives the whole flow and produces an [`accel::Accelerator`]
//!    with latency, area and RTL artifacts;
//! 10. [`cache`] memoizes synthesis summaries by structural kernel hash +
//!     configuration key, so design-space exploration never synthesizes
//!     the same point twice.
//!
//! ## Example
//!
//! ```
//! use everest_hls::accel::{synthesize, HlsConfig};
//!
//! let module = everest_dsl::compile_kernels(
//!     "kernel axpy(a: tensor<64xf64>, b: tensor<64xf64>) -> tensor<64xf64> {
//!          return 2.0 * a + b;
//!      }",
//! ).unwrap();
//! let acc = synthesize(module.func("axpy").unwrap(), &HlsConfig::default()).unwrap();
//! assert!(acc.latency_cycles > 0);
//! assert!(acc.area.luts > 0);
//! ```

pub mod accel;
pub mod binding;
pub mod cache;
pub mod cdfg;
pub mod dift;
pub mod error;
pub mod memory;
pub mod oplib;
pub mod pipeline;
pub mod rtl;
pub mod schedule;
pub mod tensor_to_loops;

pub use accel::{synthesize, synthesize_gated, Accelerator, DiftGate, HlsConfig, SynthSummary};
pub use cache::{synthesize_cached, SynthCache};
pub use error::{HlsError, HlsResult};
pub use memory::{stream_buffer_brams, stream_capacity_bytes, BRAM_BYTES};
pub use oplib::{AreaReport, FuKind};
