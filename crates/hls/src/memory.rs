//! On-chip memory partitioning and port-conflict analysis.
//!
//! EVEREST applies "polyhedral-based transformations \[and\] multi-port
//! memories ... to schedule the memory accesses" (paper III-B, refs \[28\],
//! \[29\]). This module implements the cyclic/block partitioning model of
//! Wang-Li-Cong (FPGA'14) for 1-D access patterns: given the set of affine
//! offsets a pipelined loop body issues each iteration, it computes how
//! many accesses collide on the same bank and thus the initiation-interval
//! penalty.

use crate::error::{HlsError, HlsResult};
use crate::oplib::AreaReport;

/// Bits in one block RAM (18-kbit primitives throughout this crate).
pub const BRAM_BITS: u64 = 18 * 1024;

/// Payload bytes of one 18-kbit block RAM.
pub const BRAM_BYTES: u64 = BRAM_BITS / 8;

/// Block RAMs needed for a double-buffered (ping/pong) stream FIFO holding
/// one `bytes`-sized transfer: two full copies so the producer fills one
/// half while the consumer drains the other.
pub fn stream_buffer_brams(bytes: u64) -> u64 {
    (2 * bytes * 8).div_ceil(BRAM_BITS)
}

/// Largest single transfer a double-buffered stream FIFO built from
/// `brams` block RAMs can hold (the inverse of [`stream_buffer_brams`]).
pub fn stream_capacity_bytes(brams: u64) -> u64 {
    brams / 2 * BRAM_BYTES
}

/// Bank-mapping scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// `bank = (index / block_len) % banks` — contiguous blocks.
    Block,
    /// `bank = index % banks` — round-robin interleaving.
    Cyclic,
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scheme::Block => f.write_str("block"),
            Scheme::Cyclic => f.write_str("cyclic"),
        }
    }
}

/// A partitioning of a 1-D buffer of `size` elements over `banks` banks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    /// Number of banks.
    pub banks: usize,
    /// Mapping scheme.
    pub scheme: Scheme,
    /// Total element count.
    pub size: usize,
    /// Read/write ports per bank (BRAMs are typically dual-ported).
    pub ports_per_bank: usize,
}

impl Partitioning {
    /// Creates a partitioning.
    ///
    /// # Errors
    ///
    /// Returns [`HlsError::Config`] if `banks` or `ports_per_bank` is zero,
    /// or `banks > size`.
    pub fn new(
        size: usize,
        banks: usize,
        scheme: Scheme,
        ports_per_bank: usize,
    ) -> HlsResult<Partitioning> {
        if banks == 0 {
            return Err(HlsError::Config("partitioning needs at least one bank".into()));
        }
        if ports_per_bank == 0 {
            return Err(HlsError::Config("banks need at least one port".into()));
        }
        if banks > size.max(1) {
            return Err(HlsError::Config(format!("{banks} banks for {size} elements")));
        }
        Ok(Partitioning { banks, scheme, size, ports_per_bank })
    }

    /// Elements per bank (ceiling).
    pub fn bank_depth(&self) -> usize {
        self.size.div_ceil(self.banks)
    }

    /// Maps a flat element index to `(bank, local_offset)`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= size`.
    pub fn map(&self, index: usize) -> (usize, usize) {
        assert!(index < self.size, "index {index} out of bounds {}", self.size);
        match self.scheme {
            Scheme::Cyclic => (index % self.banks, index / self.banks),
            Scheme::Block => {
                let depth = self.bank_depth();
                (index / depth, index % depth)
            }
        }
    }

    /// Worst-case number of same-bank collisions when the offsets
    /// `base + off` (for each `off` in `offsets`) are accessed in one
    /// iteration, maximized over all loop bases.
    ///
    /// For cyclic partitioning with stride-1 loops, offsets that differ
    /// mod `banks` land on different banks, so a 3-point stencil on ≥3
    /// banks is conflict-free; block partitioning keeps neighbouring
    /// elements in one bank and conflicts stay.
    pub fn max_conflicts(&self, offsets: &[i64]) -> usize {
        if offsets.is_empty() {
            return 0;
        }
        let banks = self.banks as i64;
        let mut worst = 1;
        // The bank pattern is periodic in the base with period `banks`
        // (cyclic) or `size` (block); for block we sample representative
        // bases across one block boundary.
        let bases: Vec<i64> = match self.scheme {
            Scheme::Cyclic => (0..banks).collect(),
            Scheme::Block => {
                let depth = self.bank_depth() as i64;
                // Sample bases around each block edge.
                (0..banks).map(|b| (b * depth).max(0)).chain(0..depth.min(8)).collect()
            }
        };
        for base in bases {
            let mut counts = std::collections::HashMap::new();
            for off in offsets {
                let idx = base + off;
                if idx < 0 || idx >= self.size as i64 {
                    continue;
                }
                let (bank, _) = self.map(idx as usize);
                *counts.entry(bank).or_insert(0usize) += 1;
            }
            worst = worst.max(counts.values().copied().max().unwrap_or(0));
        }
        worst
    }

    /// Minimum initiation interval imposed by memory: the worst per-bank
    /// access count divided by the ports of one bank (ceiling), at least 1.
    pub fn min_ii(&self, offsets: &[i64]) -> u64 {
        let conflicts = self.max_conflicts(offsets);
        (conflicts.div_ceil(self.ports_per_bank) as u64).max(1)
    }

    /// BRAM cost: each bank occupies at least one 18-kbit BRAM; deep banks
    /// take several (64-bit elements assumed).
    pub fn area(&self) -> AreaReport {
        let bits_per_bank = self.bank_depth() as u64 * 64;
        let brams_per_bank = bits_per_bank.div_ceil(18 * 1024).max(1);
        AreaReport {
            luts: 20 * self.banks as u64,
            ffs: 10 * self.banks as u64,
            dsps: 0,
            brams: brams_per_bank * self.banks as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_buffer_math_round_trips() {
        // 131072 B double-buffered: 2*131072*8 bits / 18 kbit = 114 BRAMs.
        assert_eq!(stream_buffer_brams(131_072), 114);
        // Capacity is the floor inverse: what fits always synthesizes.
        for brams in [2u64, 114, 200, 1_440] {
            let cap = stream_capacity_bytes(brams);
            assert!(stream_buffer_brams(cap) <= brams);
        }
        assert_eq!(stream_capacity_bytes(200), 230_400);
        assert_eq!(stream_capacity_bytes(1), 0, "a single BRAM cannot double-buffer");
    }

    #[test]
    fn cyclic_mapping_is_round_robin() {
        let p = Partitioning::new(16, 4, Scheme::Cyclic, 2).unwrap();
        assert_eq!(p.map(0), (0, 0));
        assert_eq!(p.map(1), (1, 0));
        assert_eq!(p.map(5), (1, 1));
        assert_eq!(p.map(15), (3, 3));
    }

    #[test]
    fn block_mapping_is_contiguous() {
        let p = Partitioning::new(16, 4, Scheme::Block, 2).unwrap();
        assert_eq!(p.map(0), (0, 0));
        assert_eq!(p.map(3), (0, 3));
        assert_eq!(p.map(4), (1, 0));
        assert_eq!(p.map(15), (3, 3));
    }

    #[test]
    fn mapping_is_bijective() {
        for scheme in [Scheme::Block, Scheme::Cyclic] {
            let p = Partitioning::new(24, 4, scheme, 1).unwrap();
            let mut seen = std::collections::HashSet::new();
            for i in 0..24 {
                assert!(seen.insert(p.map(i)), "{scheme} maps {i} onto an occupied slot");
            }
        }
    }

    #[test]
    fn stencil_conflicts_cyclic_vs_block() {
        // 3-point stencil: offsets -1, 0, +1.
        let offsets = [-1i64, 0, 1];
        let cyclic = Partitioning::new(64, 4, Scheme::Cyclic, 1).unwrap();
        let block = Partitioning::new(64, 4, Scheme::Block, 1).unwrap();
        // Cyclic spreads neighbours across banks: no conflicts.
        assert_eq!(cyclic.max_conflicts(&offsets), 1);
        // Block keeps neighbours together: all three collide inside a block.
        assert_eq!(block.max_conflicts(&offsets), 3);
        assert_eq!(cyclic.min_ii(&offsets), 1);
        assert_eq!(block.min_ii(&offsets), 3);
    }

    #[test]
    fn dual_ports_halve_the_penalty() {
        let offsets = [-1i64, 0, 1];
        let block = Partitioning::new(64, 4, Scheme::Block, 2).unwrap();
        assert_eq!(block.min_ii(&offsets), 2); // ceil(3/2)
    }

    #[test]
    fn single_bank_serializes_everything() {
        let p = Partitioning::new(64, 1, Scheme::Cyclic, 1).unwrap();
        assert_eq!(p.min_ii(&[0, 1, 2, 3]), 4);
    }

    #[test]
    fn enough_cyclic_banks_remove_all_conflicts() {
        let offsets = [-2i64, -1, 0, 1, 2];
        for banks in [5usize, 8, 16] {
            let p = Partitioning::new(160, banks, Scheme::Cyclic, 1).unwrap();
            assert_eq!(p.min_ii(&offsets), 1, "banks={banks}");
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Partitioning::new(8, 0, Scheme::Cyclic, 1).is_err());
        assert!(Partitioning::new(8, 2, Scheme::Cyclic, 0).is_err());
        assert!(Partitioning::new(4, 8, Scheme::Cyclic, 1).is_err());
    }

    #[test]
    fn area_grows_with_banks() {
        let p1 = Partitioning::new(1024, 1, Scheme::Cyclic, 2).unwrap();
        let p8 = Partitioning::new(1024, 8, Scheme::Cyclic, 2).unwrap();
        assert!(p8.area().brams >= p1.area().brams);
        assert!(p8.area().luts > p1.area().luts);
    }
}
