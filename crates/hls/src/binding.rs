//! Functional-unit allocation, binding and register estimation.
//!
//! After scheduling, allocation decides how many instances of each unit
//! kind the datapath needs (the peak number of same-kind ops issued in one
//! cycle), binding assigns each op to a concrete instance, and register
//! estimation counts values that must be carried across cycle boundaries.

use crate::cdfg::Dfg;
use crate::oplib::{AreaReport, FuKind};
use crate::schedule::Schedule;
use std::collections::HashMap;

/// Result of allocation + binding for one scheduled block.
#[derive(Debug, Clone, Default)]
pub struct Binding {
    /// Instances allocated per unit kind.
    pub allocation: HashMap<FuKind, usize>,
    /// Per node: the unit instance `(kind, index)` it runs on, if any.
    pub assignment: Vec<Option<(FuKind, usize)>>,
    /// Peak number of live values crossing a cycle boundary.
    pub registers: usize,
}

impl Binding {
    /// Total datapath area: functional units plus registers (64-bit) plus a
    /// small steering/mux overhead per bound op.
    pub fn area(&self) -> AreaReport {
        let mut area = AreaReport::default();
        for (kind, count) in &self.allocation {
            area += kind.area().scaled(*count as u64);
        }
        // One 64-bit register per live value; ~0.5 LUT/bit of muxing.
        area.ffs += 64 * self.registers as u64;
        area.luts += 32 * self.registers as u64;
        area
    }
}

/// Computes allocation, binding and register pressure for a schedule.
pub fn bind(dfg: &Dfg, schedule: &Schedule) -> Binding {
    // Allocation: peak concurrent issues per kind.
    let mut per_cycle: HashMap<(FuKind, u64), usize> = HashMap::new();
    for (id, node) in dfg.nodes.iter().enumerate() {
        if let Some(fu) = node.fu {
            *per_cycle.entry((fu, schedule.start[id])).or_insert(0) += 1;
        }
    }
    let mut allocation: HashMap<FuKind, usize> = HashMap::new();
    for ((fu, _), count) in &per_cycle {
        let e = allocation.entry(*fu).or_insert(0);
        *e = (*e).max(*count);
    }

    // Binding: within each cycle, assign instances round-robin.
    let mut assignment = vec![None; dfg.len()];
    let mut cursor: HashMap<(FuKind, u64), usize> = HashMap::new();
    for (id, node) in dfg.nodes.iter().enumerate() {
        if let Some(fu) = node.fu {
            let key = (fu, schedule.start[id]);
            let slot = cursor.entry(key).or_insert(0);
            assignment[id] = Some((fu, *slot));
            *slot += 1;
        }
    }

    // Register estimation: a value produced by node `p` and consumed by
    // node `c` is live from finish(p) to start(c); it needs a register for
    // every cycle boundary in between. Count peak liveness.
    let mut events: Vec<(u64, i64)> = Vec::new();
    for (id, node) in dfg.nodes.iter().enumerate() {
        let produced_at = schedule.start[id] + node.latency;
        let mut last_use = produced_at;
        for s in &node.succs {
            last_use = last_use.max(schedule.start[*s]);
        }
        // Values feeding the block terminator stay live to the end.
        if node.results.iter().any(|r| dfg.terminator_operands.contains(r)) {
            last_use = last_use.max(schedule.len);
        }
        if last_use > produced_at {
            events.push((produced_at, 1));
            events.push((last_use, -1));
        }
    }
    events.sort_unstable();
    let mut live = 0i64;
    let mut peak = 0i64;
    for (_, delta) in events {
        live += delta;
        peak = peak.max(live);
    }

    Binding { allocation, assignment, registers: peak as usize }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{list_schedule, ResourceBudget};
    use everest_ir::{FuncBuilder, Type};
    use std::collections::HashMap as Map;

    fn sample_dfg(parallel: usize) -> Dfg {
        let mut fb = FuncBuilder::new("f", &[Type::F64, Type::F64], &[Type::F64]);
        let mut vals = Vec::new();
        for _ in 0..parallel {
            vals.push(fb.binary("arith.mulf", fb.arg(0), fb.arg(1), Type::F64));
        }
        let mut acc = vals[0];
        for v in &vals[1..] {
            acc = fb.binary("arith.addf", acc, *v, Type::F64);
        }
        fb.ret(&[acc]);
        let f = fb.finish();
        Dfg::from_block(&f, f.body.entry().unwrap(), &Map::new())
    }

    #[test]
    fn allocation_matches_peak_concurrency() {
        let dfg = sample_dfg(4);
        let budget = ResourceBudget::default().with(FuKind::FMul, 2);
        let s = list_schedule(&dfg, &budget).unwrap();
        let b = bind(&dfg, &s);
        assert_eq!(b.allocation[&FuKind::FMul], 2);
    }

    #[test]
    fn binding_instances_within_allocation() {
        let dfg = sample_dfg(6);
        let budget = ResourceBudget::default().with(FuKind::FMul, 3);
        let s = list_schedule(&dfg, &budget).unwrap();
        let b = bind(&dfg, &s);
        for (id, a) in b.assignment.iter().enumerate() {
            if let Some((kind, slot)) = a {
                assert!(slot < &b.allocation[kind], "node {id} bound past allocation");
            }
        }
    }

    #[test]
    fn no_two_ops_share_instance_and_cycle() {
        let dfg = sample_dfg(5);
        let s = list_schedule(&dfg, &ResourceBudget::default()).unwrap();
        let b = bind(&dfg, &s);
        let mut seen = std::collections::HashSet::new();
        for (id, a) in b.assignment.iter().enumerate() {
            if let Some((kind, slot)) = a {
                assert!(
                    seen.insert((s.start[id], *kind, *slot)),
                    "instance double-booked in one cycle"
                );
            }
        }
    }

    #[test]
    fn registers_positive_for_multi_cycle_chains() {
        let dfg = sample_dfg(3);
        let s = list_schedule(&dfg, &ResourceBudget::default()).unwrap();
        let b = bind(&dfg, &s);
        assert!(b.registers > 0);
    }

    #[test]
    fn area_includes_units_and_registers() {
        // 3 parallel muls guarantee a value outliving one cycle boundary.
        let dfg = sample_dfg(3);
        let s = list_schedule(&dfg, &ResourceBudget::default()).unwrap();
        let b = bind(&dfg, &s);
        let area = b.area();
        let fu_only: AreaReport = b
            .allocation
            .iter()
            .fold(AreaReport::default(), |acc, (k, c)| acc + k.area().scaled(*c as u64));
        assert!(area.ffs > fu_only.ffs);
        assert!(area.luts > fu_only.luts);
    }

    #[test]
    fn serial_schedule_allocates_single_unit() {
        let dfg = sample_dfg(4);
        let budget = ResourceBudget::default().with(FuKind::FMul, 1);
        let s = list_schedule(&dfg, &budget).unwrap();
        let b = bind(&dfg, &s);
        assert_eq!(b.allocation[&FuKind::FMul], 1);
    }
}
