//! Loop pipelining: initiation-interval (II) computation for innermost
//! loop bodies.
//!
//! `II = max(ResMII, RecMII, MemMII)` where
//!
//! * **ResMII** — each unit kind can start `budget` ops per cycle, so a body
//!   with `n` ops of a kind needs `ceil(n / budget)` cycles between
//!   iterations;
//! * **RecMII** — a loop-carried recurrence of latency `L` (distance 1)
//!   forces `II ≥ L`;
//! * **MemMII** — bank conflicts computed by [`crate::memory`].

use crate::cdfg::Dfg;
use crate::error::HlsResult;
use crate::oplib::FuKind;
use crate::schedule::{list_schedule, ResourceBudget};

/// Pipelining analysis result for one loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineReport {
    /// Resource-constrained minimum II.
    pub res_mii: u64,
    /// Recurrence-constrained minimum II.
    pub rec_mii: u64,
    /// Memory-constrained minimum II (from partitioning analysis).
    pub mem_mii: u64,
    /// Achieved initiation interval.
    pub ii: u64,
    /// Pipeline depth (cycles for one iteration).
    pub depth: u64,
}

impl PipelineReport {
    /// Total latency of a pipelined loop with `trips` iterations.
    pub fn loop_latency(&self, trips: u64) -> u64 {
        if trips == 0 {
            0
        } else {
            self.depth + (trips - 1) * self.ii
        }
    }
}

/// Operations whose loop-carried recurrences can be broken by the
/// partial-sum transformation (associative + commutative).
const ASSOCIATIVE: [&str; 6] =
    ["arith.addf", "arith.mulf", "arith.maxf", "arith.minf", "arith.addi", "arith.muli"];

/// Analyses a loop-body DFG for pipelining.
///
/// `mem_mii` carries the memory-partitioning constraint (1 when the body's
/// buffers are fully partitioned). With `break_associative` the analyzer
/// applies the partial-sum transformation: a recurrence made purely of
/// associative accumulations is split into interleaved partial
/// accumulators (II becomes 1) at the cost of a tree-reduction epilogue
/// added to the pipeline depth.
///
/// # Errors
///
/// Propagates scheduling failures (e.g. zero-budget unit kinds).
pub fn analyze(
    dfg: &Dfg,
    budget: &ResourceBudget,
    mem_mii: u64,
    break_associative: bool,
) -> HlsResult<PipelineReport> {
    let res_mii = FuKind::ALL
        .iter()
        .map(|k| {
            let n = dfg.count_fu(*k) as u64;
            let b = budget.count(*k) as u64;
            if n == 0 {
                1
            } else {
                n.div_ceil(b.max(1))
            }
        })
        .max()
        .unwrap_or(1);
    let raw_rec_mii = recurrence_mii(dfg);
    let mut depth = list_schedule(dfg, budget)?.len.max(1);
    let rec_mii = if break_associative && raw_rec_mii > 1 && recurrence_is_associative(dfg) {
        // Partial sums: II drops to 1; merging the partial accumulators
        // costs a log-depth epilogue approximated by the chain latency.
        depth += raw_rec_mii;
        1
    } else {
        raw_rec_mii
    };
    let ii = res_mii.max(rec_mii).max(mem_mii.max(1));
    Ok(PipelineReport { res_mii, rec_mii, mem_mii: mem_mii.max(1), ii, depth })
}

/// Longest latency chain through nodes that participate in a loop-carried
/// recurrence (consume a carried block argument, directly or transitively,
/// and feed the yield).
fn recurrence_mii(dfg: &Dfg) -> u64 {
    let mut finish = vec![0u64; dfg.len()];
    let mut worst = 1u64;
    for (id, node) in dfg.nodes.iter().enumerate() {
        if !node.uses_carried {
            continue;
        }
        let start = node
            .preds
            .iter()
            .filter(|p| dfg.nodes[**p].uses_carried)
            .map(|p| finish[*p])
            .max()
            .unwrap_or(0);
        finish[id] = start + node.latency;
        // Only chains that actually feed the next iteration constrain II.
        if node.results.iter().any(|r| dfg.terminator_operands.contains(r)) {
            worst = worst.max(finish[id]);
        }
    }
    worst
}

/// `true` when every node participating in the loop-carried recurrence is
/// an associative accumulation (so partial-sum splitting is legal).
fn recurrence_is_associative(dfg: &Dfg) -> bool {
    dfg.nodes.iter().filter(|n| n.uses_carried).all(|n| ASSOCIATIVE.contains(&n.name.as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_ir::{FuncBuilder, Type};
    use std::collections::HashMap;

    fn body_dfg(
        build: impl FnOnce(
            &mut FuncBuilder,
            everest_ir::Value,
            &[everest_ir::Value],
        ) -> Vec<everest_ir::Value>,
        carried: usize,
    ) -> Dfg {
        let mut fb = FuncBuilder::new("f", &[], &[]);
        let inits: Vec<_> = (0..carried).map(|_| fb.const_f(0.0, Type::F64)).collect();
        fb.for_loop(0, 16, 1, &inits, build);
        fb.ret(&[]);
        let f = fb.finish();
        let entry = f.body.entry().unwrap();
        let loop_op = entry.ops.iter().find(|o| o.name == "loop.for").unwrap();
        Dfg::from_block(&f, loop_op.regions[0].entry().unwrap(), &HashMap::new())
    }

    #[test]
    fn accumulation_recurrence_limits_ii() {
        // acc = acc + x: the fadd (3 cycles) is a carried recurrence.
        let dfg = body_dfg(
            |fb, _iv, c| {
                let x = fb.const_f(1.5, Type::F64);
                vec![fb.binary("arith.addf", c[0], x, Type::F64)]
            },
            1,
        );
        let report = analyze(&dfg, &ResourceBudget::default(), 1, false).unwrap();
        assert_eq!(report.rec_mii, 3);
        assert_eq!(report.ii, 3);
        // With the partial-sum transformation the recurrence breaks.
        let broken = analyze(&dfg, &ResourceBudget::default(), 1, true).unwrap();
        assert_eq!(broken.rec_mii, 1);
        assert_eq!(broken.ii, 1);
        assert!(broken.depth > report.depth, "tree epilogue deepens the pipeline");
    }

    #[test]
    fn independent_body_reaches_ii_one() {
        // No carried values: body is fully parallel across iterations.
        let dfg = body_dfg(
            |fb, _iv, _c| {
                let a = fb.const_f(1.0, Type::F64);
                let b = fb.const_f(2.0, Type::F64);
                let _ = fb.binary("arith.mulf", a, b, Type::F64);
                vec![]
            },
            0,
        );
        let report = analyze(&dfg, &ResourceBudget::default(), 1, false).unwrap();
        assert_eq!(report.rec_mii, 1);
        assert_eq!(report.ii, 1);
    }

    #[test]
    fn resource_pressure_raises_ii() {
        // Four independent multiplies per iteration on one multiplier.
        let dfg = body_dfg(
            |fb, _iv, _c| {
                let a = fb.const_f(1.0, Type::F64);
                for _ in 0..4 {
                    let _ = fb.binary("arith.mulf", a, a, Type::F64);
                }
                vec![]
            },
            0,
        );
        let budget = ResourceBudget::default().with(FuKind::FMul, 1);
        let report = analyze(&dfg, &budget, 1, false).unwrap();
        assert_eq!(report.res_mii, 4);
        assert_eq!(report.ii, 4);
    }

    #[test]
    fn memory_mii_dominates_when_larger() {
        let dfg = body_dfg(
            |fb, _iv, _c| {
                let a = fb.const_f(1.0, Type::F64);
                let _ = fb.binary("arith.addf", a, a, Type::F64);
                vec![]
            },
            0,
        );
        let report = analyze(&dfg, &ResourceBudget::default(), 5, false).unwrap();
        assert_eq!(report.ii, 5);
    }

    #[test]
    fn pipelined_latency_formula() {
        let r = PipelineReport { res_mii: 1, rec_mii: 1, mem_mii: 1, ii: 2, depth: 10 };
        assert_eq!(r.loop_latency(1), 10);
        assert_eq!(r.loop_latency(100), 10 + 99 * 2);
        assert_eq!(r.loop_latency(0), 0);
    }

    #[test]
    fn non_recurrent_use_of_carried_value_is_free() {
        // The carried value is yielded unchanged; a side computation reads
        // it but does not feed the next iteration.
        let dfg = body_dfg(
            |fb, _iv, c| {
                let k = fb.const_f(2.0, Type::F64);
                let _side = fb.binary("arith.mulf", c[0], k, Type::F64);
                vec![c[0]]
            },
            1,
        );
        let report = analyze(&dfg, &ResourceBudget::default(), 1, false).unwrap();
        assert_eq!(report.rec_mii, 1);
    }
}
