//! Memoization of synthesis results.
//!
//! Design-space exploration re-runs full HLS synthesis for every hardware
//! point, even though many points differ only in knobs (threads, layout,
//! tile size, attachment) that never reach the [`HlsConfig`]. This module
//! collapses that redundancy: a structural content hash of the kernel
//! ([`func_fingerprint`], name-independent so structurally identical
//! kernels share entries) plus a hashable [`ConfigKey`] derived from the
//! HLS-relevant knobs index a process-wide concurrent memo of
//! [`SynthSummary`] records.
//!
//! Concurrent callers racing on the same key are deduplicated: the first
//! caller synthesizes while the rest block on the entry and then read the
//! finished summary, so one synthesis run serves every variant that maps
//! to the key. Hits and misses are counted on the
//! `dse.hls.cache.hit` / `dse.hls.cache.miss` telemetry counters.

use crate::accel::{synthesize, HlsConfig, SynthSummary};
use crate::error::HlsResult;
use crate::memory::Scheme;
use crate::oplib::FuKind;
use everest_ir::print::print_func;
use everest_ir::Func;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

/// A structural content hash of a function: the canonical printed form
/// with the symbol name blanked, so two kernels that differ only in name
/// hash identically. Printing is deterministic (attributes are stored in
/// ordered maps and values are numbered in program order), so the
/// fingerprint is stable across processes.
pub fn func_fingerprint(func: &Func) -> u64 {
    let text = print_func(func, 0);
    let canon = text.replacen(&format!("@{}(", func.name), "@(", 1);
    let mut hasher = DefaultHasher::new();
    canon.hash(&mut hasher);
    hasher.finish()
}

/// The HLS-relevant knobs of an [`HlsConfig`], flattened into a hashable
/// key. Two configs with equal keys synthesize to identical results.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConfigKey {
    /// Functional-unit counts in [`FuKind::ALL`] order.
    budget: Vec<usize>,
    /// Bit pattern of the target clock (exact, not rounded).
    clock_bits: u64,
    pipeline: bool,
    banks: usize,
    scheme: Scheme,
    ports_per_bank: usize,
    pe: usize,
    assoc_reduction: bool,
    /// `(taint_bits, check_on_store)` when DIFT is requested.
    dift: Option<(u32, bool)>,
}

impl ConfigKey {
    /// Derives the key for one configuration.
    pub fn of(config: &HlsConfig) -> ConfigKey {
        ConfigKey {
            budget: FuKind::ALL.iter().map(|kind| config.budget.count(*kind)).collect(),
            clock_bits: config.clock_mhz.to_bits(),
            pipeline: config.pipeline,
            banks: config.banks,
            scheme: config.scheme,
            ports_per_bank: config.ports_per_bank,
            pe: config.pe,
            assoc_reduction: config.assoc_reduction,
            dift: config.dift.as_ref().map(|d| (d.taint_bits, d.check_on_store)),
        }
    }
}

type Key = (u64, ConfigKey);
type Slot = Arc<Mutex<Option<SynthSummary>>>;

/// A concurrent memo of synthesis summaries keyed by
/// `(func_fingerprint, ConfigKey)`.
#[derive(Default)]
pub struct SynthCache {
    map: Mutex<HashMap<Key, Slot>>,
}

impl SynthCache {
    /// An empty cache.
    pub fn new() -> SynthCache {
        SynthCache::default()
    }

    /// Number of completed entries.
    pub fn len(&self) -> usize {
        self.map.lock().values().filter(|slot| slot.lock().is_some()).count()
    }

    /// `true` when no synthesis result is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (used by benchmarks to measure cold runs).
    pub fn clear(&self) {
        self.map.lock().clear();
    }

    /// Returns the memoized summary for `(func, config)`, synthesizing on
    /// the first request. Concurrent requests for the same key block on
    /// the in-flight synthesis instead of duplicating it.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::HlsError`] from synthesis; failures are not
    /// cached, so a later call retries.
    pub fn get_or_synthesize(&self, func: &Func, config: &HlsConfig) -> HlsResult<SynthSummary> {
        let start = std::time::Instant::now();
        let key = (func_fingerprint(func), ConfigKey::of(config));
        let slot: Slot = Arc::clone(self.map.lock().entry(key).or_default());
        let mut entry = slot.lock();
        if let Some(summary) = *entry {
            let telemetry = everest_telemetry::metrics();
            telemetry.counter_inc("dse.hls.cache.hit");
            // Hit latency (key hash + two lock hops) vs the synthesis
            // cost below quantifies what the memo cache is worth.
            telemetry.observe("dse.hls.cache.hit_us", start.elapsed().as_secs_f64() * 1e6);
            return Ok(summary);
        }
        everest_telemetry::metrics().counter_inc("dse.hls.cache.miss");
        everest_telemetry::flight().marker("dse.hls.cache.miss", 1.0);
        let mut span = everest_telemetry::span("hls.synthesize", "hls");
        span.attr("kernel", &func.name);
        let summary = synthesize(func, config)?.summary();
        *entry = Some(summary);
        everest_telemetry::metrics()
            .observe("dse.hls.cache.miss_synthesis_us", start.elapsed().as_secs_f64() * 1e6);
        Ok(summary)
    }
}

/// The process-wide synthesis cache shared by every DSE run. Entries are
/// pure functions of kernel structure and configuration, so sharing
/// across compiles (and across structurally identical kernels) is safe.
pub fn global() -> &'static SynthCache {
    static CACHE: OnceLock<SynthCache> = OnceLock::new();
    CACHE.get_or_init(SynthCache::new)
}

/// Synthesizes through the [`global`] cache.
///
/// # Errors
///
/// Propagates [`crate::HlsError`] from synthesis on a cache miss.
pub fn synthesize_cached(func: &Func, config: &HlsConfig) -> HlsResult<SynthSummary> {
    global().get_or_synthesize(func, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(src: &str, name: &str) -> Func {
        everest_dsl::compile_kernels(src).unwrap().func(name).unwrap().clone()
    }

    #[test]
    fn fingerprint_ignores_kernel_name() {
        let a = kernel("kernel a(x: tensor<16xf64>) -> tensor<16xf64> { return relu(x); }", "a");
        let b =
            kernel("kernel bbb(x: tensor<16xf64>) -> tensor<16xf64> { return relu(x); }", "bbb");
        assert_eq!(func_fingerprint(&a), func_fingerprint(&b));
    }

    #[test]
    fn fingerprint_separates_different_bodies() {
        let a = kernel("kernel k(x: tensor<16xf64>) -> tensor<16xf64> { return relu(x); }", "k");
        let b = kernel("kernel k(x: tensor<16xf64>) -> tensor<16xf64> { return sigmoid(x); }", "k");
        let c = kernel("kernel k(x: tensor<32xf64>) -> tensor<32xf64> { return relu(x); }", "k");
        assert_ne!(func_fingerprint(&a), func_fingerprint(&b));
        assert_ne!(func_fingerprint(&a), func_fingerprint(&c));
    }

    #[test]
    fn config_key_ignores_nothing_relevant() {
        let base = HlsConfig::default();
        assert_eq!(ConfigKey::of(&base), ConfigKey::of(&base.clone()));
        for changed in [
            HlsConfig { banks: base.banks + 1, ..base.clone() },
            HlsConfig { pe: base.pe + 1, ..base.clone() },
            HlsConfig { pipeline: !base.pipeline, ..base.clone() },
            HlsConfig { clock_mhz: base.clock_mhz * 2.0, ..base.clone() },
            HlsConfig { assoc_reduction: !base.assoc_reduction, ..base.clone() },
            HlsConfig { dift: Some(crate::dift::DiftConfig::default()), ..base.clone() },
        ] {
            assert_ne!(ConfigKey::of(&base), ConfigKey::of(&changed));
        }
    }

    #[test]
    fn cache_hits_return_identical_summaries() {
        let f = kernel(
            "kernel mm(a: tensor<8x8xf64>, b: tensor<8x8xf64>) -> tensor<8x8xf64> { return a @ b; }",
            "mm",
        );
        let cache = SynthCache::new();
        let config = HlsConfig::default();
        let first = cache.get_or_synthesize(&f, &config).unwrap();
        let second = cache.get_or_synthesize(&f, &config).unwrap();
        assert_eq!(first, second);
        assert_eq!(cache.len(), 1);
        let direct = synthesize(&f, &config).unwrap().summary();
        assert_eq!(first, direct, "cached summary must match direct synthesis bit-for-bit");
    }

    #[test]
    fn structurally_identical_kernels_share_one_entry() {
        let a = kernel("kernel a(x: tensor<32xf64>) -> tensor<32xf64> { return relu(x); }", "a");
        let b = kernel("kernel b(x: tensor<32xf64>) -> tensor<32xf64> { return relu(x); }", "b");
        let cache = SynthCache::new();
        cache.get_or_synthesize(&a, &HlsConfig::default()).unwrap();
        cache.get_or_synthesize(&b, &HlsConfig::default()).unwrap();
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn failures_are_not_cached() {
        let f = kernel("kernel id(a: tensor<4xf64>) -> tensor<4xf64> { return a; }", "id");
        let cache = SynthCache::new();
        let bad = HlsConfig { banks: 0, ..HlsConfig::default() };
        assert!(cache.get_or_synthesize(&f, &bad).is_err());
        assert_eq!(cache.len(), 0);
        assert!(cache.get_or_synthesize(&f, &HlsConfig::default()).is_ok());
    }

    #[test]
    fn hit_and_miss_latencies_are_recorded() {
        let f = kernel("kernel h(x: tensor<16xf64>) -> tensor<16xf64> { return relu(x); }", "h");
        let cache = SynthCache::new();
        let before = everest_telemetry::metrics().snapshot();
        cache.get_or_synthesize(&f, &HlsConfig::default()).unwrap();
        cache.get_or_synthesize(&f, &HlsConfig::default()).unwrap();
        let after = everest_telemetry::metrics().snapshot();
        // The registry is process-global and other tests run in
        // parallel, so assert growth rather than exact counts.
        let grew = |name: &str| {
            after.histogram(name).map_or(0, |h| h.count)
                > before.histogram(name).map_or(0, |h| h.count)
        };
        assert!(grew("dse.hls.cache.miss_synthesis_us"), "miss path timed");
        assert!(grew("dse.hls.cache.hit_us"), "hit path timed");
    }

    #[test]
    fn clear_forgets_entries() {
        let f = kernel("kernel id(a: tensor<4xf64>) -> tensor<4xf64> { return a; }", "id");
        let cache = SynthCache::new();
        cache.get_or_synthesize(&f, &HlsConfig::default()).unwrap();
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }
}
