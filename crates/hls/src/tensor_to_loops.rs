//! Lowering of `tensor`-dialect kernels into explicit memref loop nests —
//! the representation the HLS scheduler actually synthesizes.
//!
//! Conventions of the lowered form:
//!
//! * every tensor parameter becomes an on-chip `memref<..., scratch>`
//!   parameter;
//! * the returned tensor becomes a trailing **output memref parameter**
//!   (out-argument style, as HLS kernels are typically interfaced);
//! * intermediate tensors become `mem.alloc`ed scratch buffers;
//! * `tensor.stencil` applies a 1-D convolution along the **last**
//!   dimension; border elements (within the stencil radius) are copied
//!   through unchanged.

use crate::error::{HlsError, HlsResult};
use everest_ir::attr::Attr;
use everest_ir::types::MemSpace;
use everest_ir::{Func, FuncBuilder, Op, Type, Value};
use std::collections::HashMap;

/// Lowers a straight-line tensor-dialect function into a loop-nest function
/// over memrefs, named `<name>_loops`.
///
/// # Errors
///
/// Returns [`HlsError::Unsupported`] for ops outside the supported tensor
/// subset and [`HlsError::Lower`] for structural problems.
pub fn lower_to_loops(func: &Func) -> HlsResult<Func> {
    let entry =
        func.body.entry().ok_or_else(|| HlsError::Lower("function has no entry block".into()))?;

    // The value returned by the kernel (written into the out-parameter).
    let ret_op = entry
        .terminator()
        .filter(|t| t.name == "func.return")
        .ok_or_else(|| HlsError::Lower("kernel must end in func.return".into()))?;
    if ret_op.operands.len() != 1 {
        return Err(HlsError::Unsupported("kernels must return exactly one value".into()));
    }
    let ret_val = ret_op.operands[0];
    let ret_ty = func.value_type(ret_val).clone();
    let Type::Tensor { elem: ret_elem, shape: ret_shape } = &ret_ty else {
        return Err(HlsError::Unsupported(format!("non-tensor return type {ret_ty}")));
    };

    // Build the new signature: tensor params -> scratch memrefs, plus the
    // trailing output buffer.
    let mut params = Vec::new();
    for p in &func.params {
        params.push(match p {
            Type::Tensor { elem, shape } => {
                Type::memref((**elem).clone(), shape, MemSpace::Scratchpad)
            }
            scalar if scalar.is_scalar() => scalar.clone(),
            other => {
                return Err(HlsError::Unsupported(format!("parameter type {other}")));
            }
        });
    }
    params.push(Type::memref((**ret_elem).clone(), ret_shape, MemSpace::Scratchpad));
    let mut fb = FuncBuilder::new(format!("{}_loops", func.name), &params, &[]);
    fb.set_func_attr("hls.lowered_from", func.name.as_str());
    let out_buf = fb.arg(params.len() - 1);

    // Map original SSA values to lowered values (scalars) or buffers.
    let mut env: HashMap<Value, Value> = HashMap::new();
    for (i, _) in func.params.iter().enumerate() {
        env.insert(func.arg(i), fb.arg(i));
    }

    for op in &entry.ops {
        match op.name.as_str() {
            "func.return" => {
                // If the returned value's buffer is not the out-param (e.g.
                // identity kernels returning an input), copy it over.
                let src = env[&ret_val];
                if src != out_buf {
                    emit_copy(&mut fb, src, out_buf, ret_shape, ret_elem);
                }
            }
            "arith.constant" => {
                let ty = func.value_type(op.results[0]).clone();
                let attr = op.attr("value").cloned().unwrap_or(Attr::Float(0.0));
                let v = match attr {
                    Attr::Float(x) => fb.const_f(x, ty),
                    Attr::Int(x) => fb.const_i(x, ty),
                    other => {
                        return Err(HlsError::Unsupported(format!("constant payload {other}")))
                    }
                };
                env.insert(op.results[0], v);
            }
            name if name.starts_with("arith.") => {
                // Scalar arithmetic between lowered scalars.
                let ty = func.value_type(op.results[0]).clone();
                let mut new_op = Op::new(name);
                new_op.operands = op.operands.iter().map(|v| env[v]).collect();
                new_op.attrs = op.attrs.clone();
                let r = fb.op1(new_op, ty);
                env.insert(op.results[0], r);
            }
            name if name.starts_with("tensor.") => {
                let dest = dest_buffer(&mut fb, func, op, ret_val, out_buf)?;
                lower_tensor_op(&mut fb, func, op, &env, dest)?;
                env.insert(op.results[0], dest);
            }
            other => {
                return Err(HlsError::Unsupported(format!("op '{other}' in tensor kernel")));
            }
        }
    }
    fb.ret(&[]);
    Ok(fb.finish())
}

/// Picks (or allocates) the buffer an op writes into: the out-parameter when
/// the op produces the returned value, a fresh scratch buffer otherwise.
fn dest_buffer(
    fb: &mut FuncBuilder,
    func: &Func,
    op: &Op,
    ret_val: Value,
    out_buf: Value,
) -> HlsResult<Value> {
    if op.results[0] == ret_val {
        return Ok(out_buf);
    }
    let ty = func.value_type(op.results[0]);
    let Type::Tensor { elem, shape } = ty else {
        return Err(HlsError::Unsupported(format!("tensor op with non-tensor result {ty}")));
    };
    let buf_ty = Type::memref((**elem).clone(), shape, MemSpace::Scratchpad);
    Ok(fb.op1(Op::new("mem.alloc"), buf_ty))
}

fn shape_of(func: &Func, v: Value) -> Vec<usize> {
    func.value_type(v).shape().map(<[usize]>::to_vec).unwrap_or_default()
}

fn elem_of(func: &Func, v: Value) -> Type {
    func.value_type(v).elem().cloned().unwrap_or(Type::F64)
}

/// Emits nested loops over `shape`, calling `body` with the index values.
fn nest(
    fb: &mut FuncBuilder,
    shape: &[usize],
    idx: &mut Vec<Value>,
    body: &mut dyn FnMut(&mut FuncBuilder, &[Value]),
) {
    if shape.is_empty() {
        body(fb, idx);
        return;
    }
    let (dim, rest) = (shape[0], &shape[1..]);
    fb.for_loop(0, dim as i64, 1, &[], |fb, iv, _| {
        idx.push(iv);
        nest(fb, rest, idx, body);
        idx.pop();
        vec![]
    });
}

fn emit_copy(fb: &mut FuncBuilder, src: Value, dst: Value, shape: &[usize], elem: &Type) {
    let elem = elem.clone();
    nest(fb, shape, &mut Vec::new(), &mut |fb, idx| {
        let v = fb.load(src, idx, elem.clone());
        fb.store(v, dst, idx);
    });
}

fn lower_tensor_op(
    fb: &mut FuncBuilder,
    func: &Func,
    op: &Op,
    env: &HashMap<Value, Value>,
    dest: Value,
) -> HlsResult<()> {
    let elem = elem_of(func, op.results[0]);
    let float_suffix = |base: &str| -> String { format!("arith.{base}") };
    match op.name.as_str() {
        "tensor.matmul" => {
            let (a, b) = (env[&op.operands[0]], env[&op.operands[1]]);
            let a_shape = shape_of(func, op.operands[0]);
            let b_shape = shape_of(func, op.operands[1]);
            let (m, k, n) = (a_shape[0], a_shape[1], b_shape[1]);
            let elem2 = elem.clone();
            fb.for_loop(0, m as i64, 1, &[], |fb, i, _| {
                let elem3 = elem2.clone();
                fb.for_loop(0, n as i64, 1, &[], |fb, j, _| {
                    let zero = fb.const_f(0.0, elem3.clone());
                    let elem4 = elem3.clone();
                    let sum = fb.for_loop(0, k as i64, 1, &[zero], |fb, kk, carried| {
                        let av = fb.load(a, &[i, kk], elem4.clone());
                        let bv = fb.load(b, &[kk, j], elem4.clone());
                        let prod = fb.binary("arith.mulf", av, bv, elem4.clone());
                        vec![fb.binary("arith.addf", carried[0], prod, elem4.clone())]
                    })[0];
                    fb.store(sum, dest, &[i, j]);
                    vec![]
                });
                vec![]
            });
            Ok(())
        }
        "tensor.add" | "tensor.sub" | "tensor.mul" => {
            let base = match op.name.as_str() {
                "tensor.add" => "addf",
                "tensor.sub" => "subf",
                _ => "mulf",
            };
            let (a, b) = (env[&op.operands[0]], env[&op.operands[1]]);
            let shape = shape_of(func, op.operands[0]);
            let name = float_suffix(base);
            let elem2 = elem.clone();
            nest(fb, &shape, &mut Vec::new(), &mut |fb, idx| {
                let av = fb.load(a, idx, elem2.clone());
                let bv = fb.load(b, idx, elem2.clone());
                let r = fb.binary(&name, av, bv, elem2.clone());
                fb.store(r, dest, idx);
            });
            Ok(())
        }
        "tensor.scale" => {
            let (s, t) = (env[&op.operands[0]], env[&op.operands[1]]);
            let shape = shape_of(func, op.operands[1]);
            let elem2 = elem.clone();
            nest(fb, &shape, &mut Vec::new(), &mut |fb, idx| {
                let tv = fb.load(t, idx, elem2.clone());
                let r = fb.binary("arith.mulf", s, tv, elem2.clone());
                fb.store(r, dest, idx);
            });
            Ok(())
        }
        "tensor.transpose" => {
            let a = env[&op.operands[0]];
            let perm: Vec<usize> = op
                .attr("perm")
                .and_then(Attr::to_ints)
                .ok_or_else(|| HlsError::Lower("transpose without perm".into()))?
                .iter()
                .map(|p| *p as usize)
                .collect();
            let out_shape = shape_of(func, op.results[0]);
            let elem2 = elem.clone();
            // out[idx] = in[perm applied inversely]: out dim d comes from in
            // dim perm[d], so in index at position perm[d] is idx[d].
            nest(fb, &out_shape, &mut Vec::new(), &mut |fb, idx| {
                let mut in_idx = vec![idx[0]; perm.len()];
                for (d, p) in perm.iter().enumerate() {
                    in_idx[*p] = idx[d];
                }
                let v = fb.load(a, &in_idx, elem2.clone());
                fb.store(v, dest, idx);
            });
            Ok(())
        }
        "tensor.reduce" => {
            let a = env[&op.operands[0]];
            let dims: Vec<usize> = op
                .attr("dims")
                .and_then(Attr::to_ints)
                .ok_or_else(|| HlsError::Lower("reduce without dims".into()))?
                .iter()
                .map(|d| *d as usize)
                .collect();
            let kind = op
                .attr("kind")
                .and_then(Attr::as_str)
                .ok_or_else(|| HlsError::Lower("reduce without kind".into()))?
                .to_owned();
            let in_shape = shape_of(func, op.operands[0]);
            let kept: Vec<usize> = (0..in_shape.len()).filter(|d| !dims.contains(d)).collect();
            let kept_shape: Vec<usize> = kept.iter().map(|d| in_shape[*d]).collect();
            let red_shape: Vec<usize> = dims.iter().map(|d| in_shape[*d]).collect();
            let count: usize = red_shape.iter().product();
            let init = match kind.as_str() {
                "sum" | "mean" => 0.0,
                "max" => -1.0e308,
                "min" => 1.0e308,
                other => return Err(HlsError::Lower(format!("unknown reduce kind '{other}'"))),
            };
            let combine = match kind.as_str() {
                "sum" | "mean" => "arith.addf",
                "max" => "arith.maxf",
                _ => "arith.minf",
            };
            let elem2 = elem.clone();
            let dims2 = dims.clone();
            let kept2 = kept.clone();
            nest(fb, &kept_shape, &mut Vec::new(), &mut |fb, kept_idx| {
                let init_v = fb.const_f(init, elem2.clone());
                let acc = reduce_nest(
                    fb,
                    a,
                    &red_shape,
                    &dims2,
                    &kept2,
                    kept_idx,
                    &mut Vec::new(),
                    init_v,
                    combine,
                    &elem2,
                    in_shape.len(),
                );
                let result = if kind == "mean" {
                    let n = fb.const_f(count as f64, elem2.clone());
                    fb.binary("arith.divf", acc, n, elem2.clone())
                } else {
                    acc
                };
                fb.store(result, dest, kept_idx);
            });
            Ok(())
        }
        "tensor.stencil" => {
            let a = env[&op.operands[0]];
            let weights: Vec<f64> = op
                .attr("weights")
                .and_then(Attr::as_array)
                .ok_or_else(|| HlsError::Lower("stencil without weights".into()))?
                .iter()
                .filter_map(Attr::as_float)
                .collect();
            let shape = shape_of(func, op.operands[0]);
            let radius = weights.len() / 2;
            let last = *shape.last().ok_or_else(|| HlsError::Lower("stencil on scalar".into()))?;
            if last < weights.len() {
                return Err(HlsError::Lower(format!(
                    "stencil width {} exceeds last dimension {last}",
                    weights.len()
                )));
            }
            let outer = &shape[..shape.len() - 1];
            let elem2 = elem.clone();
            let weights2 = weights.clone();
            nest(fb, outer, &mut Vec::new(), &mut |fb, outer_idx| {
                // Interior: out[.., i] = sum_k w[k] * in[.., i + k - r]
                fb.for_loop(radius as i64, (last - radius) as i64, 1, &[], |fb, i, _| {
                    let mut acc = fb.const_f(0.0, elem2.clone());
                    for (k, w) in weights2.iter().enumerate() {
                        let off = fb.const_i(k as i64 - radius as i64, Type::Index);
                        let pos = fb.binary("arith.addi", i, off, Type::Index);
                        let mut idx = outer_idx.to_vec();
                        idx.push(pos);
                        let v = fb.load(a, &idx, elem2.clone());
                        let wv = fb.const_f(*w, elem2.clone());
                        let prod = fb.binary("arith.mulf", v, wv, elem2.clone());
                        acc = fb.binary("arith.addf", acc, prod, elem2.clone());
                    }
                    let mut idx = outer_idx.to_vec();
                    idx.push(i);
                    fb.store(acc, dest, &idx);
                    vec![]
                });
                // Borders copied through.
                for range in [(0i64, radius as i64), ((last - radius) as i64, last as i64)] {
                    fb.for_loop(range.0, range.1, 1, &[], |fb, i, _| {
                        let mut idx = outer_idx.to_vec();
                        idx.push(i);
                        let v = fb.load(a, &idx, elem2.clone());
                        fb.store(v, dest, &idx);
                        vec![]
                    });
                }
            });
            Ok(())
        }
        "tensor.conv2d" => {
            let (x, k) = (env[&op.operands[0]], env[&op.operands[1]]);
            let in_shape = shape_of(func, op.operands[0]);
            let k_shape = shape_of(func, op.operands[1]);
            let (h, w) = (in_shape[0], in_shape[1]);
            let (kh, kw) = (k_shape[0], k_shape[1]);
            if kh > h || kw > w {
                return Err(HlsError::Lower("conv2d kernel larger than input".into()));
            }
            let (ry, rx) = (kh / 2, kw / 2);
            let elem2 = elem.clone();
            // Interior: out[i,j] = sum_{ky,kx} in[i+ky-ry, j+kx-rx] * k[ky,kx]
            fb.for_loop(ry as i64, (h - ry) as i64, 1, &[], |fb, i, _| {
                let elem3 = elem2.clone();
                fb.for_loop(rx as i64, (w - rx) as i64, 1, &[], |fb, j, _| {
                    let zero = fb.const_f(0.0, elem3.clone());
                    let elem4 = elem3.clone();
                    let acc = fb.for_loop(0, kh as i64, 1, &[zero], |fb, ky, c| {
                        let elem5 = elem4.clone();
                        let row = fb.for_loop(0, kw as i64, 1, &[c[0]], |fb, kx, cc| {
                            let oy = fb.const_i(-(ry as i64), Type::Index);
                            let ox = fb.const_i(-(rx as i64), Type::Index);
                            let dy = fb.binary("arith.addi", ky, oy, Type::Index);
                            let dx = fb.binary("arith.addi", kx, ox, Type::Index);
                            let iy = fb.binary("arith.addi", i, dy, Type::Index);
                            let ix = fb.binary("arith.addi", j, dx, Type::Index);
                            let v = fb.load(x, &[iy, ix], elem5.clone());
                            let wv = fb.load(k, &[ky, kx], elem5.clone());
                            let prod = fb.binary("arith.mulf", v, wv, elem5.clone());
                            vec![fb.binary("arith.addf", cc[0], prod, elem5.clone())]
                        })[0];
                        vec![row]
                    })[0];
                    fb.store(acc, dest, &[i, j]);
                    vec![]
                });
                vec![]
            });
            // Borders copied through (top/bottom rows, then left/right
            // columns of the interior rows).
            let elem_b = elem.clone();
            let copy_rows = |fb: &mut FuncBuilder, lo: i64, hi: i64| {
                let elem_c = elem_b.clone();
                fb.for_loop(lo, hi, 1, &[], |fb, i, _| {
                    let elem_d = elem_c.clone();
                    fb.for_loop(0, w as i64, 1, &[], |fb, j, _| {
                        let v = fb.load(x, &[i, j], elem_d.clone());
                        fb.store(v, dest, &[i, j]);
                        vec![]
                    });
                    vec![]
                });
            };
            copy_rows(fb, 0, ry as i64);
            copy_rows(fb, (h - ry) as i64, h as i64);
            let elem_b2 = elem.clone();
            let copy_cols = |fb: &mut FuncBuilder, lo: i64, hi: i64| {
                let elem_c = elem_b2.clone();
                fb.for_loop(ry as i64, (h - ry) as i64, 1, &[], |fb, i, _| {
                    let elem_d = elem_c.clone();
                    fb.for_loop(lo, hi, 1, &[], |fb, j, _| {
                        let v = fb.load(x, &[i, j], elem_d.clone());
                        fb.store(v, dest, &[i, j]);
                        vec![]
                    });
                    vec![]
                });
            };
            copy_cols(fb, 0, rx as i64);
            copy_cols(fb, (w - rx) as i64, w as i64);
            Ok(())
        }
        "tensor.relu" => {
            let a = env[&op.operands[0]];
            let shape = shape_of(func, op.operands[0]);
            let elem2 = elem.clone();
            nest(fb, &shape, &mut Vec::new(), &mut |fb, idx| {
                let v = fb.load(a, idx, elem2.clone());
                let zero = fb.const_f(0.0, elem2.clone());
                let r = fb.binary("arith.maxf", v, zero, elem2.clone());
                fb.store(r, dest, idx);
            });
            Ok(())
        }
        "tensor.sigmoid" => {
            let a = env[&op.operands[0]];
            let shape = shape_of(func, op.operands[0]);
            let elem2 = elem.clone();
            nest(fb, &shape, &mut Vec::new(), &mut |fb, idx| {
                let v = fb.load(a, idx, elem2.clone());
                let neg = fb.unary("arith.negf", v, elem2.clone());
                let e = fb.unary("arith.expf", neg, elem2.clone());
                let one = fb.const_f(1.0, elem2.clone());
                let denom = fb.binary("arith.addf", one, e, elem2.clone());
                let r = fb.binary("arith.divf", one, denom, elem2.clone());
                fb.store(r, dest, idx);
            });
            Ok(())
        }
        "tensor.fill" => {
            let value = op.attr("value").and_then(Attr::as_float).unwrap_or(0.0);
            let shape = shape_of(func, op.results[0]);
            let elem2 = elem.clone();
            nest(fb, &shape, &mut Vec::new(), &mut |fb, idx| {
                let v = fb.const_f(value, elem2.clone());
                fb.store(v, dest, idx);
            });
            Ok(())
        }
        other => Err(HlsError::Unsupported(format!("tensor op '{other}'"))),
    }
}

/// Emits the reduction loop nest over the reduced dimensions, carrying the
/// accumulator through each level, and returns the final accumulator.
#[allow(clippy::too_many_arguments)]
fn reduce_nest(
    fb: &mut FuncBuilder,
    src: Value,
    red_shape: &[usize],
    dims: &[usize],
    kept: &[usize],
    kept_idx: &[Value],
    red_idx: &mut Vec<Value>,
    acc_in: Value,
    combine: &str,
    elem: &Type,
    rank: usize,
) -> Value {
    if red_shape.is_empty() {
        // Assemble the full index: kept dims from kept_idx, reduced dims
        // from red_idx.
        let mut idx = vec![red_idx.first().copied().unwrap_or(kept_idx[0]); rank];
        for (pos, d) in kept.iter().enumerate() {
            idx[*d] = kept_idx[pos];
        }
        for (pos, d) in dims.iter().enumerate() {
            idx[*d] = red_idx[pos];
        }
        let v = fb.load(src, &idx, elem.clone());
        return fb.binary(combine, acc_in, v, elem.clone());
    }
    let (dim, rest) = (red_shape[0], &red_shape[1..]);
    let elem2 = elem.clone();
    let combine2 = combine.to_owned();
    let rest2 = rest.to_vec();
    let dims2 = dims.to_vec();
    let kept2 = kept.to_vec();
    let kept_idx2 = kept_idx.to_vec();
    let mut red_idx2 = std::mem::take(red_idx);
    fb.for_loop(0, dim as i64, 1, &[acc_in], |fb, iv, carried| {
        red_idx2.push(iv);
        let r = reduce_nest(
            fb,
            src,
            &rest2,
            &dims2,
            &kept2,
            &kept_idx2,
            &mut red_idx2,
            carried[0],
            &combine2,
            &elem2,
            rank,
        );
        red_idx2.pop();
        vec![r]
    })[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_ir::verify::verify_func;

    fn lower(src: &str, kernel: &str) -> Func {
        let module = everest_dsl::compile_kernels(src).unwrap();
        let f = lower_to_loops(module.func(kernel).unwrap()).unwrap();
        verify_func(&f).unwrap_or_else(|e| panic!("lowered func invalid: {e}\n"));
        f
    }

    fn count_ops(f: &Func, name: &str) -> usize {
        let mut n = 0;
        f.walk(&mut |op| {
            if op.name == name {
                n += 1;
            }
        });
        n
    }

    #[test]
    fn matmul_lowers_to_triple_loop() {
        let f = lower(
            "kernel mm(a: tensor<4x6xf64>, b: tensor<6x2xf64>) -> tensor<4x2xf64> { return a @ b; }",
            "mm",
        );
        assert_eq!(count_ops(&f, "loop.for"), 3);
        assert_eq!(count_ops(&f, "mem.load"), 2);
        assert_eq!(count_ops(&f, "mem.store"), 1);
        assert_eq!(count_ops(&f, "arith.mulf"), 1);
        // Result goes straight into the out-parameter: no alloc needed.
        assert_eq!(count_ops(&f, "mem.alloc"), 0);
        assert_eq!(f.params.len(), 3);
    }

    #[test]
    fn intermediate_tensors_get_scratch_buffers() {
        let f = lower(
            "kernel f(a: tensor<8xf64>, b: tensor<8xf64>) -> tensor<8xf64> { var c = a + b; return relu(c); }",
            "f",
        );
        assert_eq!(count_ops(&f, "mem.alloc"), 1);
    }

    #[test]
    fn identity_kernel_emits_copy() {
        let f = lower("kernel id(a: tensor<16xf64>) -> tensor<16xf64> { return a; }", "id");
        assert_eq!(count_ops(&f, "mem.load"), 1);
        assert_eq!(count_ops(&f, "mem.store"), 1);
        assert_eq!(count_ops(&f, "loop.for"), 1);
    }

    #[test]
    fn transpose_permutes_load_indices() {
        let f = lower(
            "kernel t(a: tensor<3x5xf64>) -> tensor<5x3xf64> { return transpose(a, [1, 0]); }",
            "t",
        );
        assert_eq!(count_ops(&f, "loop.for"), 2);
        assert_eq!(count_ops(&f, "mem.load"), 1);
    }

    #[test]
    fn reduce_sum_carries_accumulator() {
        let f = lower(
            "kernel r(a: tensor<4x8xf64>) -> tensor<4xf64> { return reduce_sum(a, [1]); }",
            "r",
        );
        assert_eq!(count_ops(&f, "loop.for"), 2);
        assert_eq!(count_ops(&f, "arith.addf"), 1);
    }

    #[test]
    fn reduce_mean_divides_by_count() {
        let f = lower(
            "kernel r(a: tensor<4x8xf64>) -> tensor<4xf64> { return reduce_mean(a, [1]); }",
            "r",
        );
        assert_eq!(count_ops(&f, "arith.divf"), 1);
    }

    #[test]
    fn stencil_emits_weighted_neighbours_and_borders() {
        let f = lower(
            "kernel s(a: tensor<32xf64>) -> tensor<32xf64> { return stencil(a, [0.25, 0.5, 0.25]); }",
            "s",
        );
        // 3 weighted loads in the interior loop + 1 border-copy load per
        // border loop.
        assert_eq!(count_ops(&f, "mem.load"), 5);
        assert_eq!(count_ops(&f, "loop.for"), 3);
        assert_eq!(count_ops(&f, "arith.mulf"), 3);
    }

    #[test]
    fn sigmoid_lowers_to_exp_chain() {
        let f = lower("kernel g(a: tensor<8xf64>) -> tensor<8xf64> { return sigmoid(a); }", "g");
        assert_eq!(count_ops(&f, "arith.expf"), 1);
        assert_eq!(count_ops(&f, "arith.divf"), 1);
    }

    #[test]
    fn scalar_params_stay_scalar() {
        let f =
            lower("kernel sc(a: tensor<8xf64>, k: f64) -> tensor<8xf64> { return k * a; }", "sc");
        assert_eq!(f.params[1], Type::F64);
        assert_eq!(count_ops(&f, "arith.mulf"), 1);
    }

    #[test]
    fn conv2d_lowers_to_six_level_nest_plus_borders() {
        let f = lower(
            "kernel c(x: tensor<16x16xf64>, k: tensor<3x3xf64>) -> tensor<16x16xf64> { return conv2d(x, k); }",
            "c",
        );
        // Interior: 4 loops (i, j, ky, kx); borders: 4 copy nests of 2 each.
        assert_eq!(count_ops(&f, "loop.for"), 4 + 8);
        assert_eq!(count_ops(&f, "arith.mulf"), 1);
        // Loads: input + kernel in the interior, plus 4 border copies.
        assert_eq!(count_ops(&f, "mem.load"), 2 + 4);
    }

    #[test]
    fn conv2d_synthesizes() {
        let module = everest_dsl::compile_kernels(
            "kernel c(x: tensor<16x16xf64>, k: tensor<3x3xf64>) -> tensor<16x16xf64> { return conv2d(x, k); }",
        )
        .unwrap();
        let acc = crate::accel::synthesize(
            module.func("c").unwrap(),
            &crate::accel::HlsConfig::default(),
        )
        .unwrap();
        assert!(acc.latency_cycles > 0);
        assert!(acc.area.luts > 0);
    }

    #[test]
    fn stencil_wider_than_dim_rejected() {
        let module = everest_dsl::compile_kernels(
            "kernel s(a: tensor<2xf64>) -> tensor<2xf64> { return stencil(a, [0.2, 0.2, 0.2, 0.2, 0.2]); }",
        )
        .unwrap();
        let err = lower_to_loops(module.func("s").unwrap()).unwrap_err();
        assert!(matches!(err, HlsError::Lower(_)));
    }
}
