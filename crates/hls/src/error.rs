//! HLS engine errors.

use std::fmt;

/// Result alias for HLS operations.
pub type HlsResult<T> = Result<T, HlsError>;

/// Errors raised by the HLS flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HlsError {
    /// The input function uses an op the HLS flow cannot synthesize.
    Unsupported(String),
    /// Scheduling could not satisfy resource constraints.
    Schedule(String),
    /// The requested configuration is invalid (e.g. zero banks).
    Config(String),
    /// Lowering tensor ops to loops failed.
    Lower(String),
}

impl fmt::Display for HlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HlsError::Unsupported(what) => write!(f, "unsupported construct: {what}"),
            HlsError::Schedule(msg) => write!(f, "scheduling failed: {msg}"),
            HlsError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            HlsError::Lower(msg) => write!(f, "lowering failed: {msg}"),
        }
    }
}

impl std::error::Error for HlsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            HlsError::Unsupported("cf.br".into()).to_string(),
            "unsupported construct: cf.br"
        );
        assert_eq!(
            HlsError::Config("0 banks".into()).to_string(),
            "invalid configuration: 0 banks"
        );
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_err<T: std::error::Error + Send + Sync>() {}
        assert_err::<HlsError>();
    }
}
