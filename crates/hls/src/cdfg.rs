//! Control/data-flow graph construction from IR blocks.
//!
//! Each straight-line block becomes one [`Dfg`] whose nodes are the block's
//! operations (terminators excluded) and whose edges are:
//!
//! * **SSA dependences** — producer before consumer;
//! * **memory dependences** — accesses to the same buffer are ordered
//!   conservatively (store→load, store→store, load→store), which is what a
//!   scheduler without alias analysis must assume.
//!
//! Nested `loop.for` ops appear as *macro nodes* whose latency the caller
//! supplies (computed bottom-up by [`crate::accel`]).

use crate::oplib::{fu_for_op, latency_for_op, FuKind};
use everest_ir::{Block, Func, Value};
use std::collections::HashMap;

/// Index of a node within a [`Dfg`].
pub type NodeId = usize;

/// One node of the data-flow graph.
#[derive(Debug, Clone)]
pub struct DfgNode {
    /// IR op name.
    pub name: String,
    /// Functional unit this op occupies, if any.
    pub fu: Option<FuKind>,
    /// Latency in cycles (0 for free ops such as constants).
    pub latency: u64,
    /// Predecessor node ids (dependences).
    pub preds: Vec<NodeId>,
    /// Successor node ids.
    pub succs: Vec<NodeId>,
    /// For memory ops: the buffer value they touch.
    pub buffer: Option<Value>,
    /// Whether this node (transitively) consumes a loop-carried block arg.
    pub uses_carried: bool,
    /// SSA results of the underlying op.
    pub results: Vec<Value>,
    /// SSA operands of the underlying op.
    pub operands: Vec<Value>,
}

/// A data-flow graph over one block.
#[derive(Debug, Clone, Default)]
pub struct Dfg {
    /// Nodes in original program order (a valid topological order).
    pub nodes: Vec<DfgNode>,
    /// Values yielded/returned by the block terminator.
    pub terminator_operands: Vec<Value>,
}

impl Dfg {
    /// Builds the DFG of `block` in `func`.
    ///
    /// `loop_latencies` supplies the latency of each nested `loop.for`
    /// (keyed by op position in the block); loops without an entry default
    /// to latency 1.
    pub fn from_block(func: &Func, block: &Block, loop_latencies: &HashMap<usize, u64>) -> Dfg {
        let mut nodes: Vec<DfgNode> = Vec::new();
        // Producer map: value -> node that defines it.
        let mut producer: HashMap<Value, NodeId> = HashMap::new();
        // Carried block args (all args beyond the induction variable for
        // loop bodies; for entry blocks this set is empty of effect since
        // nothing is "carried", but consuming any block arg beyond arg 0 in
        // a loop body marks a recurrence).
        let carried: Vec<Value> = block.args.iter().skip(1).copied().collect();
        // Last writer / readers per buffer for memory ordering.
        let mut last_store: HashMap<Value, NodeId> = HashMap::new();
        let mut loads_since_store: HashMap<Value, Vec<NodeId>> = HashMap::new();
        // `loop.for` and `func.call` macro nodes may touch any buffer, so
        // they act as memory fences: every effectful node before a fence
        // precedes it, and everything after depends on the fence.
        let mut effectful: Vec<NodeId> = Vec::new();
        let mut last_fence: Option<NodeId> = None;

        let op_count = block.ops.len();
        let mut terminator_operands = Vec::new();
        for (pos, op) in block.ops.iter().enumerate() {
            let is_terminator =
                pos + 1 == op_count && everest_ir::registry::is_terminator(&op.name);
            if is_terminator {
                terminator_operands = op.operands.clone();
                break;
            }
            let id = nodes.len();
            let latency = if op.name == "loop.for" {
                *loop_latencies.get(&pos).unwrap_or(&1)
            } else {
                latency_for_op(&op.name)
            };
            let buffer = match op.name.as_str() {
                "mem.load" => Some(op.operands[0]),
                "mem.store" => Some(op.operands[1]),
                _ => None,
            };
            let mut node = DfgNode {
                name: op.name.clone(),
                fu: fu_for_op(&op.name),
                latency,
                preds: Vec::new(),
                succs: Vec::new(),
                buffer,
                uses_carried: false,
                results: op.results.clone(),
                operands: op.operands.clone(),
            };
            // SSA edges + carried-arg propagation.
            for operand in &op.operands {
                if carried.contains(operand) {
                    node.uses_carried = true;
                }
                if let Some(p) = producer.get(operand) {
                    if !node.preds.contains(p) {
                        node.preds.push(*p);
                        node.uses_carried |= nodes[*p].uses_carried;
                    }
                }
            }
            // Fence semantics for macro nodes with opaque memory behaviour.
            let is_fence = matches!(op.name.as_str(), "loop.for" | "func.call");
            if is_fence {
                for e in effectful.drain(..) {
                    if !node.preds.contains(&e) {
                        node.preds.push(e);
                    }
                }
                if let Some(fence) = last_fence {
                    if !node.preds.contains(&fence) {
                        node.preds.push(fence);
                    }
                }
                last_fence = Some(id);
                last_store.clear();
                loads_since_store.clear();
            } else if buffer.is_some() {
                if let Some(fence) = last_fence {
                    if !node.preds.contains(&fence) {
                        node.preds.push(fence);
                    }
                }
                effectful.push(id);
            }
            // Memory ordering edges.
            if let Some(buf) = buffer {
                match op.name.as_str() {
                    "mem.load" => {
                        if let Some(s) = last_store.get(&buf) {
                            if !node.preds.contains(s) {
                                node.preds.push(*s);
                            }
                        }
                        loads_since_store.entry(buf).or_default().push(id);
                    }
                    "mem.store" => {
                        if let Some(s) = last_store.get(&buf) {
                            if !node.preds.contains(s) {
                                node.preds.push(*s);
                            }
                        }
                        for l in loads_since_store.remove(&buf).unwrap_or_default() {
                            if !node.preds.contains(&l) {
                                node.preds.push(l);
                            }
                        }
                        last_store.insert(buf, id);
                    }
                    _ => {}
                }
            }
            for result in &op.results {
                producer.insert(*result, id);
            }
            nodes.push(node);
        }
        // Fill successor lists.
        let edges: Vec<(NodeId, NodeId)> = nodes
            .iter()
            .enumerate()
            .flat_map(|(id, n)| n.preds.iter().map(move |p| (*p, id)))
            .collect();
        for (from, to) in edges {
            nodes[from].succs.push(to);
        }
        let _ = func; // reserved for future type-driven edge refinement
        Dfg { nodes, terminator_operands }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Count of nodes that occupy the given functional-unit kind.
    pub fn count_fu(&self, kind: FuKind) -> usize {
        self.nodes.iter().filter(|n| n.fu == Some(kind)).count()
    }

    /// The critical-path length in cycles (unconstrained ASAP makespan).
    pub fn critical_path(&self) -> u64 {
        let mut finish = vec![0u64; self.nodes.len()];
        let mut longest = 0;
        for (id, node) in self.nodes.iter().enumerate() {
            let start = node.preds.iter().map(|p| finish[*p]).max().unwrap_or(0);
            finish[id] = start + node.latency;
            longest = longest.max(finish[id]);
        }
        longest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_ir::types::MemSpace;
    use everest_ir::{FuncBuilder, Type};

    fn build_axpy_block() -> (Func, usize) {
        // r = a*x + y over scalars (no loops) to test SSA edges.
        let mut fb = FuncBuilder::new("f", &[Type::F64, Type::F64, Type::F64], &[Type::F64]);
        let p = fb.binary("arith.mulf", fb.arg(0), fb.arg(1), Type::F64);
        let s = fb.binary("arith.addf", p, fb.arg(2), Type::F64);
        fb.ret(&[s]);
        (fb.finish(), 2)
    }

    #[test]
    fn ssa_edges_connect_producer_to_consumer() {
        let (f, n) = build_axpy_block();
        let dfg = Dfg::from_block(&f, f.body.entry().unwrap(), &HashMap::new());
        assert_eq!(dfg.len(), n);
        assert_eq!(dfg.nodes[1].preds, vec![0]);
        assert_eq!(dfg.nodes[0].succs, vec![1]);
        assert_eq!(dfg.terminator_operands.len(), 1);
    }

    #[test]
    fn critical_path_sums_latencies() {
        let (f, _) = build_axpy_block();
        let dfg = Dfg::from_block(&f, f.body.entry().unwrap(), &HashMap::new());
        // mulf (4) then addf (3).
        assert_eq!(dfg.critical_path(), 7);
    }

    #[test]
    fn memory_edges_order_accesses_to_same_buffer() {
        let buf = Type::memref(Type::F64, &[8], MemSpace::Scratchpad);
        let mut fb = FuncBuilder::new("m", &[buf], &[]);
        let i = fb.const_i(0, Type::Index);
        let v = fb.load(fb.arg(0), &[i], Type::F64);
        let w = fb.binary("arith.addf", v, v, Type::F64);
        fb.store(w, fb.arg(0), &[i]);
        let v2 = fb.load(fb.arg(0), &[i], Type::F64);
        fb.store(v2, fb.arg(0), &[i]);
        fb.ret(&[]);
        let f = fb.finish();
        let dfg = Dfg::from_block(&f, f.body.entry().unwrap(), &HashMap::new());
        // nodes: 0 const, 1 load, 2 addf, 3 store, 4 load, 5 store
        assert!(dfg.nodes[3].preds.contains(&1), "store after load (anti-dep)");
        assert!(dfg.nodes[4].preds.contains(&3), "load after store (true dep)");
        assert!(dfg.nodes[5].preds.contains(&3), "store after store (output dep)");
    }

    #[test]
    fn different_buffers_do_not_serialize() {
        let buf = Type::memref(Type::F64, &[8], MemSpace::Scratchpad);
        let mut fb = FuncBuilder::new("m", &[buf.clone(), buf], &[]);
        let i = fb.const_i(0, Type::Index);
        let a = fb.load(fb.arg(0), &[i], Type::F64);
        let b = fb.load(fb.arg(1), &[i], Type::F64);
        fb.store(a, fb.arg(1), &[i]);
        fb.store(b, fb.arg(0), &[i]);
        fb.ret(&[]);
        let f = fb.finish();
        let dfg = Dfg::from_block(&f, f.body.entry().unwrap(), &HashMap::new());
        // The two loads (nodes 1, 2) are independent.
        assert!(dfg.nodes[2].preds.is_empty() || dfg.nodes[2].preds == vec![0]);
    }

    #[test]
    fn carried_args_mark_recurrences() {
        let mut fb = FuncBuilder::new("l", &[], &[Type::F64]);
        let init = fb.const_f(0.0, Type::F64);
        fb.for_loop(0, 4, 1, &[init], |fb, _iv, c| {
            let one = fb.const_f(1.0, Type::F64);
            vec![fb.binary("arith.addf", c[0], one, Type::F64)]
        });
        let f = fb.finish();
        let entry = f.body.entry().unwrap();
        let loop_op = entry.ops.iter().find(|o| o.name == "loop.for").unwrap();
        let body = loop_op.regions[0].entry().unwrap();
        let dfg = Dfg::from_block(&f, body, &HashMap::new());
        // const is not carried; addf consumes the carried arg.
        let addf = dfg.nodes.iter().find(|n| n.name == "arith.addf").unwrap();
        assert!(addf.uses_carried);
        let c = dfg.nodes.iter().find(|n| n.name == "arith.constant").unwrap();
        assert!(!c.uses_carried);
    }

    #[test]
    fn loop_macro_nodes_take_supplied_latency() {
        let mut fb = FuncBuilder::new("l", &[], &[]);
        fb.for_loop(0, 4, 1, &[], |_fb, _iv, _c| vec![]);
        fb.ret(&[]);
        let f = fb.finish();
        let mut lat = HashMap::new();
        lat.insert(0usize, 120u64);
        let dfg = Dfg::from_block(&f, f.body.entry().unwrap(), &lat);
        assert_eq!(dfg.nodes[0].latency, 120);
        assert_eq!(dfg.critical_path(), 120);
    }

    #[test]
    fn count_fu_tallies_kinds() {
        let (f, _) = build_axpy_block();
        let dfg = Dfg::from_block(&f, f.body.entry().unwrap(), &HashMap::new());
        assert_eq!(dfg.count_fu(FuKind::FMul), 1);
        assert_eq!(dfg.count_fu(FuKind::FAdd), 1);
        assert_eq!(dfg.count_fu(FuKind::FDiv), 0);
    }
}
