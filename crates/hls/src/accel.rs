//! The top-level HLS driver: from a kernel function to an
//! [`Accelerator`] with latency, area, II and RTL artifacts.

use crate::binding::{bind, Binding};
use crate::cdfg::Dfg;
use crate::dift::{instrument, DiftConfig, DiftReport};
use crate::error::{HlsError, HlsResult};
use crate::memory::{Partitioning, Scheme};
use crate::oplib::AreaReport;
use crate::pipeline;
use crate::rtl;
use crate::schedule::{list_schedule, ResourceBudget};
use crate::tensor_to_loops::lower_to_loops;
use everest_ir::attr::Attr;
use everest_ir::{Block, Func, Type, Value};
use std::collections::HashMap;

/// Configuration of one synthesis run.
#[derive(Debug, Clone)]
pub struct HlsConfig {
    /// Functional-unit budget for scheduling.
    pub budget: ResourceBudget,
    /// Target clock frequency in MHz.
    pub clock_mhz: f64,
    /// Pipeline innermost loops.
    pub pipeline: bool,
    /// Memory banks per on-chip buffer.
    pub banks: usize,
    /// Bank mapping scheme.
    pub scheme: Scheme,
    /// Ports per bank (BRAMs are dual-ported by default).
    pub ports_per_bank: usize,
    /// Processing-element replication: the outermost data-parallel loop is
    /// unrolled across `pe` copies of the datapath working on disjoint
    /// output tiles (bounded by the memory system: at most
    /// `banks * ports_per_bank` PEs are effective).
    pub pe: usize,
    /// Break associative accumulation recurrences with partial sums
    /// (unsafe-math-style reassociation; standard HLS practice).
    pub assoc_reduction: bool,
    /// DIFT instrumentation, if requested.
    pub dift: Option<DiftConfig>,
}

impl Default for HlsConfig {
    fn default() -> HlsConfig {
        HlsConfig {
            budget: ResourceBudget::default(),
            clock_mhz: 200.0,
            pipeline: true,
            banks: 4,
            scheme: Scheme::Cyclic,
            ports_per_bank: 2,
            pe: 8,
            assoc_reduction: true,
            dift: None,
        }
    }
}

/// A synthesized accelerator.
#[derive(Debug, Clone)]
pub struct Accelerator {
    /// Kernel name.
    pub name: String,
    /// Total latency of one invocation, in cycles.
    pub latency_cycles: u64,
    /// Worst initiation interval among pipelined innermost loops (1 when no
    /// loop is pipelined).
    pub innermost_ii: u64,
    /// Effective processing-element count the design exploits.
    pub pe: usize,
    /// Post-binding area, including buffers (and DIFT if enabled).
    pub area: AreaReport,
    /// Clock frequency the estimate assumes, in MHz.
    pub clock_mhz: f64,
    /// Emitted Verilog-subset RTL for the top-level FSMD.
    pub rtl: String,
    /// DIFT overhead report when instrumentation was requested.
    pub dift: Option<DiftReport>,
}

impl Accelerator {
    /// Wall-clock execution time of one invocation in microseconds.
    pub fn time_us(&self) -> f64 {
        self.summary().time_us()
    }

    /// Estimated dynamic energy in microjoules, using a simple
    /// activity-proportional model (~0.1 nJ per LUT-activity-cycle at the
    /// modeled node, scaled down by a 0.1 activity factor).
    pub fn energy_uj(&self) -> f64 {
        self.summary().energy_uj()
    }

    /// The name-independent numeric summary of this synthesis run: the
    /// part worth memoizing across structurally identical kernels (the
    /// RTL text embeds the kernel name, the summary does not).
    pub fn summary(&self) -> SynthSummary {
        SynthSummary {
            latency_cycles: self.latency_cycles,
            innermost_ii: self.innermost_ii,
            pe: self.pe,
            area: self.area,
            clock_mhz: self.clock_mhz,
        }
    }
}

/// The numeric outcome of one synthesis run, detached from the kernel
/// name and RTL text so it can be shared through the
/// [synthesis cache](crate::cache) by every variant (and every
/// structurally identical kernel) that maps to the same configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthSummary {
    /// Total latency of one invocation, in cycles.
    pub latency_cycles: u64,
    /// Worst initiation interval among pipelined innermost loops.
    pub innermost_ii: u64,
    /// Effective processing-element count the design exploits.
    pub pe: usize,
    /// Post-binding area, including buffers (and DIFT if enabled).
    pub area: AreaReport,
    /// Clock frequency the estimate assumes, in MHz.
    pub clock_mhz: f64,
}

impl SynthSummary {
    /// Stable ordering of the numeric columns [`SynthSummary::targets`]
    /// emits. The learned-cost-model dataset and serialized surrogates
    /// index targets by this list, so the order is part of the on-disk
    /// schema — append, never reorder.
    pub const TARGET_NAMES: [&'static str; 5] = ["latency_cycles", "luts", "ffs", "dsps", "brams"];

    /// The summary as target columns in [`SynthSummary::TARGET_NAMES`]
    /// order — what a surrogate cost model learns to predict.
    pub fn targets(&self) -> [f64; 5] {
        [
            self.latency_cycles as f64,
            self.area.luts as f64,
            self.area.ffs as f64,
            self.area.dsps as f64,
            self.area.brams as f64,
        ]
    }

    /// Wall-clock execution time of one invocation in microseconds.
    pub fn time_us(&self) -> f64 {
        self.latency_cycles as f64 / self.clock_mhz
    }

    /// Estimated dynamic energy in microjoules (same model as
    /// [`Accelerator::energy_uj`]).
    pub fn energy_uj(&self) -> f64 {
        let power_w = 0.5 + self.area.luts as f64 * 2.0e-5; // static + dynamic
        power_w * self.time_us() * 1e-6 * 1e6
    }
}

#[derive(Default)]
struct Stats {
    innermost_ii: u64,
    peak_binding: Option<Binding>,
    peak_area: AreaReport,
}

/// Runs the full HLS flow on `func`.
///
/// Accepts either a tensor-dialect kernel (it is lowered to loops first) or
/// an already-lowered loop/memref function.
///
/// # Errors
///
/// Returns [`HlsError`] if the function contains unsupported constructs or
/// the configuration is invalid.
pub fn synthesize(func: &Func, config: &HlsConfig) -> HlsResult<Accelerator> {
    if config.banks == 0 {
        return Err(HlsError::Config("banks must be >= 1".into()));
    }
    let mut has_tensor_ops = false;
    func.walk(&mut |op| has_tensor_ops |= op.name.starts_with("tensor."));
    let lowered;
    let func = if has_tensor_ops {
        lowered = lower_to_loops(func)?;
        &lowered
    } else {
        func
    };

    let mut stats = Stats { innermost_ii: 1, ..Stats::default() };
    let entry =
        func.body.entry().ok_or_else(|| HlsError::Lower("function has no entry block".into()))?;
    let (latency, dfg, schedule) = block_latency(func, entry, config, &mut stats)?;
    let binding = bind(&dfg, &schedule);
    let top_area = binding.area();
    if top_area.luts > stats.peak_area.luts {
        stats.peak_area = top_area;
        stats.peak_binding = Some(binding.clone());
    }

    // Buffer area: every memref parameter and scratch alloc becomes banked
    // BRAM storage.
    let mut buffer_elems = 0u64;
    let mut buffer_area = AreaReport::default();
    let mut consider = |ty: &Type| {
        if let Type::MemRef { .. } = ty {
            let elems = ty.num_elements().unwrap_or(0);
            buffer_elems += elems as u64;
            let banks = config.banks.min(elems.max(1));
            if let Ok(p) =
                Partitioning::new(elems.max(1), banks, config.scheme, config.ports_per_bank)
            {
                buffer_area += p.area();
            }
        }
    };
    for p in &func.params {
        consider(p);
    }
    func.walk(&mut |op| {
        if op.name == "mem.alloc" {
            // Result type is recorded in the function's value table.
            consider(func.value_type(op.results[0]));
        }
    });

    // Processing-element replication: when the outermost loops carry no
    // dependences (each iteration writes disjoint outputs), the design
    // replicates the datapath `pe` times and splits the iteration space.
    let effective_pe = if outer_loops_parallel(func) {
        config.pe.clamp(1, (config.banks * config.ports_per_bank).max(1))
    } else {
        1
    };
    let mut area = stats.peak_area.scaled(effective_pe as u64) + buffer_area;
    let mut latency_cycles = if effective_pe > 1 {
        // Split the trip space + a small merge/sync epilogue.
        latency.div_ceil(effective_pe as u64) + effective_pe.ilog2() as u64 + 2
    } else {
        latency.max(1)
    };

    let peak_binding = stats.peak_binding.clone().unwrap_or_default();
    let dift_report = config.dift.as_ref().map(|cfg| {
        let mut r = instrument(&peak_binding, buffer_elems, cfg);
        // Shadow logic replicates with the datapath.
        r.extra_area = r.extra_area.scaled(effective_pe as u64);
        r
    });
    if let Some(report) = &dift_report {
        area += report.extra_area;
        latency_cycles += report.latency_overhead;
    }

    let rtl_text = rtl::emit_module(&func.name, &dfg, &schedule, &binding);

    Ok(Accelerator {
        name: func.name.clone(),
        latency_cycles,
        innermost_ii: stats.innermost_ii,
        pe: effective_pe,
        area,
        clock_mhz: config.clock_mhz,
        rtl: rtl_text,
        dift: dift_report,
    })
}

/// The outcome of taint-gated DIFT instrumentation (see
/// [`synthesize_gated`]): whether shadow hardware was requested, whether it
/// was actually synthesized, and — when the static taint analysis proved
/// the kernel clean — the area and latency the gate saved.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiftGate {
    /// `true` when the configuration asked for DIFT.
    pub requested: bool,
    /// `true` when shadow logic was actually synthesized.
    pub instrumented: bool,
    /// Number of values the static taint analysis found may carry secrets.
    pub tainted_values: usize,
    /// LUTs saved by skipping instrumentation (0 when instrumented).
    pub luts_saved: u64,
    /// Flip-flops saved by skipping instrumentation.
    pub ffs_saved: u64,
    /// BRAMs saved by skipping instrumentation.
    pub brams_saved: u64,
    /// Latency cycles saved by skipping instrumentation.
    pub latency_saved: u64,
}

/// Like [`synthesize`], but gates DIFT instrumentation on the static
/// taint/IFC analysis (`everest_ir::lints::taint_summary`): shadow hardware
/// is only worth its area when the kernel actually carries secret-labelled
/// flows. For a clean kernel the DIFT request is dropped and the returned
/// [`DiftGate`] reports the area/latency saved (computed by synthesizing
/// both ways); for a tainted kernel instrumentation proceeds as usual.
///
/// Telemetry: bumps `hls.dift.gate.instrumented` or
/// `hls.dift.gate.skipped`.
///
/// # Errors
///
/// Same failure modes as [`synthesize`].
pub fn synthesize_gated(func: &Func, config: &HlsConfig) -> HlsResult<(Accelerator, DiftGate)> {
    let mut gate = DiftGate { requested: config.dift.is_some(), ..DiftGate::default() };
    if !gate.requested {
        return Ok((synthesize(func, config)?, gate));
    }
    let summary = everest_ir::lints::taint_summary(func);
    gate.tainted_values = summary.tainted_values.len();
    if summary.is_tainted() {
        gate.instrumented = true;
        everest_telemetry::metrics().counter_inc("hls.dift.gate.instrumented");
        return Ok((synthesize(func, config)?, gate));
    }
    // Untainted: synthesize both ways so the gate can report what the
    // skipped shadow logic would have cost.
    let with_dift = synthesize(func, config)?;
    let plain_config = HlsConfig { dift: None, ..config.clone() };
    let plain = synthesize(func, &plain_config)?;
    gate.luts_saved = with_dift.area.luts.saturating_sub(plain.area.luts);
    gate.ffs_saved = with_dift.area.ffs.saturating_sub(plain.area.ffs);
    gate.brams_saved = with_dift.area.brams.saturating_sub(plain.area.brams);
    gate.latency_saved = with_dift.latency_cycles.saturating_sub(plain.latency_cycles);
    everest_telemetry::metrics().counter_inc("hls.dift.gate.skipped");
    Ok((plain, gate))
}

/// `true` when every top-level loop of the function is data-parallel
/// (carries no loop-carried values), so the iteration space can be tiled
/// across processing elements.
fn outer_loops_parallel(func: &Func) -> bool {
    let Some(entry) = func.body.entry() else {
        return false;
    };
    let mut saw_loop = false;
    for op in &entry.ops {
        if op.name == "loop.for" {
            saw_loop = true;
            if !op.operands.is_empty() {
                return false;
            }
        }
    }
    saw_loop
}

/// Computes the latency of one block, recursing into nested loops, and
/// returns the block's DFG and schedule.
fn block_latency(
    func: &Func,
    block: &Block,
    config: &HlsConfig,
    stats: &mut Stats,
) -> HlsResult<(u64, Dfg, crate::schedule::Schedule)> {
    // First compute nested loop latencies (bottom-up).
    let mut loop_latencies: HashMap<usize, u64> = HashMap::new();
    for (pos, op) in block.ops.iter().enumerate() {
        if op.name != "loop.for" {
            continue;
        }
        let trips = trip_count(op)?;
        let body = op.regions[0]
            .entry()
            .ok_or_else(|| HlsError::Lower("loop.for with empty body".into()))?;
        let mut body_has_loop = false;
        for inner in &body.ops {
            body_has_loop |= inner.name == "loop.for";
        }
        let latency = if !body_has_loop && config.pipeline {
            let dfg = Dfg::from_block(func, body, &HashMap::new());
            let mem_mii = memory_mii(func, body, config);
            // Banked buffers multiply the usable memory ports.
            let ports = (config.banks * config.ports_per_bank).max(1);
            let budget = config
                .budget
                .clone()
                .with(crate::oplib::FuKind::MemRead, ports)
                .with(crate::oplib::FuKind::MemWrite, ports);
            let report = pipeline::analyze(&dfg, &budget, mem_mii, config.assoc_reduction)?;
            stats.innermost_ii = stats.innermost_ii.max(report.ii);
            let b = bind(&dfg, &list_schedule(&dfg, &budget)?);
            let a = b.area();
            if a.luts > stats.peak_area.luts {
                stats.peak_area = a;
                stats.peak_binding = Some(b);
            }
            report.loop_latency(trips)
        } else {
            let (body_latency, body_dfg, body_schedule) = block_latency(func, body, config, stats)?;
            let b = bind(&body_dfg, &body_schedule);
            let a = b.area();
            if a.luts > stats.peak_area.luts {
                stats.peak_area = a;
                stats.peak_binding = Some(b);
            }
            // +1 cycle loop-control overhead per iteration, +1 for entry.
            trips * (body_latency + 1) + 1
        };
        loop_latencies.insert(pos, latency.max(1));
    }
    let dfg = Dfg::from_block(func, block, &loop_latencies);
    let schedule = list_schedule(&dfg, &config.budget)?;
    Ok((schedule.len, dfg, schedule))
}

fn trip_count(op: &everest_ir::Op) -> HlsResult<u64> {
    let get = |key: &str| {
        op.attr(key)
            .and_then(Attr::as_int)
            .ok_or_else(|| HlsError::Lower(format!("loop.for missing '{key}'")))
    };
    let (lo, hi, step) = (get("lo")?, get("hi")?, get("step")?);
    if step <= 0 {
        return Err(HlsError::Lower("loop step must be positive".into()));
    }
    if hi <= lo {
        return Ok(0);
    }
    Ok(((hi - lo + step - 1) / step) as u64)
}

/// Extracts per-buffer access offsets in a loop body and returns the worst
/// memory-induced II over all buffers under the configured partitioning.
fn memory_mii(func: &Func, body: &Block, config: &HlsConfig) -> u64 {
    let iv = body.args.first().copied();
    let offset_of = |v: Value, ops: &[everest_ir::Op]| -> Option<i64> {
        if Some(v) == iv {
            return Some(0);
        }
        for op in ops {
            if op.results.first() == Some(&v) {
                match op.name.as_str() {
                    "arith.constant" => return op.attr("value").and_then(Attr::as_int),
                    "arith.addi" => {
                        // iv + const or const + iv
                        let (a, b) = (op.operands[0], op.operands[1]);
                        let const_side = |x: Value, ops: &[everest_ir::Op]| {
                            ops.iter()
                                .find(|o| {
                                    o.results.first() == Some(&x) && o.name == "arith.constant"
                                })
                                .and_then(|o| o.attr("value").and_then(Attr::as_int))
                        };
                        if Some(a) == iv {
                            return const_side(b, ops);
                        }
                        if Some(b) == iv {
                            return const_side(a, ops);
                        }
                        return None;
                    }
                    _ => return None,
                }
            }
        }
        None
    };

    let mut per_buffer: HashMap<Value, (Vec<i64>, bool)> = HashMap::new();
    for op in &body.ops {
        let (buf, idx) = match op.name.as_str() {
            "mem.load" => (op.operands[0], op.operands.get(1..).unwrap_or(&[])),
            "mem.store" => (op.operands[1], op.operands.get(2..).unwrap_or(&[])),
            _ => continue,
        };
        // Use the innermost (last) index for the 1-D conflict model.
        let entry = per_buffer.entry(buf).or_default();
        match idx.last().and_then(|v| offset_of(*v, &body.ops)) {
            Some(off) => entry.0.push(off),
            None => entry.1 = true, // unknown pattern: conservative
        }
    }
    let mut worst = 1u64;
    for (buf, (offsets, has_unknown)) in per_buffer {
        let size = func.value_type(buf).num_elements().unwrap_or(1).max(1);
        let banks = config.banks.min(size);
        let Ok(p) = Partitioning::new(size, banks, config.scheme, config.ports_per_bank) else {
            continue;
        };
        let accesses = offsets.len() + usize::from(has_unknown);
        let ii = if has_unknown {
            // Unknown patterns may all collide on one bank.
            (accesses.div_ceil(config.ports_per_bank) as u64).max(1)
        } else {
            p.min_ii(&offsets)
        };
        worst = worst.max(ii);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oplib::FuKind;

    fn kernel(src: &str, name: &str) -> Func {
        let module = everest_dsl::compile_kernels(src).unwrap();
        module.func(name).unwrap().clone()
    }

    #[test]
    fn synthesizes_tensor_kernel_end_to_end() {
        let f = kernel(
            "kernel mm(a: tensor<8x8xf64>, b: tensor<8x8xf64>) -> tensor<8x8xf64> { return a @ b; }",
            "mm",
        );
        let acc = synthesize(&f, &HlsConfig::default()).unwrap();
        // 512 MACs split across the PEs, II-bound by the accumulation.
        assert!(acc.latency_cycles as usize > 8 * 8 * 8 / acc.pe);
        assert!(acc.pe > 1, "matmul outer loops are data-parallel");
        assert!(acc.area.brams > 0, "buffers should occupy BRAM");
        assert!(acc.rtl.contains("module mm_loops"));
        assert!(crate::rtl::check_structure(&acc.rtl));
    }

    #[test]
    fn matmul_ii_limited_by_accumulation_recurrence() {
        let f = kernel(
            "kernel mm(a: tensor<8x8xf64>, b: tensor<8x8xf64>) -> tensor<8x8xf64> { return a @ b; }",
            "mm",
        );
        // With reassociation disabled, the fadd chain (3 cycles) bounds II.
        let strict =
            synthesize(&f, &HlsConfig { assoc_reduction: false, ..HlsConfig::default() }).unwrap();
        assert_eq!(strict.innermost_ii, 3);
        // Partial sums restore II = 1 (and shorten the kernel).
        let relaxed = synthesize(&f, &HlsConfig::default()).unwrap();
        assert_eq!(relaxed.innermost_ii, 1);
        assert!(relaxed.latency_cycles < strict.latency_cycles);
    }

    #[test]
    fn elementwise_kernel_reaches_ii_one_with_enough_banks() {
        let f = kernel(
            "kernel ax(a: tensor<64xf64>, b: tensor<64xf64>) -> tensor<64xf64> { return a + b; }",
            "ax",
        );
        let config = HlsConfig { banks: 4, ..HlsConfig::default() };
        let acc = synthesize(&f, &config).unwrap();
        assert_eq!(acc.innermost_ii, 1);
    }

    #[test]
    fn pipelining_reduces_latency() {
        let f = kernel("kernel r(a: tensor<256xf64>) -> tensor<256xf64> { return relu(a); }", "r");
        let on = synthesize(&f, &HlsConfig::default()).unwrap();
        let off = synthesize(&f, &HlsConfig { pipeline: false, ..HlsConfig::default() }).unwrap();
        assert!(
            on.latency_cycles < off.latency_cycles / 2,
            "pipelined {} vs sequential {}",
            on.latency_cycles,
            off.latency_cycles
        );
    }

    #[test]
    fn more_fu_budget_never_slows_down() {
        let f = kernel(
            "kernel s(a: tensor<64xf64>) -> tensor<64xf64> { return stencil(a, [0.2, 0.6, 0.2]); }",
            "s",
        );
        let small =
            HlsConfig { budget: ResourceBudget::uniform(1), banks: 8, ..HlsConfig::default() };
        let large =
            HlsConfig { budget: ResourceBudget::uniform(8), banks: 8, ..HlsConfig::default() };
        let a1 = synthesize(&f, &small).unwrap();
        let a2 = synthesize(&f, &large).unwrap();
        assert!(a2.latency_cycles <= a1.latency_cycles);
    }

    #[test]
    fn dift_adds_area_and_latency() {
        let f = kernel("kernel g(a: tensor<32xf64>) -> tensor<32xf64> { return sigmoid(a); }", "g");
        let plain = synthesize(&f, &HlsConfig::default()).unwrap();
        let dift = synthesize(
            &f,
            &HlsConfig { dift: Some(DiftConfig::default()), ..HlsConfig::default() },
        )
        .unwrap();
        assert!(dift.area.luts > plain.area.luts);
        assert!(dift.latency_cycles > plain.latency_cycles);
        let report = dift.dift.unwrap();
        assert!(report.lut_overhead_pct(&plain.area) < 30.0);
    }

    #[test]
    fn taint_gated_dift_skips_clean_kernels_and_reports_savings() {
        let clean =
            kernel("kernel g(a: tensor<32xf64>) -> tensor<32xf64> { return sigmoid(a); }", "g");
        let config = HlsConfig { dift: Some(DiftConfig::default()), ..HlsConfig::default() };
        let (acc, gate) = synthesize_gated(&clean, &config).unwrap();
        assert!(gate.requested && !gate.instrumented);
        assert!(acc.dift.is_none(), "no shadow logic on an untainted kernel");
        assert!(gate.luts_saved > 0, "gate should report the area it saved");
        assert!(gate.latency_saved > 0);
        assert_eq!(gate.tainted_values, 0);

        let (tacc, tgate) = synthesize_gated(&tainted_kernel(), &config).unwrap();
        assert!(tgate.requested && tgate.instrumented);
        assert!(tacc.dift.is_some(), "tainted kernel keeps its shadow logic");
        assert!(tgate.tainted_values > 0);
        assert_eq!(tgate.luts_saved, 0);

        // Without a DIFT request the gate is inert.
        let (plain, pgate) = synthesize_gated(&clean, &HlsConfig::default()).unwrap();
        assert!(!pgate.requested && plain.dift.is_none());
    }

    fn tainted_kernel() -> Func {
        use everest_ir::ir::Op;
        use everest_ir::types::MemSpace;
        use everest_ir::FuncBuilder;
        let buf = Type::memref(Type::F64, &[16], MemSpace::Host);
        let mut fb = FuncBuilder::new("redact", &[buf.clone(), buf], &[]);
        fb.for_loop(0, 16, 1, &[], |fb, iv, _carried| {
            let x = fb.load(fb.arg(0), &[iv], Type::F64);
            let mut taint = Op::new("secure.taint").with_attr("label", "patient-data");
            taint.operands = vec![x];
            let secret = fb.op1(taint, Type::F64);
            fb.store(secret, fb.arg(1), &[iv]);
            vec![]
        });
        fb.ret(&[]);
        fb.finish()
    }

    #[test]
    fn time_and_energy_scale_with_clock() {
        let f = kernel("kernel id(a: tensor<16xf64>) -> tensor<16xf64> { return a; }", "id");
        let slow = synthesize(&f, &HlsConfig { clock_mhz: 100.0, ..HlsConfig::default() }).unwrap();
        let fast = synthesize(&f, &HlsConfig { clock_mhz: 400.0, ..HlsConfig::default() }).unwrap();
        assert!(fast.time_us() < slow.time_us());
        assert!(slow.energy_uj() > 0.0);
    }

    #[test]
    fn pe_replication_trades_area_for_latency() {
        let f = kernel(
            "kernel mm(a: tensor<16x16xf64>, b: tensor<16x16xf64>) -> tensor<16x16xf64> { return a @ b; }",
            "mm",
        );
        let one = synthesize(&f, &HlsConfig { pe: 1, ..HlsConfig::default() }).unwrap();
        let eight = synthesize(&f, &HlsConfig { pe: 8, ..HlsConfig::default() }).unwrap();
        assert_eq!(one.pe, 1);
        assert_eq!(eight.pe, 8);
        assert!(
            (eight.latency_cycles as f64) < one.latency_cycles as f64 / 4.0,
            "8 PEs: {} vs 1 PE: {}",
            eight.latency_cycles,
            one.latency_cycles
        );
        assert!(eight.area.luts > 4 * one.area.luts / 2, "area scales with PEs");
    }

    #[test]
    fn pe_count_capped_by_memory_system() {
        let f = kernel("kernel r(a: tensor<64xf64>) -> tensor<64xf64> { return relu(a); }", "r");
        let config = HlsConfig { pe: 64, banks: 2, ports_per_bank: 1, ..HlsConfig::default() };
        let acc = synthesize(&f, &config).unwrap();
        assert_eq!(acc.pe, 2, "PEs beyond the memory ports are wasted");
    }

    #[test]
    fn zero_banks_rejected() {
        let f = kernel("kernel id(a: tensor<4xf64>) -> tensor<4xf64> { return a; }", "id");
        assert!(matches!(
            synthesize(&f, &HlsConfig { banks: 0, ..HlsConfig::default() }),
            Err(HlsError::Config(_))
        ));
    }

    #[test]
    fn fdiv_budget_error_propagates() {
        let f = kernel("kernel g(a: tensor<8xf64>) -> tensor<8xf64> { return sigmoid(a); }", "g");
        let config = HlsConfig {
            budget: ResourceBudget::default().with(FuKind::FDiv, 0),
            ..HlsConfig::default()
        };
        assert!(matches!(synthesize(&f, &config), Err(HlsError::Schedule(_))));
    }
}
