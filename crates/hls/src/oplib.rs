//! The operator library: functional-unit kinds with latency and area
//! characteristics, and the mapping from IR operations onto them.
//!
//! Numbers are representative of mid-range FPGA fabrics (Vivado-class
//! floating-point IP at ~250 MHz): they matter *relatively* — a divider is
//! much more expensive than an adder — not absolutely.

use std::fmt;
use std::ops::{Add, AddAssign};

/// A functional-unit kind the binder can allocate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FuKind {
    /// Floating-point adder/subtractor (also min/max/compare).
    FAdd,
    /// Floating-point multiplier.
    FMul,
    /// Floating-point divider.
    FDiv,
    /// Floating-point square root.
    FSqrt,
    /// Floating-point exponential (CORDIC-style).
    FExp,
    /// Integer ALU (add/sub/cmp/select and index arithmetic).
    IntAlu,
    /// Integer multiplier (DSP-based).
    IntMul,
    /// Memory read port.
    MemRead,
    /// Memory write port.
    MemWrite,
}

impl FuKind {
    /// All allocatable kinds, in a stable order.
    pub const ALL: [FuKind; 9] = [
        FuKind::FAdd,
        FuKind::FMul,
        FuKind::FDiv,
        FuKind::FSqrt,
        FuKind::FExp,
        FuKind::IntAlu,
        FuKind::IntMul,
        FuKind::MemRead,
        FuKind::MemWrite,
    ];

    /// Pipeline latency in cycles for one operation on this unit.
    pub fn latency(&self) -> u64 {
        match self {
            FuKind::FAdd => 3,
            FuKind::FMul => 4,
            FuKind::FDiv => 14,
            FuKind::FSqrt => 12,
            FuKind::FExp => 18,
            FuKind::IntAlu => 1,
            FuKind::IntMul => 2,
            FuKind::MemRead => 2,
            FuKind::MemWrite => 1,
        }
    }

    /// Area cost of one instance of this unit.
    pub fn area(&self) -> AreaReport {
        match self {
            FuKind::FAdd => AreaReport { luts: 380, ffs: 520, dsps: 2, brams: 0 },
            FuKind::FMul => AreaReport { luts: 140, ffs: 260, dsps: 3, brams: 0 },
            FuKind::FDiv => AreaReport { luts: 800, ffs: 1400, dsps: 0, brams: 0 },
            FuKind::FSqrt => AreaReport { luts: 600, ffs: 1100, dsps: 0, brams: 0 },
            FuKind::FExp => AreaReport { luts: 900, ffs: 1500, dsps: 7, brams: 1 },
            FuKind::IntAlu => AreaReport { luts: 70, ffs: 70, dsps: 0, brams: 0 },
            FuKind::IntMul => AreaReport { luts: 40, ffs: 80, dsps: 1, brams: 0 },
            FuKind::MemRead => AreaReport { luts: 30, ffs: 40, dsps: 0, brams: 0 },
            FuKind::MemWrite => AreaReport { luts: 30, ffs: 40, dsps: 0, brams: 0 },
        }
    }
}

impl fmt::Display for FuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuKind::FAdd => "fadd",
            FuKind::FMul => "fmul",
            FuKind::FDiv => "fdiv",
            FuKind::FSqrt => "fsqrt",
            FuKind::FExp => "fexp",
            FuKind::IntAlu => "int_alu",
            FuKind::IntMul => "int_mul",
            FuKind::MemRead => "mem_read",
            FuKind::MemWrite => "mem_write",
        };
        f.write_str(s)
    }
}

/// Maps an IR op name to the functional unit it executes on. Returns `None`
/// for ops that consume no datapath resources (constants, control flow,
/// yields and structured ops handled elsewhere).
pub fn fu_for_op(name: &str) -> Option<FuKind> {
    Some(match name {
        "arith.addf" | "arith.subf" | "arith.maxf" | "arith.minf" | "arith.negf" | "arith.cmpf" => {
            FuKind::FAdd
        }
        "arith.mulf" => FuKind::FMul,
        "arith.divf" => FuKind::FDiv,
        "arith.sqrtf" => FuKind::FSqrt,
        "arith.expf" => FuKind::FExp,
        "arith.sitofp" | "arith.fptosi" => FuKind::IntAlu,
        "arith.addi" | "arith.subi" | "arith.cmpi" | "arith.select" | "arith.remi"
        | "arith.divi" => FuKind::IntAlu,
        "arith.muli" => FuKind::IntMul,
        "mem.load" => FuKind::MemRead,
        "mem.store" => FuKind::MemWrite,
        _ => return None,
    })
}

/// Latency in cycles of an IR op (0 for resource-free ops).
pub fn latency_for_op(name: &str) -> u64 {
    fu_for_op(name).map(|fu| fu.latency()).unwrap_or(0)
}

/// FPGA resource usage summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct AreaReport {
    /// Look-up tables.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// DSP slices.
    pub dsps: u64,
    /// Block RAMs (18 kbit units).
    pub brams: u64,
}

impl AreaReport {
    /// Scales every component by an integer factor.
    pub fn scaled(&self, factor: u64) -> AreaReport {
        AreaReport {
            luts: self.luts * factor,
            ffs: self.ffs * factor,
            dsps: self.dsps * factor,
            brams: self.brams * factor,
        }
    }

    /// `true` if this report fits within `budget` in every dimension.
    pub fn fits_in(&self, budget: &AreaReport) -> bool {
        self.luts <= budget.luts
            && self.ffs <= budget.ffs
            && self.dsps <= budget.dsps
            && self.brams <= budget.brams
    }
}

impl Add for AreaReport {
    type Output = AreaReport;

    fn add(self, rhs: AreaReport) -> AreaReport {
        AreaReport {
            luts: self.luts + rhs.luts,
            ffs: self.ffs + rhs.ffs,
            dsps: self.dsps + rhs.dsps,
            brams: self.brams + rhs.brams,
        }
    }
}

impl AddAssign for AreaReport {
    fn add_assign(&mut self, rhs: AreaReport) {
        *self = *self + rhs;
    }
}

impl fmt::Display for AreaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} LUT, {} FF, {} DSP, {} BRAM", self.luts, self.ffs, self.dsps, self.brams)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_map_to_expected_units() {
        assert_eq!(fu_for_op("arith.addf"), Some(FuKind::FAdd));
        assert_eq!(fu_for_op("arith.mulf"), Some(FuKind::FMul));
        assert_eq!(fu_for_op("mem.load"), Some(FuKind::MemRead));
        assert_eq!(fu_for_op("arith.constant"), None);
        assert_eq!(fu_for_op("loop.for"), None);
    }

    #[test]
    fn divider_costs_more_than_adder() {
        assert!(FuKind::FDiv.latency() > FuKind::FAdd.latency());
        assert!(FuKind::FDiv.area().luts > FuKind::FAdd.area().luts);
    }

    #[test]
    fn area_arithmetic() {
        let a = AreaReport { luts: 10, ffs: 20, dsps: 1, brams: 0 };
        let b = AreaReport { luts: 5, ffs: 5, dsps: 0, brams: 2 };
        let sum = a + b;
        assert_eq!(sum, AreaReport { luts: 15, ffs: 25, dsps: 1, brams: 2 });
        assert_eq!(a.scaled(3).luts, 30);
        assert!(b.fits_in(&sum));
        assert!(!sum.fits_in(&b));
    }

    #[test]
    fn display_formats() {
        let a = AreaReport { luts: 1, ffs: 2, dsps: 3, brams: 4 };
        assert_eq!(a.to_string(), "1 LUT, 2 FF, 3 DSP, 4 BRAM");
        assert_eq!(FuKind::FAdd.to_string(), "fadd");
    }

    #[test]
    fn constants_are_free() {
        assert_eq!(latency_for_op("arith.constant"), 0);
        assert_eq!(latency_for_op("arith.addf"), 3);
    }
}
