//! TaintHLS-style dynamic information-flow tracking (DIFT) instrumentation.
//!
//! EVEREST extends HLS "for the automatic integration of security features,
//! like application-specific dynamic information flow tracking" (paper
//! III-B, ref \[18\]). TaintHLS adds, alongside the datapath: a shadow
//! register per architectural register, a taint-propagation cell per
//! functional unit, and shadow storage per on-chip buffer. This module
//! models the associated area/latency overheads and the taint-propagation
//! semantics itself (so policies can be checked in simulation).

use crate::binding::Binding;
use crate::oplib::AreaReport;
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of the DIFT instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiftConfig {
    /// Width of the taint label in bits (1 = tainted/untainted).
    pub taint_bits: u32,
    /// Whether the controller checks labels on every store (adds latency).
    pub check_on_store: bool,
}

impl Default for DiftConfig {
    fn default() -> DiftConfig {
        DiftConfig { taint_bits: 1, check_on_store: true }
    }
}

/// Overhead report for instrumenting one accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiftReport {
    /// Extra area for shadow registers, propagation cells and checkers.
    pub extra_area: AreaReport,
    /// Extra BRAM bits for shadow storage of on-chip buffers.
    pub shadow_bits: u64,
    /// Added latency in cycles (exit-check + per-store check pipeline).
    pub latency_overhead: u64,
}

impl DiftReport {
    /// Relative LUT overhead versus a baseline area.
    pub fn lut_overhead_pct(&self, baseline: &AreaReport) -> f64 {
        if baseline.luts == 0 {
            return 0.0;
        }
        100.0 * self.extra_area.luts as f64 / baseline.luts as f64
    }
}

/// Computes the DIFT overhead for a bound datapath with `buffer_elems`
/// total on-chip buffer elements.
pub fn instrument(binding: &Binding, buffer_elems: u64, config: &DiftConfig) -> DiftReport {
    let tb = config.taint_bits as u64;
    let fu_instances: u64 = binding.allocation.values().map(|c| *c as u64).sum();
    // One propagation cell (OR-tree over operand labels) per FU instance:
    // ~4 LUTs + tb FFs each, per label bit.
    let prop_luts = 4 * tb * fu_instances;
    let prop_ffs = tb * fu_instances;
    // Shadow registers: one tb-bit label per live value register.
    let shadow_ffs = tb * binding.registers as u64;
    // Checker: small comparator per memory write port + exit checker.
    let checker_luts = 16 * tb;
    let shadow_bits = tb * buffer_elems;
    let extra_area = AreaReport {
        luts: prop_luts + checker_luts,
        ffs: prop_ffs + shadow_ffs,
        dsps: 0,
        brams: shadow_bits.div_ceil(18 * 1024),
    };
    let latency_overhead = if config.check_on_store { 2 } else { 1 };
    DiftReport { extra_area, shadow_bits, latency_overhead }
}

/// A software taint-propagation engine over named locations, mirroring what
/// the generated shadow logic does in hardware. Used by the runtime's
/// data-protection layer to evaluate policies.
#[derive(Debug, Clone, Default)]
pub struct TaintEngine {
    labels: BTreeMap<String, BTreeSet<String>>,
}

impl TaintEngine {
    /// Creates an engine with no labels.
    pub fn new() -> TaintEngine {
        TaintEngine::default()
    }

    /// Marks `location` with `label`.
    pub fn taint(&mut self, location: &str, label: &str) {
        self.labels.entry(location.to_owned()).or_default().insert(label.to_owned());
    }

    /// Propagates labels from all `sources` to `dest` (union semantics, as
    /// the hardware OR-tree does).
    pub fn propagate(&mut self, sources: &[&str], dest: &str) {
        let mut merged = BTreeSet::new();
        for s in sources {
            if let Some(ls) = self.labels.get(*s) {
                merged.extend(ls.iter().cloned());
            }
        }
        if merged.is_empty() {
            self.labels.remove(dest);
        } else {
            self.labels.insert(dest.to_owned(), merged);
        }
    }

    /// Removes every label from `location` (declassification).
    pub fn declassify(&mut self, location: &str) {
        self.labels.remove(location);
    }

    /// Labels currently attached to `location`.
    pub fn labels(&self, location: &str) -> Vec<&str> {
        self.labels
            .get(location)
            .map(|s| s.iter().map(String::as_str).collect())
            .unwrap_or_default()
    }

    /// `true` if `location` carries `label`.
    pub fn is_tainted(&self, location: &str, label: &str) -> bool {
        self.labels.get(location).is_some_and(|s| s.contains(label))
    }

    /// Policy check: no location in `outputs` may carry any of
    /// `forbidden` labels. Returns the violations as
    /// `(location, label)` pairs.
    pub fn check_outputs(&self, outputs: &[&str], forbidden: &[&str]) -> Vec<(String, String)> {
        let mut violations = Vec::new();
        for out in outputs {
            for label in forbidden {
                if self.is_tainted(out, label) {
                    violations.push(((*out).to_owned(), (*label).to_owned()));
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oplib::FuKind;
    use std::collections::HashMap;

    fn sample_binding() -> Binding {
        let mut allocation = HashMap::new();
        allocation.insert(FuKind::FAdd, 2);
        allocation.insert(FuKind::FMul, 2);
        Binding { allocation, assignment: Vec::new(), registers: 10 }
    }

    #[test]
    fn overhead_scales_with_taint_bits() {
        let b = sample_binding();
        let one = instrument(&b, 1024, &DiftConfig { taint_bits: 1, check_on_store: true });
        let four = instrument(&b, 1024, &DiftConfig { taint_bits: 4, check_on_store: true });
        assert!(four.extra_area.luts > one.extra_area.luts);
        assert_eq!(four.shadow_bits, 4 * one.shadow_bits);
    }

    #[test]
    fn overhead_is_modest_relative_to_fp_datapath() {
        let b = sample_binding();
        let report = instrument(&b, 4096, &DiftConfig::default());
        let baseline = b.area();
        // TaintHLS reports small overheads; our model stays below 30% LUTs.
        assert!(report.lut_overhead_pct(&baseline) < 30.0);
    }

    #[test]
    fn store_checks_add_latency() {
        let b = sample_binding();
        let with = instrument(&b, 64, &DiftConfig { taint_bits: 1, check_on_store: true });
        let without = instrument(&b, 64, &DiftConfig { taint_bits: 1, check_on_store: false });
        assert!(with.latency_overhead > without.latency_overhead);
    }

    #[test]
    fn taint_propagates_through_unions() {
        let mut e = TaintEngine::new();
        e.taint("key", "secret");
        e.taint("iv", "public");
        e.propagate(&["key", "iv"], "ct");
        assert!(e.is_tainted("ct", "secret"));
        assert!(e.is_tainted("ct", "public"));
        assert!(!e.is_tainted("iv", "secret"));
    }

    #[test]
    fn declassify_clears_labels() {
        let mut e = TaintEngine::new();
        e.taint("x", "secret");
        e.declassify("x");
        assert!(e.labels("x").is_empty());
    }

    #[test]
    fn propagate_from_clean_sources_clears_dest() {
        let mut e = TaintEngine::new();
        e.taint("dest", "stale");
        e.propagate(&["clean_a", "clean_b"], "dest");
        assert!(e.labels("dest").is_empty());
    }

    #[test]
    fn policy_check_reports_violations() {
        let mut e = TaintEngine::new();
        e.taint("patient_record", "pii");
        e.propagate(&["patient_record"], "model_output");
        let violations = e.check_outputs(&["model_output", "log"], &["pii"]);
        assert_eq!(violations, vec![("model_output".to_owned(), "pii".to_owned())]);
    }
}
