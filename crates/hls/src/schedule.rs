//! Operation scheduling: ASAP, ALAP and resource-constrained list
//! scheduling over a [`Dfg`].
//!
//! Functional units are treated as fully pipelined (a unit can *start* one
//! operation per cycle), so the resource constraint limits the number of
//! same-kind ops issued in the same cycle — the standard model for HLS with
//! pipelined floating-point IP.

use crate::cdfg::Dfg;
use crate::error::{HlsError, HlsResult};
use crate::oplib::FuKind;
use std::collections::HashMap;

/// Available functional-unit instances per kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceBudget {
    counts: HashMap<FuKind, usize>,
}

impl Default for ResourceBudget {
    fn default() -> ResourceBudget {
        let mut counts = HashMap::new();
        counts.insert(FuKind::FAdd, 2);
        counts.insert(FuKind::FMul, 2);
        counts.insert(FuKind::FDiv, 1);
        counts.insert(FuKind::FSqrt, 1);
        counts.insert(FuKind::FExp, 1);
        counts.insert(FuKind::IntAlu, 4);
        counts.insert(FuKind::IntMul, 2);
        counts.insert(FuKind::MemRead, 2);
        counts.insert(FuKind::MemWrite, 1);
        ResourceBudget { counts }
    }
}

impl ResourceBudget {
    /// A budget with `n` instances of every kind (useful for ablations).
    pub fn uniform(n: usize) -> ResourceBudget {
        let counts = FuKind::ALL.iter().map(|k| (*k, n)).collect();
        ResourceBudget { counts }
    }

    /// Number of instances of `kind` (0 if absent).
    pub fn count(&self, kind: FuKind) -> usize {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Sets the instance count for `kind`, returning `self` for chaining.
    pub fn with(mut self, kind: FuKind, n: usize) -> ResourceBudget {
        self.counts.insert(kind, n);
        self
    }
}

/// A computed schedule: a start cycle per node and the overall makespan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Start cycle of each node (indexed by `NodeId`).
    pub start: Vec<u64>,
    /// Total schedule length in cycles (max finish time).
    pub len: u64,
}

impl Schedule {
    /// Finish cycle of node `id`.
    pub fn finish(&self, dfg: &Dfg, id: usize) -> u64 {
        self.start[id] + dfg.nodes[id].latency
    }
}

/// As-soon-as-possible schedule (ignores resources).
pub fn asap(dfg: &Dfg) -> Schedule {
    let mut start = vec![0u64; dfg.len()];
    let mut len = 0;
    for (id, node) in dfg.nodes.iter().enumerate() {
        let s = node.preds.iter().map(|p| start[*p] + dfg.nodes[*p].latency).max().unwrap_or(0);
        start[id] = s;
        len = len.max(s + node.latency);
    }
    Schedule { start, len }
}

/// As-late-as-possible schedule against `deadline` (ignores resources).
///
/// # Panics
///
/// Panics if `deadline` is shorter than the critical path.
pub fn alap(dfg: &Dfg, deadline: u64) -> Schedule {
    assert!(deadline >= dfg.critical_path(), "deadline below critical path");
    let mut start = vec![0u64; dfg.len()];
    for (id, node) in dfg.nodes.iter().enumerate().rev() {
        let latest_finish = node.succs.iter().map(|s| start[*s]).min().unwrap_or(deadline);
        start[id] = latest_finish - node.latency;
    }
    Schedule { start, len: deadline }
}

/// Resource-constrained list scheduling with ALAP-slack priority.
///
/// # Errors
///
/// Returns [`HlsError::Schedule`] if some op needs a unit kind whose budget
/// is zero.
pub fn list_schedule(dfg: &Dfg, budget: &ResourceBudget) -> HlsResult<Schedule> {
    for node in &dfg.nodes {
        if let Some(fu) = node.fu {
            if budget.count(fu) == 0 {
                return Err(HlsError::Schedule(format!(
                    "op '{}' needs a {fu} unit but the budget has none",
                    node.name
                )));
            }
        }
    }
    if dfg.is_empty() {
        return Ok(Schedule { start: Vec::new(), len: 0 });
    }
    let cp = dfg.critical_path();
    let late = alap(dfg, cp);

    let n = dfg.len();
    let mut start = vec![u64::MAX; n];
    let mut remaining_preds: Vec<usize> = dfg.nodes.iter().map(|nd| nd.preds.len()).collect();
    let mut ready: Vec<usize> = (0..n).filter(|i| remaining_preds[*i] == 0).collect();
    let mut scheduled = 0usize;
    let mut cycle: u64 = 0;
    // finish_events[c] = nodes finishing at cycle c (releases successors).
    let mut finish_at: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut len = 0u64;

    while scheduled < n {
        // Release successors of nodes that finished by `cycle`.
        if let Some(done) = finish_at.remove(&cycle) {
            for d in done {
                for s in &dfg.nodes[d].succs {
                    remaining_preds[*s] -= 1;
                    if remaining_preds[*s] == 0 {
                        ready.push(*s);
                    }
                }
            }
        }
        let mut issued_this_cycle: HashMap<FuKind, usize> = HashMap::new();
        // Iterate within the cycle so zero-latency ops (constants) release
        // their consumers immediately instead of costing a cycle.
        loop {
            // Priority: smaller ALAP start first (less slack = more urgent).
            ready.sort_by_key(|i| (late.start[*i], *i));
            let mut still_ready = Vec::new();
            let mut released_zero_latency = false;
            for i in ready.drain(..) {
                let can_issue = match dfg.nodes[i].fu {
                    None => true,
                    Some(fu) => {
                        let used = issued_this_cycle.get(&fu).copied().unwrap_or(0);
                        used < budget.count(fu)
                    }
                };
                if can_issue {
                    if let Some(fu) = dfg.nodes[i].fu {
                        *issued_this_cycle.entry(fu).or_insert(0) += 1;
                    }
                    start[i] = cycle;
                    let fin = cycle + dfg.nodes[i].latency;
                    len = len.max(fin);
                    if dfg.nodes[i].latency == 0 {
                        for s in &dfg.nodes[i].succs {
                            remaining_preds[*s] -= 1;
                            if remaining_preds[*s] == 0 {
                                still_ready.push(*s);
                                released_zero_latency = true;
                            }
                        }
                    } else {
                        finish_at.entry(fin).or_default().push(i);
                    }
                    scheduled += 1;
                } else {
                    still_ready.push(i);
                }
            }
            ready = still_ready;
            if !released_zero_latency {
                break;
            }
        }
        cycle += 1;
    }
    Ok(Schedule { start, len })
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_ir::{FuncBuilder, Type};
    use std::collections::HashMap as Map;

    /// Builds a DFG with `k` independent multiplies feeding a reduction add.
    fn parallel_muls(k: usize) -> Dfg {
        let mut fb = FuncBuilder::new("f", &[Type::F64, Type::F64], &[Type::F64]);
        let mut prods = Vec::new();
        for _ in 0..k {
            prods.push(fb.binary("arith.mulf", fb.arg(0), fb.arg(1), Type::F64));
        }
        let mut acc = prods[0];
        for p in &prods[1..] {
            acc = fb.binary("arith.addf", acc, *p, Type::F64);
        }
        fb.ret(&[acc]);
        let f = fb.finish();
        Dfg::from_block(&f, f.body.entry().unwrap(), &Map::new())
    }

    #[test]
    fn asap_matches_critical_path() {
        let dfg = parallel_muls(4);
        let s = asap(&dfg);
        assert_eq!(s.len, dfg.critical_path());
        // All four muls start at 0 when unconstrained.
        for i in 0..4 {
            assert_eq!(s.start[i], 0);
        }
    }

    #[test]
    fn alap_pushes_ops_late() {
        let dfg = parallel_muls(2);
        let cp = dfg.critical_path();
        let late = alap(&dfg, cp + 10);
        let early = asap(&dfg);
        for i in 0..dfg.len() {
            assert!(late.start[i] >= early.start[i]);
        }
        assert_eq!(late.len, cp + 10);
    }

    #[test]
    #[should_panic(expected = "deadline below critical path")]
    fn alap_rejects_tight_deadline() {
        let dfg = parallel_muls(2);
        alap(&dfg, 1);
    }

    #[test]
    fn list_schedule_respects_dependences() {
        let dfg = parallel_muls(4);
        let s = list_schedule(&dfg, &ResourceBudget::default()).unwrap();
        for (id, node) in dfg.nodes.iter().enumerate() {
            for p in &node.preds {
                assert!(
                    s.start[id] >= s.start[*p] + dfg.nodes[*p].latency,
                    "node {id} starts before pred {p} finishes"
                );
            }
        }
    }

    #[test]
    fn list_schedule_respects_resource_limits() {
        let dfg = parallel_muls(6);
        let budget = ResourceBudget::default().with(FuKind::FMul, 1);
        let s = list_schedule(&dfg, &budget).unwrap();
        // At most one mul issued per cycle.
        let mut per_cycle: HashMap<u64, usize> = HashMap::new();
        for (id, node) in dfg.nodes.iter().enumerate() {
            if node.fu == Some(FuKind::FMul) {
                *per_cycle.entry(s.start[id]).or_insert(0) += 1;
            }
        }
        assert!(per_cycle.values().all(|c| *c <= 1));
        // With 6 muls on one unit, the last mul cannot start before cycle 5.
        let latest_mul = dfg
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.fu == Some(FuKind::FMul))
            .map(|(i, _)| s.start[i])
            .max()
            .unwrap();
        assert!(latest_mul >= 5);
    }

    #[test]
    fn more_units_never_hurt() {
        let dfg = parallel_muls(8);
        let tight = list_schedule(&dfg, &ResourceBudget::uniform(1)).unwrap();
        let wide = list_schedule(&dfg, &ResourceBudget::uniform(8)).unwrap();
        assert!(wide.len <= tight.len);
        assert_eq!(wide.len, dfg.critical_path());
    }

    #[test]
    fn zero_budget_is_an_error() {
        let dfg = parallel_muls(2);
        let err =
            list_schedule(&dfg, &ResourceBudget::default().with(FuKind::FMul, 0)).unwrap_err();
        assert!(err.to_string().contains("fmul"));
    }

    #[test]
    fn empty_dfg_schedules_to_zero() {
        let dfg = Dfg::default();
        let s = list_schedule(&dfg, &ResourceBudget::default()).unwrap();
        assert_eq!(s.len, 0);
    }
}
