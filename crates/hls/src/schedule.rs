//! Operation scheduling: ASAP, ALAP and resource-constrained list
//! scheduling over a [`Dfg`].
//!
//! Functional units are treated as fully pipelined (a unit can *start* one
//! operation per cycle), so the resource constraint limits the number of
//! same-kind ops issued in the same cycle — the standard model for HLS with
//! pipelined floating-point IP.
//!
//! The list scheduler is the inner loop of design-space exploration (one
//! run per DSE candidate), so its scratch state lives in a reusable
//! [`ScheduleArena`]: ready queues, in-degree counters, the ALAP
//! priority table and a calendar-queue finish ring are bump-grown once
//! and then recycled, and per-cycle issue counts use a fixed
//! [`FuKind`]-indexed array instead of a hash map. After warm-up,
//! [`ScheduleArena::list_schedule_into`] performs **zero heap
//! allocations per candidate** (enforced by a counting-allocator test);
//! the plain [`list_schedule`] entry point reuses a thread-local arena
//! and allocates only its output.

use crate::cdfg::Dfg;
use crate::error::{HlsError, HlsResult};
use crate::oplib::FuKind;
use std::cell::RefCell;
use std::collections::HashMap;

/// Available functional-unit instances per kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceBudget {
    counts: HashMap<FuKind, usize>,
}

impl Default for ResourceBudget {
    fn default() -> ResourceBudget {
        let mut counts = HashMap::new();
        counts.insert(FuKind::FAdd, 2);
        counts.insert(FuKind::FMul, 2);
        counts.insert(FuKind::FDiv, 1);
        counts.insert(FuKind::FSqrt, 1);
        counts.insert(FuKind::FExp, 1);
        counts.insert(FuKind::IntAlu, 4);
        counts.insert(FuKind::IntMul, 2);
        counts.insert(FuKind::MemRead, 2);
        counts.insert(FuKind::MemWrite, 1);
        ResourceBudget { counts }
    }
}

impl ResourceBudget {
    /// A budget with `n` instances of every kind (useful for ablations).
    pub fn uniform(n: usize) -> ResourceBudget {
        let counts = FuKind::ALL.iter().map(|k| (*k, n)).collect();
        ResourceBudget { counts }
    }

    /// Number of instances of `kind` (0 if absent).
    pub fn count(&self, kind: FuKind) -> usize {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Sets the instance count for `kind`, returning `self` for chaining.
    pub fn with(mut self, kind: FuKind, n: usize) -> ResourceBudget {
        self.counts.insert(kind, n);
        self
    }
}

/// A computed schedule: a start cycle per node and the overall makespan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    /// Start cycle of each node (indexed by `NodeId`).
    pub start: Vec<u64>,
    /// Total schedule length in cycles (max finish time).
    pub len: u64,
}

impl Schedule {
    /// Finish cycle of node `id`.
    pub fn finish(&self, dfg: &Dfg, id: usize) -> u64 {
        self.start[id] + dfg.nodes[id].latency
    }
}

/// As-soon-as-possible schedule (ignores resources).
pub fn asap(dfg: &Dfg) -> Schedule {
    let mut start = vec![0u64; dfg.len()];
    let mut len = 0;
    for (id, node) in dfg.nodes.iter().enumerate() {
        let s = node.preds.iter().map(|p| start[*p] + dfg.nodes[*p].latency).max().unwrap_or(0);
        start[id] = s;
        len = len.max(s + node.latency);
    }
    Schedule { start, len }
}

/// As-late-as-possible schedule against `deadline` (ignores resources).
///
/// # Panics
///
/// Panics if `deadline` is shorter than the critical path.
pub fn alap(dfg: &Dfg, deadline: u64) -> Schedule {
    assert!(deadline >= dfg.critical_path(), "deadline below critical path");
    let mut start = vec![0u64; dfg.len()];
    for (id, node) in dfg.nodes.iter().enumerate().rev() {
        let latest_finish = node.succs.iter().map(|s| start[*s]).min().unwrap_or(deadline);
        start[id] = latest_finish - node.latency;
    }
    Schedule { start, len: deadline }
}

/// Reusable scratch for the list scheduler. Buffers grow to the largest
/// DFG seen and are then recycled: scheduling a candidate no bigger than
/// a previous one performs no heap allocation (see
/// `tests/schedule_no_alloc.rs`).
#[derive(Debug, Default)]
pub struct ScheduleArena {
    /// ALAP start per node — the list-scheduling priority.
    late_start: Vec<u64>,
    /// Scratch finish times for the critical-path forward pass.
    finish: Vec<u64>,
    /// Unscheduled-predecessor count per node.
    remaining_preds: Vec<usize>,
    /// Nodes ready to issue / deferred to the next pass.
    ready: Vec<usize>,
    still_ready: Vec<usize>,
    /// Calendar-queue finish ring: bucket `c % ring.len()` holds the
    /// nodes finishing at cycle `c`. Valid because every in-flight
    /// latency is `< ring.len()`, so cycles never collide in a bucket.
    ring: Vec<Vec<usize>>,
    /// Per-cycle issue count and budget, indexed by `FuKind as usize`.
    issued: [usize; FuKind::ALL.len()],
    counts: [usize; FuKind::ALL.len()],
}

impl ScheduleArena {
    /// An empty arena; buffers grow on first use.
    pub fn new() -> ScheduleArena {
        ScheduleArena::default()
    }

    /// Critical path (longest latency chain) via the reused `finish`
    /// scratch — same result as [`Dfg::critical_path`], no allocation
    /// after warm-up.
    fn critical_path(&mut self, dfg: &Dfg) -> u64 {
        self.finish.clear();
        self.finish.resize(dfg.len(), 0);
        let mut longest = 0;
        for (id, node) in dfg.nodes.iter().enumerate() {
            let start = node.preds.iter().map(|p| self.finish[*p]).max().unwrap_or(0);
            self.finish[id] = start + node.latency;
            longest = longest.max(self.finish[id]);
        }
        longest
    }

    /// ALAP start times against `deadline`, into the reused
    /// `late_start` buffer (the priority table).
    fn alap_into(&mut self, dfg: &Dfg, deadline: u64) {
        self.late_start.clear();
        self.late_start.resize(dfg.len(), 0);
        for (id, node) in dfg.nodes.iter().enumerate().rev() {
            let latest_finish =
                node.succs.iter().map(|s| self.late_start[*s]).min().unwrap_or(deadline);
            self.late_start[id] = latest_finish - node.latency;
        }
    }

    /// Resource-constrained list scheduling with ALAP-slack priority,
    /// writing into `out` (its buffer is reused across calls). Produces
    /// exactly the same schedule as [`list_schedule`].
    ///
    /// # Errors
    ///
    /// Returns [`HlsError::Schedule`] if some op needs a unit kind whose
    /// budget is zero.
    pub fn list_schedule_into(
        &mut self,
        out: &mut Schedule,
        dfg: &Dfg,
        budget: &ResourceBudget,
    ) -> HlsResult<()> {
        for (i, kind) in FuKind::ALL.iter().enumerate() {
            self.counts[i] = budget.count(*kind);
        }
        let mut max_latency = 0u64;
        for node in &dfg.nodes {
            if let Some(fu) = node.fu {
                if self.counts[fu as usize] == 0 {
                    return Err(HlsError::Schedule(format!(
                        "op '{}' needs a {fu} unit but the budget has none",
                        node.name
                    )));
                }
            }
            max_latency = max_latency.max(node.latency);
        }
        out.start.clear();
        out.len = 0;
        if dfg.is_empty() {
            return Ok(());
        }
        let cp = self.critical_path(dfg);
        self.alap_into(dfg, cp);

        let n = dfg.len();
        out.start.resize(n, u64::MAX);
        self.remaining_preds.clear();
        self.remaining_preds.extend(dfg.nodes.iter().map(|nd| nd.preds.len()));
        self.ready.clear();
        self.ready.extend((0..n).filter(|i| self.remaining_preds[*i] == 0));
        self.still_ready.clear();
        // Ring span must exceed every in-flight latency; buckets keep
        // their capacity across candidates.
        let span = max_latency as usize + 1;
        if self.ring.len() < span {
            self.ring.resize_with(span, Vec::new);
        }
        for bucket in &mut self.ring {
            bucket.clear();
        }
        let span = self.ring.len();
        let mut scheduled = 0usize;
        let mut cycle: u64 = 0;

        while scheduled < n {
            // Release successors of nodes that finished by `cycle`.
            let bucket = (cycle as usize) % span;
            // Swap the bucket out through `still_ready` (empty here) so
            // releases can push to `ready` without aliasing the ring.
            std::mem::swap(&mut self.ring[bucket], &mut self.still_ready);
            for di in 0..self.still_ready.len() {
                let d = self.still_ready[di];
                for s in &dfg.nodes[d].succs {
                    self.remaining_preds[*s] -= 1;
                    if self.remaining_preds[*s] == 0 {
                        self.ready.push(*s);
                    }
                }
            }
            self.still_ready.clear();
            self.issued = [0; FuKind::ALL.len()];
            // Iterate within the cycle so zero-latency ops (constants)
            // release their consumers immediately instead of costing a
            // cycle.
            loop {
                // Priority: smaller ALAP start first (less slack = more
                // urgent). Keys are unique thanks to the id tie-break, so
                // the unstable (allocation-free) sort is deterministic.
                let late = &self.late_start;
                self.ready.sort_unstable_by_key(|i| (late[*i], *i));
                let mut released_zero_latency = false;
                for ri in 0..self.ready.len() {
                    let i = self.ready[ri];
                    let can_issue = match dfg.nodes[i].fu {
                        None => true,
                        Some(fu) => self.issued[fu as usize] < self.counts[fu as usize],
                    };
                    if can_issue {
                        if let Some(fu) = dfg.nodes[i].fu {
                            self.issued[fu as usize] += 1;
                        }
                        out.start[i] = cycle;
                        let fin = cycle + dfg.nodes[i].latency;
                        out.len = out.len.max(fin);
                        if dfg.nodes[i].latency == 0 {
                            for s in &dfg.nodes[i].succs {
                                self.remaining_preds[*s] -= 1;
                                if self.remaining_preds[*s] == 0 {
                                    self.still_ready.push(*s);
                                    released_zero_latency = true;
                                }
                            }
                        } else {
                            self.ring[(fin as usize) % span].push(i);
                        }
                        scheduled += 1;
                    } else {
                        self.still_ready.push(i);
                    }
                }
                self.ready.clear();
                std::mem::swap(&mut self.ready, &mut self.still_ready);
                if !released_zero_latency {
                    break;
                }
            }
            cycle += 1;
        }
        Ok(())
    }
}

thread_local! {
    /// Per-thread arena behind [`list_schedule`], so DSE pool workers
    /// each recycle their own scratch with no synchronization.
    static ARENA: RefCell<ScheduleArena> = RefCell::new(ScheduleArena::new());
}

/// Resource-constrained list scheduling with ALAP-slack priority.
///
/// Scratch state comes from a thread-local [`ScheduleArena`]; only the
/// returned [`Schedule`] is allocated. Callers scheduling in a tight
/// loop can hold their own arena and reuse the output buffer via
/// [`ScheduleArena::list_schedule_into`].
///
/// # Errors
///
/// Returns [`HlsError::Schedule`] if some op needs a unit kind whose budget
/// is zero.
pub fn list_schedule(dfg: &Dfg, budget: &ResourceBudget) -> HlsResult<Schedule> {
    ARENA.with(|arena| {
        let mut out = Schedule::default();
        arena.borrow_mut().list_schedule_into(&mut out, dfg, budget)?;
        Ok(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use everest_ir::{FuncBuilder, Type};
    use std::collections::HashMap as Map;

    /// Builds a DFG with `k` independent multiplies feeding a reduction add.
    fn parallel_muls(k: usize) -> Dfg {
        let mut fb = FuncBuilder::new("f", &[Type::F64, Type::F64], &[Type::F64]);
        let mut prods = Vec::new();
        for _ in 0..k {
            prods.push(fb.binary("arith.mulf", fb.arg(0), fb.arg(1), Type::F64));
        }
        let mut acc = prods[0];
        for p in &prods[1..] {
            acc = fb.binary("arith.addf", acc, *p, Type::F64);
        }
        fb.ret(&[acc]);
        let f = fb.finish();
        Dfg::from_block(&f, f.body.entry().unwrap(), &Map::new())
    }

    #[test]
    fn asap_matches_critical_path() {
        let dfg = parallel_muls(4);
        let s = asap(&dfg);
        assert_eq!(s.len, dfg.critical_path());
        // All four muls start at 0 when unconstrained.
        for i in 0..4 {
            assert_eq!(s.start[i], 0);
        }
    }

    #[test]
    fn alap_pushes_ops_late() {
        let dfg = parallel_muls(2);
        let cp = dfg.critical_path();
        let late = alap(&dfg, cp + 10);
        let early = asap(&dfg);
        for i in 0..dfg.len() {
            assert!(late.start[i] >= early.start[i]);
        }
        assert_eq!(late.len, cp + 10);
    }

    #[test]
    #[should_panic(expected = "deadline below critical path")]
    fn alap_rejects_tight_deadline() {
        let dfg = parallel_muls(2);
        alap(&dfg, 1);
    }

    #[test]
    fn list_schedule_respects_dependences() {
        let dfg = parallel_muls(4);
        let s = list_schedule(&dfg, &ResourceBudget::default()).unwrap();
        for (id, node) in dfg.nodes.iter().enumerate() {
            for p in &node.preds {
                assert!(
                    s.start[id] >= s.start[*p] + dfg.nodes[*p].latency,
                    "node {id} starts before pred {p} finishes"
                );
            }
        }
    }

    #[test]
    fn list_schedule_respects_resource_limits() {
        let dfg = parallel_muls(6);
        let budget = ResourceBudget::default().with(FuKind::FMul, 1);
        let s = list_schedule(&dfg, &budget).unwrap();
        // At most one mul issued per cycle.
        let mut per_cycle: HashMap<u64, usize> = HashMap::new();
        for (id, node) in dfg.nodes.iter().enumerate() {
            if node.fu == Some(FuKind::FMul) {
                *per_cycle.entry(s.start[id]).or_insert(0) += 1;
            }
        }
        assert!(per_cycle.values().all(|c| *c <= 1));
        // With 6 muls on one unit, the last mul cannot start before cycle 5.
        let latest_mul = dfg
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.fu == Some(FuKind::FMul))
            .map(|(i, _)| s.start[i])
            .max()
            .unwrap();
        assert!(latest_mul >= 5);
    }

    #[test]
    fn more_units_never_hurt() {
        let dfg = parallel_muls(8);
        let tight = list_schedule(&dfg, &ResourceBudget::uniform(1)).unwrap();
        let wide = list_schedule(&dfg, &ResourceBudget::uniform(8)).unwrap();
        assert!(wide.len <= tight.len);
        assert_eq!(wide.len, dfg.critical_path());
    }

    #[test]
    fn zero_budget_is_an_error() {
        let dfg = parallel_muls(2);
        let err =
            list_schedule(&dfg, &ResourceBudget::default().with(FuKind::FMul, 0)).unwrap_err();
        assert!(err.to_string().contains("fmul"));
    }

    #[test]
    fn empty_dfg_schedules_to_zero() {
        let dfg = Dfg::default();
        let s = list_schedule(&dfg, &ResourceBudget::default()).unwrap();
        assert_eq!(s.len, 0);
    }
}
