//! Enforces the HLS scheduler's zero-allocation acceptance criterion:
//! once a [`ScheduleArena`] has warmed up on the largest candidate, every
//! further `list_schedule_into` call — same kernel, smaller kernels,
//! tighter budgets alike — performs no heap allocation. This is what
//! makes design-space exploration sweeps (thousands of schedule calls
//! over the same kernels with varying budgets) allocation-free in steady
//! state. Lives in its own integration-test binary because it swaps in a
//! counting global allocator (the same technique as
//! `crates/apps/tests/ptdr_no_alloc.rs`).

use everest_hls::cdfg::Dfg;
use everest_hls::schedule::{ResourceBudget, Schedule, ScheduleArena};
use everest_hls::FuKind;
use everest_ir::{FuncBuilder, Type};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::collections::HashMap;

struct CountingAllocator;

// Const-initialized Cell<u64> TLS: the access itself never allocates
// and registers no destructor, so it is safe inside the allocator.
// Per-thread counting keeps the libtest harness's main thread (and any
// sibling test) from perturbing the measured window.
std::thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// A DFG with `k` independent multiply chains feeding a reduction tree —
/// wide enough to exercise resource contention and the ready-queue sort.
fn candidate(k: usize) -> Dfg {
    let mut fb = FuncBuilder::new("f", &[Type::F64, Type::F64], &[Type::F64]);
    let mut prods = Vec::new();
    for _ in 0..k {
        let m = fb.binary("arith.mulf", fb.arg(0), fb.arg(1), Type::F64);
        prods.push(fb.binary("arith.mulf", m, fb.arg(1), Type::F64));
    }
    let mut acc = prods[0];
    for p in &prods[1..] {
        acc = fb.binary("arith.addf", acc, *p, Type::F64);
    }
    fb.ret(&[acc]);
    let f = fb.finish();
    Dfg::from_block(&f, f.body.entry().unwrap(), &HashMap::new())
}

#[test]
fn warm_arena_schedules_allocate_nothing() {
    let large = candidate(24);
    let small = candidate(5);
    let budgets = [
        ResourceBudget::default(),
        ResourceBudget::default().with(FuKind::FMul, 1),
        ResourceBudget::default().with(FuKind::FMul, 2).with(FuKind::FAdd, 1),
    ];
    let mut arena = ScheduleArena::new();
    let mut out = Schedule::default();

    // Warm-up: touch the largest candidate under every budget so all
    // scratch buffers (priority table, ready queues, finish ring, output
    // starts) reach their high-water capacity.
    for budget in &budgets {
        arena.list_schedule_into(&mut out, &large, budget).unwrap();
    }
    let reference: Vec<u64> = out.start.clone();

    let before = ALLOCATIONS.with(Cell::get);
    for round in 0..50usize {
        // A DSE-style sweep: alternate candidates and budgets, reusing
        // both the arena and the output schedule.
        let dfg = if round % 2 == 0 { &large } else { &small };
        arena.list_schedule_into(&mut out, dfg, &budgets[round % budgets.len()]).unwrap();
        std::hint::black_box(out.len);
    }
    let after = ALLOCATIONS.with(Cell::get);
    assert_eq!(after - before, 0, "warm arena schedules must not allocate");

    // The recycled path still produces the exact same schedule.
    arena.list_schedule_into(&mut out, &large, &budgets[2]).unwrap();
    assert_eq!(out.start, reference);
}

#[test]
fn arena_path_matches_public_entry_point() {
    let dfg = candidate(9);
    let budget = ResourceBudget::default().with(FuKind::FMul, 2);
    let via_fn = everest_hls::schedule::list_schedule(&dfg, &budget).unwrap();
    let mut arena = ScheduleArena::new();
    let mut out = Schedule::default();
    arena.list_schedule_into(&mut out, &dfg, &budget).unwrap();
    assert_eq!(out.start, via_fn.start);
    assert_eq!(out.len, via_fn.len);
}
