//! Differential testing of the tensor→loop-nest lowering: for every kernel,
//! interpreting the abstract tensor ops and interpreting the lowered
//! `loop`/`mem` form must produce identical results. This is the
//! correctness contract behind all HLS latency/area numbers.

use everest_hls::tensor_to_loops::lower_to_loops;
use everest_ir::interp::{Interp, RtValue};
use everest_ir::{Func, Type};
use proptest::prelude::*;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn compile(src: &str, name: &str) -> Func {
    everest_dsl::compile_kernels(src).unwrap().func(name).unwrap().clone()
}

fn random_data(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-4.0..4.0)).collect()
}

/// Interprets the tensor form and the lowered loop form on the same data
/// and asserts elementwise agreement.
fn assert_lowering_preserves(func: &Func, seed: u64) {
    // Tensor-form inputs (scalars stay scalar).
    let mut tensor_args = Vec::new();
    let mut raw_inputs: Vec<Vec<f64>> = Vec::new();
    for (i, p) in func.params.iter().enumerate() {
        match p {
            Type::Tensor { shape, .. } => {
                let data = random_data(seed + i as u64, shape.iter().product());
                raw_inputs.push(data.clone());
                tensor_args.push(RtValue::tensor(shape, data));
            }
            scalar if scalar.is_scalar() => {
                let v = random_data(seed + i as u64, 1)[0];
                raw_inputs.push(vec![v]);
                tensor_args.push(RtValue::Float(v));
            }
            other => panic!("unexpected param {other}"),
        }
    }
    let tensor_out = Interp::new().call(func, &tensor_args).expect("tensor form runs");
    let (ref_shape, ref_data) = match &tensor_out[0] {
        RtValue::Tensor { shape, data } => (shape.clone(), data.clone()),
        other => panic!("kernel must return a tensor, got {other:?}"),
    };

    // Loop-form: memref buffers for tensors + trailing out-buffer.
    let lowered = lower_to_loops(func).expect("lowers");
    everest_ir::verify::verify_func(&lowered).expect("lowered verifies");
    let mut interp = Interp::new();
    let mut loop_args = Vec::new();
    for (i, p) in func.params.iter().enumerate() {
        match p {
            Type::Tensor { shape, .. } => {
                loop_args.push(interp.alloc_buffer(shape, raw_inputs[i].clone()));
            }
            _ => loop_args.push(RtValue::Float(raw_inputs[i][0])),
        }
    }
    let out_handle = interp.alloc_buffer(&ref_shape, vec![0.0; ref_data.len()]);
    loop_args.push(out_handle.clone());
    interp.call(&lowered, &loop_args).expect("loop form runs");
    let got = interp.buffer(&out_handle);

    assert_eq!(got.len(), ref_data.len());
    for (i, (g, r)) in got.iter().zip(&ref_data).enumerate() {
        assert!(
            (g - r).abs() <= 1e-9 * (1.0 + r.abs()),
            "@{}: element {i} differs: lowered {g} vs tensor {r}",
            func.name
        );
    }
}

#[test]
fn matmul_lowering_is_exact() {
    let f = compile(
        "kernel mm(a: tensor<5x7xf64>, b: tensor<7x3xf64>) -> tensor<5x3xf64> { return a @ b; }",
        "mm",
    );
    assert_lowering_preserves(&f, 1);
}

#[test]
fn elementwise_chain_lowering_is_exact() {
    let f = compile(
        "kernel f(a: tensor<9xf64>, b: tensor<9xf64>) -> tensor<9xf64> { return 2.5 * a + b * b; }",
        "f",
    );
    assert_lowering_preserves(&f, 2);
}

#[test]
fn transpose_lowering_is_exact() {
    let f = compile(
        "kernel t(a: tensor<4x6xf64>) -> tensor<6x4xf64> { return transpose(a, [1, 0]); }",
        "t",
    );
    assert_lowering_preserves(&f, 3);
}

#[test]
fn transpose_3d_lowering_is_exact() {
    let f = compile(
        "kernel t(a: tensor<2x3x4xf64>) -> tensor<4x2x3xf64> { return transpose(a, [2, 0, 1]); }",
        "t",
    );
    assert_lowering_preserves(&f, 4);
}

#[test]
fn reduce_lowerings_are_exact() {
    for kind in ["sum", "mean", "max", "min"] {
        let src = format!(
            "kernel r(a: tensor<4x6xf64>) -> tensor<4xf64> {{ return reduce_{kind}(a, [1]); }}"
        );
        let f = compile(&src, "r");
        assert_lowering_preserves(&f, 5);
    }
}

#[test]
fn stencil_lowering_is_exact() {
    let f = compile(
        "kernel s(a: tensor<16xf64>) -> tensor<16xf64> { return stencil(a, [0.2, 0.5, 0.3]); }",
        "s",
    );
    assert_lowering_preserves(&f, 6);
    let f5 = compile(
        "kernel s(a: tensor<3x20xf64>) -> tensor<3x20xf64> { return stencil(a, [0.1, 0.2, 0.4, 0.2, 0.1]); }",
        "s",
    );
    assert_lowering_preserves(&f5, 7);
}

#[test]
fn conv2d_lowering_is_exact() {
    let f = compile(
        "kernel c(x: tensor<8x9xf64>, k: tensor<3x3xf64>) -> tensor<8x9xf64> { return conv2d(x, k); }",
        "c",
    );
    assert_lowering_preserves(&f, 8);
    let f5 = compile(
        "kernel c(x: tensor<10x10xf64>, k: tensor<5x3xf64>) -> tensor<10x10xf64> { return conv2d(x, k); }",
        "c",
    );
    assert_lowering_preserves(&f5, 9);
}

#[test]
fn activations_lowering_is_exact() {
    let f = compile("kernel a(x: tensor<11xf64>) -> tensor<11xf64> { return relu(x); }", "a");
    assert_lowering_preserves(&f, 10);
    let g = compile("kernel a(x: tensor<11xf64>) -> tensor<11xf64> { return sigmoid(x); }", "a");
    assert_lowering_preserves(&g, 11);
}

#[test]
fn identity_copy_is_exact() {
    let f = compile("kernel id(a: tensor<6x6xf64>) -> tensor<6x6xf64> { return a; }", "id");
    assert_lowering_preserves(&f, 12);
}

#[test]
fn mixed_pipeline_is_exact() {
    let f = compile(
        "kernel p(a: tensor<6x6xf64>, b: tensor<6x6xf64>, s: f64) -> tensor<6xf64> {
             var c = a @ b;
             var d = relu(c + s * a);
             return reduce_mean(d, [1]);
         }",
        "p",
    );
    assert_lowering_preserves(&f, 13);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_matmul_shapes_lower_exactly(
        m in 1usize..7,
        k in 1usize..7,
        n in 1usize..7,
        seed in any::<u64>(),
    ) {
        let src = format!(
            "kernel mm(a: tensor<{m}x{k}xf64>, b: tensor<{k}x{n}xf64>) -> tensor<{m}x{n}xf64> {{ return a @ b; }}"
        );
        let f = compile(&src, "mm");
        assert_lowering_preserves(&f, seed);
    }

    #[test]
    fn random_stencils_lower_exactly(
        len in 3usize..24,
        radius in 1usize..3,
        seed in any::<u64>(),
    ) {
        prop_assume!(len > 2 * radius);
        let weights: Vec<String> =
            (0..2 * radius + 1).map(|i| format!("0.{}", i + 1)).collect();
        let src = format!(
            "kernel s(a: tensor<{len}xf64>) -> tensor<{len}xf64> {{ return stencil(a, [{}]); }}",
            weights.join(", ")
        );
        let f = compile(&src, "s");
        assert_lowering_preserves(&f, seed);
    }

    #[test]
    fn random_elementwise_exprs_lower_exactly(
        n in 1usize..20,
        scale in -3.0f64..3.0,
        seed in any::<u64>(),
    ) {
        let src = format!(
            "kernel e(a: tensor<{n}xf64>, b: tensor<{n}xf64>) -> tensor<{n}xf64> {{
                 var c = a * b - b;
                 return {scale:.3} * c + a;
             }}"
        );
        let f = compile(&src, "e");
        assert_lowering_preserves(&f, seed);
    }
}
