//! Property tests for the HLS engine: scheduling invariants over random
//! DFGs and partitioning invariants over random configurations.

use everest_hls::binding::bind;
use everest_hls::cdfg::Dfg;
use everest_hls::memory::{Partitioning, Scheme};
use everest_hls::schedule::{asap, list_schedule, ResourceBudget};
use everest_hls::FuKind;
use everest_ir::{FuncBuilder, Type, Value};
use proptest::prelude::*;
use std::collections::HashMap;

/// Builds a random straight-line float function: constants plus a chain of
/// binary ops over randomly chosen available values.
fn random_dfg(consts: usize, picks: &[(u8, usize, usize)]) -> Dfg {
    let mut fb = FuncBuilder::new("f", &[Type::F64, Type::F64], &[Type::F64]);
    let mut avail: Vec<Value> = vec![fb.arg(0), fb.arg(1)];
    for i in 0..consts {
        avail.push(fb.const_f(i as f64 + 0.5, Type::F64));
    }
    for (kind, i, j) in picks {
        let a = avail[i % avail.len()];
        let b = avail[j % avail.len()];
        let name = match kind % 5 {
            0 => "arith.addf",
            1 => "arith.subf",
            2 => "arith.mulf",
            3 => "arith.divf",
            _ => "arith.maxf",
        };
        let v = fb.binary(name, a, b, Type::F64);
        avail.push(v);
    }
    let last = *avail.last().unwrap();
    fb.ret(&[last]);
    let f = fb.finish();
    Dfg::from_block(&f, f.body.entry().unwrap(), &HashMap::new())
}

proptest! {
    #[test]
    fn list_schedule_respects_dependences_and_budget(
        consts in 1usize..4,
        picks in prop::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..40),
        budget_n in 1usize..4,
    ) {
        let dfg = random_dfg(consts, &picks);
        let budget = ResourceBudget::uniform(budget_n);
        let schedule = list_schedule(&dfg, &budget).expect("schedules");

        // 1. Dependences: no node starts before its predecessors finish.
        for (id, node) in dfg.nodes.iter().enumerate() {
            for p in &node.preds {
                prop_assert!(
                    schedule.start[id] >= schedule.start[*p] + dfg.nodes[*p].latency,
                    "node {id} violates dep on {p}"
                );
            }
        }
        // 2. Resources: per cycle, per kind, at most `budget_n` issues.
        let mut per_cycle: HashMap<(FuKind, u64), usize> = HashMap::new();
        for (id, node) in dfg.nodes.iter().enumerate() {
            if let Some(fu) = node.fu {
                *per_cycle.entry((fu, schedule.start[id])).or_insert(0) += 1;
            }
        }
        for ((kind, cycle), count) in per_cycle {
            prop_assert!(count <= budget_n, "{count} {kind} issues at cycle {cycle}");
        }
        // 3. The unconstrained ASAP schedule is a lower bound.
        prop_assert!(schedule.len >= asap(&dfg).len.min(dfg.critical_path()));
        prop_assert!(schedule.len >= dfg.critical_path());
    }

    #[test]
    fn binding_never_double_books_an_instance(
        picks in prop::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..30),
    ) {
        let dfg = random_dfg(2, &picks);
        let budget = ResourceBudget::uniform(2);
        let schedule = list_schedule(&dfg, &budget).expect("schedules");
        let binding = bind(&dfg, &schedule);
        let mut seen = std::collections::HashSet::new();
        for (id, slot) in binding.assignment.iter().enumerate() {
            if let Some((kind, instance)) = slot {
                prop_assert!(*instance < binding.allocation[kind]);
                prop_assert!(
                    seen.insert((schedule.start[id], *kind, *instance)),
                    "instance double-booked"
                );
            }
        }
    }

    #[test]
    fn more_budget_never_lengthens_the_schedule(
        picks in prop::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..25),
    ) {
        let dfg = random_dfg(2, &picks);
        let tight = list_schedule(&dfg, &ResourceBudget::uniform(1)).expect("tight");
        let wide = list_schedule(&dfg, &ResourceBudget::uniform(8)).expect("wide");
        prop_assert!(wide.len <= tight.len);
    }

    #[test]
    fn partitioning_is_a_bijection(
        size in 1usize..2000,
        banks in 1usize..17,
        cyclic in any::<bool>(),
        ports in 1usize..3,
    ) {
        prop_assume!(banks <= size);
        let scheme = if cyclic { Scheme::Cyclic } else { Scheme::Block };
        let p = Partitioning::new(size, banks, scheme, ports).expect("valid");
        let mut seen = std::collections::HashSet::new();
        for i in 0..size {
            let (bank, offset) = p.map(i);
            prop_assert!(bank < banks, "bank out of range");
            prop_assert!(offset < p.bank_depth(), "offset beyond depth");
            prop_assert!(seen.insert((bank, offset)), "slot reused for index {i}");
        }
    }

    #[test]
    fn cyclic_banks_at_least_span_make_contiguous_accesses_conflict_free(
        radius in 1usize..5,
        extra_banks in 0usize..8,
    ) {
        let span = 2 * radius + 1;
        let banks = span + extra_banks;
        let offsets: Vec<i64> = (-(radius as i64)..=(radius as i64)).collect();
        let p = Partitioning::new(banks * 64, banks, Scheme::Cyclic, 1).expect("valid");
        prop_assert_eq!(p.min_ii(&offsets), 1);
    }

    #[test]
    fn min_ii_monotone_in_ports(
        offsets in prop::collection::vec(-8i64..8, 1..8),
        banks in 1usize..9,
    ) {
        let p1 = Partitioning::new(1024, banks, Scheme::Block, 1).expect("p1");
        let p2 = Partitioning::new(1024, banks, Scheme::Block, 2).expect("p2");
        prop_assert!(p2.min_ii(&offsets) <= p1.min_ii(&offsets));
    }
}
