//! Security integration: secure-dialect annotations, DIFT taint tracking,
//! authenticated encryption and the auto-protection loop acting together —
//! the paper's "data-centric approach for security" (III-A).

use everest::hls::dift::TaintEngine;
use everest::ir::dialects::secure;
use everest::ir::{FuncBuilder, Module, Type};
use everest::runtime::RuntimeMonitor;
use everest::security::modes::AesGcm;
use everest::security::{hmac_sha256, sha256, AccessMonitor, RangeMonitor};

#[test]
fn secure_dialect_annotations_survive_compilation() {
    let data_ty = Type::tensor(Type::F64, &[16]);
    let key_ty = Type::Bytes(16);
    let mut fb = FuncBuilder::new("protect", &[data_ty, key_ty], &[]);
    let (a0, a1) = (fb.arg(0), fb.arg(1));
    let tainted = secure::taint(&mut fb, a0, "patient-data");
    let ct = secure::encrypt(&mut fb, tainted, a1);
    secure::check(&mut fb, ct, "no-plaintext-export");
    fb.ret(&[]);
    let mut module = Module::new("secure");
    module.push(fb.finish());
    module.verify().expect("secure ops verify");
    // Round-trip through the textual format (exchange between tools).
    let text = module.to_text();
    let parsed = everest::ir::parse_module(&text).expect("parses");
    assert_eq!(parsed.to_text(), text);
}

#[test]
fn taint_tracking_matches_encryption_boundary() {
    // Model the dataflow of the kernel above in the taint engine: the
    // policy allows exporting ciphertext but not anything tainted by the
    // plaintext label after declassification-by-encryption.
    let mut engine = TaintEngine::new();
    engine.taint("plaintext", "pii");
    engine.taint("key", "secret");
    engine.propagate(&["plaintext", "key"], "ciphertext");
    assert!(engine.is_tainted("ciphertext", "pii"));
    // Encryption is the sanctioned declassification point.
    engine.declassify("ciphertext");
    let violations = engine.check_outputs(&["ciphertext"], &["pii", "secret"]);
    assert!(violations.is_empty());
    // Leaking the raw plaintext is still caught.
    engine.propagate(&["plaintext"], "debug_log");
    let violations = engine.check_outputs(&["debug_log"], &["pii"]);
    assert_eq!(violations.len(), 1);
}

#[test]
fn encrypted_telemetry_is_tamper_evident_end_to_end() {
    // Edge node seals sensor data; cloud node opens it. A bit flipped in
    // flight (or a wrong AAD routing header) must be detected.
    let key = sha256(b"everest-session-key-material");
    let key16: [u8; 16] = key[..16].try_into().expect("16-byte key slice");
    let gcm = AesGcm::new(&key16);
    let nonce = [3u8; 12];
    let telemetry = b"wind=11.3m/s power=2.41MW hour=14";
    let sealed = gcm.seal(&nonce, telemetry, b"edge-arm->cloud-p9");

    // Happy path.
    let opened = gcm.open(&nonce, &sealed, b"edge-arm->cloud-p9").expect("authentic");
    assert_eq!(opened, telemetry);

    // Tampered payload.
    let mut corrupted = sealed.clone();
    corrupted[5] ^= 0x80;
    assert!(gcm.open(&nonce, &corrupted, b"edge-arm->cloud-p9").is_err());

    // Replayed to the wrong route (AAD mismatch).
    assert!(gcm.open(&nonce, &sealed, b"edge-arm->endpoint-0").is_err());

    // Integrity of the full message log via HMAC chaining.
    let mac1 = hmac_sha256(&key, &sealed);
    let mac2 = hmac_sha256(&key, &sealed);
    assert_eq!(mac1, mac2);
}

#[test]
fn buffer_overflow_scan_triggers_hardened_mode() {
    // Train the access monitor on the kernel's legal stride pattern, then
    // replay an attack-like linear byte scan; the auto-protect policy must
    // switch the runtime to hardened variants.
    let mut access = AccessMonitor::new(6);
    for i in 0..64u64 {
        access.observe(0x1000 + i * 8);
    }
    access.freeze();

    let range = RangeMonitor::new(-50.0, 60.0);
    let mut monitor = RuntimeMonitor::new(500_000);
    // Benign warm-up.
    for _ in 0..30 {
        monitor.record(120.0, false, false);
    }
    assert!(!monitor.system_state().require_hardened);

    // Attack phase: unknown strides + out-of-range sensor values.
    let mut saw_alarm = false;
    for addr in 0x9000u64..0x9040 {
        let alarm = access.observe(addr);
        saw_alarm |= alarm;
        monitor.record(120.0, alarm, range.observe(1e9));
    }
    assert!(saw_alarm, "the scan must trip the access monitor");
    assert!(monitor.system_state().require_hardened);
    assert!(monitor.isolations() > 0, "combined alarms escalate to isolation");
}

#[test]
fn dift_hardened_accelerator_available_when_required() {
    // Compile with DIFT points in the space, then demand hardened execution.
    use everest::variants::space::DesignSpace;
    use everest::variants::Transform;
    let sdk = everest::Sdk {
        space: DesignSpace { dift: vec![false, true], ..DesignSpace::small() },
        ..everest::Sdk::builder().build()
    };
    let compiled =
        sdk.compile("kernel f(x: tensor<64xf64>) -> tensor<64xf64> { return relu(x); }").unwrap();
    let kernel = compiled.kernel("f").unwrap();
    let tuner = kernel.autotuner();
    let hardened = tuner
        .select(&everest::runtime::autotuner::SystemState {
            require_hardened: true,
            ..Default::default()
        })
        .expect("a hardened or software point exists");
    let ok = !hardened.is_hardware()
        || hardened.transforms.iter().any(|t| matches!(t, Transform::Dift(true)));
    assert!(ok, "selected point must be software or DIFT-hardened");
}
