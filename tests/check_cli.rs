//! End-to-end check of `everestc check`: every lint code must report a
//! true positive on its seeded fixture under `examples/lints/`, the clean
//! examples must come back empty with exit code 0, and `--format json`
//! must emit a parseable, versioned diagnostics envelope.

use serde_json::Value;
use std::path::PathBuf;
use std::process::Command;

fn everestc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_everestc"))
}

fn example(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples").join(name)
}

fn check(args: &[&PathBuf], format: Option<&str>) -> (String, i32) {
    let mut cmd = everestc();
    cmd.arg("check");
    if let Some(f) = format {
        cmd.arg("--format").arg(f);
    }
    for a in args {
        cmd.arg(a);
    }
    let out = cmd.output().expect("everestc runs");
    assert!(
        out.stderr.is_empty(),
        "check must not error: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (String::from_utf8(out.stdout).expect("utf-8 stdout"), out.status.code().unwrap())
}

#[test]
fn every_lint_code_fires_on_its_seeded_fixture() {
    let fixtures = [
        example("lints/dead_store.eir"),
        example("lints/range_oob.eir"),
        example("lints/taint_flow.eir"),
        example("lints/race.ewf"),
    ];
    let (stdout, code) = check(&fixtures.iter().collect::<Vec<_>>(), None);
    assert_eq!(code, 1, "error diagnostics must fail the check:\n{stdout}");
    for lint in ["dead-store", "unused-result", "range-oob", "taint-flow", "wf-race"] {
        assert!(stdout.contains(&format!("[{lint}]")), "missing lint '{lint}':\n{stdout}");
    }
    // Each diagnostic line carries its file, function, and location.
    assert!(stdout.contains("examples/lints/range_oob.eir: error[range-oob] @overrun"));
    assert!(stdout.contains("^bb0 op 1 / ^bb1 op 0"), "nested loop site:\n{stdout}");
    assert!(stdout.contains("check: 3 errors, 2 warnings"), "{stdout}");
}

#[test]
fn clean_examples_produce_no_diagnostics() {
    // With the kernel sources on the search path the workflow's tasks must
    // all resolve; a missing kernel would be a wf-unresolved-kernel error.
    let clean = [example("kernels.edsl"), example("cascade.edsl"), example("pipeline.ewf")];
    let (stdout, code) = check(&clean.iter().collect::<Vec<_>>(), None);
    assert_eq!(code, 0, "{stdout}");
    assert_eq!(stdout, "check: 0 errors, 0 warnings\n");
}

#[test]
fn json_format_is_a_parseable_diagnostics_array() {
    let fixtures = [example("lints/taint_flow.eir"), example("lints/race.ewf")];
    let (stdout, code) = check(&fixtures.iter().collect::<Vec<_>>(), Some("json"));
    assert_eq!(code, 1);
    let value: Value = serde_json::from_str(&stdout).expect("valid JSON");
    assert_eq!(value.get("schema_version"), Some(&Value::Int(1)), "{stdout}");
    let Some(Value::Array(diags)) = value.get("diagnostics") else {
        panic!("diagnostics must be a JSON array: {stdout}")
    };
    assert_eq!(diags.len(), 2, "{stdout}");
    for d in diags {
        for field in ["severity", "code", "func", "location", "message", "snippet", "file"] {
            assert!(d.get(field).is_some(), "diagnostic missing field '{field}': {stdout}");
        }
    }
    let codes: Vec<&str> = diags
        .iter()
        .filter_map(|d| match d.get("code") {
            Some(Value::Str(s)) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(codes, ["taint-flow", "wf-race"]);
}

#[test]
fn json_format_on_clean_input_is_an_empty_envelope() {
    let clean = [example("pipeline.ewf")];
    let (stdout, code) = check(&clean.iter().collect::<Vec<_>>(), Some("json"));
    assert_eq!(code, 0);
    assert_eq!(stdout.trim(), "{\"schema_version\": 1, \"diagnostics\": []}");
}

#[test]
fn bad_format_and_missing_paths_are_usage_errors() {
    let out = everestc().arg("check").arg("--format").arg("xml").arg("x.eir").output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--format"));

    let out = everestc().arg("check").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "no paths is a usage error");
}
