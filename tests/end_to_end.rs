//! End-to-end integration: DSL source → unified IR → variants → HLS →
//! deployment on the reference system → runtime adaptation, spanning every
//! crate of the workspace.

use everest::runtime::adaptation::{run_scenario, Phase, Strategy};
use everest::runtime::autotuner::SystemState;
use everest::Sdk;

const SRC: &str = "
    kernel gemm(a: tensor<64x64xf64>, b: tensor<64x64xf64>) -> tensor<64x64xf64> {
        return a @ b;
    }
    kernel smooth(x: tensor<4096xf64>) -> tensor<4096xf64> {
        return stencil(x, [0.25, 0.5, 0.25]);
    }
    kernel activate(x: tensor<4096xf64>) -> tensor<4096xf64> {
        return sigmoid(x);
    }
";

#[test]
fn compile_produces_verified_ir_and_variants() {
    let sdk = Sdk::builder().build();
    let compiled = sdk.compile(SRC).expect("compiles");
    compiled.module.verify().expect("module verifies after passes");
    assert_eq!(compiled.kernels.len(), 3);
    for kernel in &compiled.kernels {
        assert_eq!(kernel.variants.len(), sdk.space.size(), "kernel {}", kernel.name);
        // Hardware and software variants both present.
        assert!(kernel.variants.iter().any(|v| v.is_hardware()));
        assert!(kernel.variants.iter().any(|v| !v.is_hardware()));
        // Every hardware variant carries area; software carries none.
        for v in &kernel.variants {
            if v.is_hardware() {
                assert!(v.metrics.area_luts > 0, "{} has no area", v.id);
            } else {
                assert_eq!(v.metrics.area_luts, 0);
            }
        }
    }
}

fn best_hw_us(kernel: &everest::CompiledKernel) -> f64 {
    kernel
        .variants
        .iter()
        .filter(|v| v.is_hardware())
        .map(|v| v.metrics.total_us())
        .fold(f64::INFINITY, f64::min)
}

fn sw_threads_us(kernel: &everest::CompiledKernel, threads: u32) -> f64 {
    kernel
        .variants
        .iter()
        .filter(|v| {
            !v.is_hardware()
                && v.transforms
                    .iter()
                    .any(|t| matches!(t, everest::variants::Transform::Threads(n) if *n == threads))
        })
        .map(|v| v.metrics.total_us())
        .fold(f64::INFINITY, f64::min)
}

#[test]
fn transcendental_kernel_acceleration_beats_software_latency() {
    // The paper's performance claim (VI-D): custom function units shine on
    // the AI-style kernels (activations) where CPUs burn many flops per
    // element.
    let sdk = Sdk::builder().build();
    let compiled = sdk.compile(SRC).unwrap();
    let activate = compiled.kernel("activate").unwrap();
    let hw = best_hw_us(activate);
    let sw1 = sw_threads_us(activate, 1);
    assert!(hw < sw1, "hardware {hw} us should beat 1-thread software {sw1} us");
}

#[test]
fn gemm_acceleration_wins_on_energy() {
    // For dense linear algebra the FPGA's edge is energy (performance per
    // watt), the second half of the paper's VI-D claim.
    let sdk = Sdk::builder().build();
    let compiled = sdk.compile(SRC).unwrap();
    let gemm = compiled.kernel("gemm").unwrap();
    let best_hw_energy = gemm
        .variants
        .iter()
        .filter(|v| v.is_hardware())
        .map(|v| v.metrics.energy_mj)
        .fold(f64::INFINITY, f64::min);
    let best_sw_energy = gemm
        .variants
        .iter()
        .filter(|v| !v.is_hardware())
        .map(|v| v.metrics.energy_mj)
        .fold(f64::INFINITY, f64::min);
    assert!(
        best_hw_energy < best_sw_energy,
        "hardware energy {best_hw_energy} mJ should beat software {best_sw_energy} mJ"
    );
}

#[test]
fn deployment_fits_reference_fabric_and_selection_respects_state() {
    let sdk = Sdk::builder().build();
    let compiled = sdk.compile(SRC).unwrap();
    let deployment = sdk.deploy(&compiled, "cloud-p9").expect("all kernels deploy");
    assert_eq!(deployment.placements.len(), 3);
    // Free fabric shrank but stayed positive.
    assert!(deployment.hypervisor.vfpga.free_luts() > 0);

    // Under an energy objective (the paper's efficiency claim) the
    // accelerator wins whenever fabric is free; losing the fabric forces a
    // software point.
    let mut tuner = compiled.kernel("activate").unwrap().autotuner();
    tuner.set_objective(everest::runtime::Objective::MinEnergy);
    let fast = tuner.select(&SystemState::default()).unwrap();
    assert!(fast.is_hardware(), "with free fabric the accelerator wins on energy");
    let no_fabric = tuner.select(&SystemState { free_luts: 0, ..Default::default() }).unwrap();
    assert!(!no_fabric.is_hardware(), "without fabric a software point is chosen");
}

#[test]
fn adaptation_scenario_with_real_variants() {
    let sdk = Sdk::builder().space(everest::DesignSpace::small()).build();
    let compiled = sdk.compile(SRC).unwrap();
    let points = compiled.kernel("gemm").unwrap().variants.clone();
    let phases = vec![
        Phase::calm("steady", 40),
        Phase { congestion: 200.0, ..Phase::calm("congested", 40) },
        Phase { free_luts: 0, ..Phase::calm("fabric-gone", 40) },
        Phase::calm("recovered", 40),
    ];
    let adaptive = run_scenario(&points, &phases, Strategy::Adaptive);
    let oracle = run_scenario(&points, &phases, Strategy::Oracle);
    assert!(adaptive.total_us >= oracle.total_us - 1e-6);
    assert!(
        adaptive.total_us <= oracle.total_us * 1.3,
        "adaptive {} must track oracle {}",
        adaptive.total_us,
        oracle.total_us
    );
    // Every static choice loses to adaptation across these phases.
    for i in 0..points.len() {
        let static_run = run_scenario(&points, &phases, Strategy::Static(i));
        assert!(
            adaptive.total_us <= static_run.total_us + 1e-6,
            "static #{i} ({}) beat adaptive",
            points[i].id
        );
    }
}

#[test]
fn variant_metadata_round_trips_to_runtime_via_json() {
    // "Meta-information about the variants will be provided to the runtime
    // system": serialize at compile time, deserialize runtime-side.
    let sdk = Sdk::builder().space(everest::DesignSpace::small()).build();
    let compiled = sdk.compile(SRC).unwrap();
    let kernel = compiled.kernel("smooth").unwrap();
    let wire: Vec<String> = kernel.variants.iter().map(|v| v.to_json()).collect();
    let restored: Vec<everest::variants::Variant> = wire
        .iter()
        .map(|j| everest::variants::Variant::from_json(j).expect("valid json"))
        .collect();
    assert_eq!(restored, kernel.variants);
    let tuner = everest::runtime::Autotuner::new(restored);
    assert!(tuner.select(&SystemState::default()).is_ok());
}
