//! End-to-end check of `everestc fuse`: the JSON fusion plan must be
//! bit-identical across runs and at any `--jobs` count, the
//! ensemble_field -> plume edge of the shipped cascade must certify
//! fusable with an explicit footprint bound under the BRAM budget, and
//! the aliased-sink fixture must be rejected with a rendered
//! counterexample.

use serde_json::Value;
use std::path::PathBuf;
use std::process::Command;

fn everestc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_everestc"))
}

fn example(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples").join(name)
}

fn fuse(args: &[&str], paths: &[&PathBuf]) -> (String, String, i32) {
    let mut cmd = everestc();
    cmd.arg("fuse");
    for a in args {
        cmd.arg(a);
    }
    for p in paths {
        cmd.arg(p);
    }
    let out = cmd.output().expect("everestc runs");
    (
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        String::from_utf8(out.stderr).expect("utf-8 stderr"),
        out.status.code().unwrap(),
    )
}

#[test]
fn json_plan_is_bit_identical_across_runs_and_jobs() {
    let wf = example("pipeline.ewf");
    let (reference, stderr, code) = fuse(&["--format", "json"], &[&wf]);
    assert_eq!(code, 0, "clean cascade must fuse without diagnostics:\n{stderr}");
    assert!(stderr.is_empty(), "{stderr}");
    for jobs in ["1", "2", "8"] {
        let mut cmd = everestc();
        cmd.arg("--jobs").arg(jobs).arg("fuse").arg("--format").arg("json").arg(&wf);
        let out = cmd.output().expect("everestc runs");
        assert_eq!(out.status.code(), Some(0));
        let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
        assert_eq!(stdout, reference, "plan must be bit-identical at --jobs {jobs}");
    }
}

#[test]
fn ensemble_to_plume_is_certified_fusable_under_the_bram_budget() {
    let (stdout, _, code) = fuse(&["--format", "json"], &[&example("pipeline.ewf")]);
    assert_eq!(code, 0);
    let plan: Value = serde_json::from_str(&stdout).expect("valid JSON plan");
    assert_eq!(plan.get("schema_version"), Some(&Value::Int(1)), "{stdout}");
    assert_eq!(plan.get("workflow"), Some(&Value::Str("air_quality_cascade".into())));
    let Some(&Value::Int(budget)) = plan.get("budget_bytes") else {
        panic!("plan must carry the BRAM stream budget: {stdout}")
    };
    let Some(Value::Array(edges)) = plan.get("edges") else { panic!("edges: {stdout}") };
    let fused: Vec<&Value> =
        edges.iter().filter(|e| e.get("class") == Some(&Value::Str("fusable".into()))).collect();
    assert_eq!(fused.len(), 1, "exactly one edge streams device-to-device: {stdout}");
    let edge = fused[0];
    assert_eq!(edge.get("item"), Some(&Value::Str("ensemble_field".into())));
    assert_eq!(edge.get("producer"), Some(&Value::Str("ensemble".into())));
    assert_eq!(edge.get("consumer"), Some(&Value::Str("plume".into())));
    let Some(&Value::Int(bytes)) = edge.get("bytes") else { panic!("bytes: {stdout}") };
    assert!(bytes <= budget, "footprint {bytes} must fit the {budget} B budget");
    // No edge of the clean cascade may classify racy.
    assert!(
        edges.iter().all(|e| e.get("class") != Some(&Value::Str("racy".into()))),
        "clean cascade must have zero racy edges: {stdout}"
    );
}

#[test]
fn explain_prints_the_fusion_proof() {
    let (stdout, _, code) = fuse(&["--explain"], &[&example("pipeline.ewf")]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("[fusable] ensemble_field: ensemble -> plume"), "{stdout}");
    assert!(
        stdout.contains(
            "proof: single reader, footprint 131072 B <= 230400 B budget, \
                         serialized by ensemble -> plume"
        ),
        "{stdout}"
    );
    assert!(stdout.contains("fuse: 1 fusable, 6 must-spill, 0 racy\n"), "{stdout}");
}

#[test]
fn aliased_fixture_is_rejected_with_a_counterexample() {
    let (stdout, _, code) = fuse(&[], &[&example("lints/fusion_alias.ewf")]);
    assert_eq!(code, 1, "aliased sinks must fail the fuse gate:\n{stdout}");
    assert!(stdout.contains("error[fuse-racy]"), "{stdout}");
    assert!(
        stdout.contains(
            "counterexample: 'blur' and 'sharpen' both write \"frame-store\" in either \
             order (no ordering path links them)"
        ),
        "{stdout}"
    );
}

#[test]
fn unresolved_kernels_are_a_hard_error() {
    // Pinning the search path to kernels.edsl hides the cascade kernels, so
    // every task of the workflow must fail to resolve.
    let (stdout, _, code) = fuse(&[], &[&example("pipeline.ewf"), &example("kernels.edsl")]);
    assert_eq!(code, 1, "missing kernels must not pass silently:\n{stdout}");
    assert!(stdout.contains("error[wf-unresolved-kernel]"), "{stdout}");
    assert!(stdout.contains("known kernels: gemm, smooth"), "{stdout}");
}

#[test]
fn bad_format_and_missing_workflows_are_usage_errors() {
    let out = everestc().arg("fuse").arg("--format").arg("xml").arg("x.ewf").output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--format"));

    let out = everestc().arg("fuse").output().unwrap();
    assert_eq!(out.status.code(), Some(2), "no workflows is a usage error");
}
