//! Workflow integration: the workflow DSL lowers to the `df` dialect and
//! to a HyperLoom-style task graph, which then executes both on the
//! simulated distributed platform and for real on the multi-threaded
//! executor — with actual use-case computations inside the tasks.

use everest::apps::airquality::{reference_site, Meteo, Stability};
use everest::apps::weather::{generate_truth, WindFarm};
use everest::dsl::WorkflowSpec;
use everest::task_graph_from_workflow;
use everest::workflow::exec::simulate;
use everest::workflow::parallel::ParallelGraph;
use everest::workflow::{Policy, Worker};

const PIPELINE: &str = r#"
    workflow monitoring {
        source met: "weather-station";
        task forecast_wind(met) -> wind;
        task farm_power(wind) -> power;
        task plume(met) -> pollution;
        sink power: "energy-desk";
        sink pollution: "env-dashboard";
    }
"#;

#[test]
fn workflow_dsl_to_ir_and_task_graph_agree() {
    let spec = WorkflowSpec::parse(PIPELINE).unwrap();
    // IR lowering (Fig. 1: unified representation).
    let module = spec.to_ir().unwrap();
    let func = module.func("monitoring").unwrap();
    let mut tasks_in_ir = 0;
    func.walk(&mut |op| {
        if op.name == "df.task" {
            tasks_in_ir += 1;
        }
    });
    assert_eq!(tasks_in_ir, 3);
    // Task-graph lowering (HyperLoom integration).
    let graph = task_graph_from_workflow(&spec, |_| (1_000.0, 10_000));
    assert_eq!(graph.len(), 6); // 1 source + 3 tasks + 2 sinks
    assert_eq!(spec.task_edges().len(), 1); // forecast_wind -> farm_power
}

#[test]
fn simulated_execution_scales_with_workers_and_scheduler() {
    let spec = WorkflowSpec::parse(PIPELINE).unwrap();
    let graph = task_graph_from_workflow(&spec, |name| match name {
        "forecast_wind" => (80_000.0, 1_000_000),
        "farm_power" => (20_000.0, 10_000),
        "plume" => (60_000.0, 500_000),
        _ => (100.0, 100_000),
    });
    let one = simulate(&graph, &Worker::uniform_pool(1, 1.0), Policy::Heft).unwrap();
    let four = simulate(&graph, &Worker::uniform_pool(4, 1.0), Policy::Heft).unwrap();
    // plume runs parallel to the wind chain: 4 workers must help.
    assert!(four.makespan_us < one.makespan_us);
    // And HEFT must not lose to FIFO on the heterogeneous pool.
    let workers = Worker::heterogeneous_pool(1, 3);
    let heft = simulate(&graph, &workers, Policy::Heft).unwrap();
    let fifo = simulate(&graph, &workers, Policy::Fifo).unwrap();
    assert!(heft.makespan_us <= fifo.makespan_us + 1e-9);
}

#[test]
fn real_threaded_execution_computes_use_case_numbers() {
    // The same pipeline as real closures: forecast wind, compute farm
    // power, and run the plume model, fanned out over threads.
    let mut g: ParallelGraph<Vec<f64>> = ParallelGraph::new();
    let met = g.add_task("met", &[], |_| Ok(vec![42.0]));
    let wind = g.add_task("forecast_wind", &[met], |ins| {
        let seed = ins[0][0] as u64;
        let truth = generate_truth(seed, 40.0, 2.0);
        Ok(truth.hourly.iter().map(|f| f.mean()).collect())
    });
    let power = g.add_task("farm_power", &[wind], |ins| {
        // Apply the power curve to the hourly mean winds of a 10-turbine farm.
        Ok(ins[0].iter().map(|w| WindFarm::power_fraction(*w) * 3.0 * 10.0).collect())
    });
    let plume = g.add_task("plume", &[met], |_| {
        let model = reference_site(24);
        let m = Meteo { wind_ms: 2.0, wind_dir_rad: 0.0, stability: Stability::E };
        let (frac, peak) = model.exceedance(&m, 25.0);
        Ok(vec![frac, peak])
    });
    let _sink = g.add_task("report", &[power, plume], |ins| {
        let peak_power = ins[0].iter().copied().fold(0.0, f64::max);
        let peak_conc = ins[1][1];
        Ok(vec![peak_power, peak_conc])
    });

    let results = g.run(4).expect("pipeline executes");
    let report = &results[4];
    assert!(report[0] > 0.0, "farm produces power at some hour");
    assert!(report[1] > 0.0, "plume model produces concentrations");
    // Power is bounded by the rated farm output.
    assert!(report[0] <= 30.0 + 1e-9);
}

#[test]
fn failure_in_one_task_aborts_the_workflow() {
    let mut g: ParallelGraph<f64> = ParallelGraph::new();
    let a = g.add_task("sensor", &[], |_| Ok(1.0));
    let b = g.add_task("corrupted-decoder", &[a], |_| Err("bad CRC on FCD chunk".into()));
    let _ = g.add_task("downstream", &[b], |ins| Ok(*ins[0] * 2.0));
    let err = g.run(2).unwrap_err();
    assert_eq!(err.to_string(), "task 'corrupted-decoder' failed: bad CRC on FCD chunk");
}

#[test]
fn workflow_validation_rejects_broken_pipelines() {
    let broken = r#"
        workflow broken {
            task orphan(ghost) -> out;
            sink out: "nowhere";
        }
    "#;
    assert!(WorkflowSpec::parse(broken).is_err());
}
