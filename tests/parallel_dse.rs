//! Determinism and caching guarantees of the parallel DSE engine: any
//! worker count must produce bit-identical variant sets, the synthesis
//! cache must actually hit on the default space, and the `--jobs` CLI
//! flag must be wired through `everestc`.

use everest::Sdk;
use std::process::Command;
use std::sync::Mutex;

/// The telemetry counters and the synthesis cache are process-global;
/// tests that compile in-process serialize on this lock so counter deltas
/// are attributable.
static COMPILE_LOCK: Mutex<()> = Mutex::new(());

fn compile_lock() -> std::sync::MutexGuard<'static, ()> {
    COMPILE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

const SRC: &str = "
    kernel gemm(a: tensor<16x16xf64>, b: tensor<16x16xf64>) -> tensor<16x16xf64> {
        return a @ b;
    }
    kernel gemm2(a: tensor<16x16xf64>, b: tensor<16x16xf64>) -> tensor<16x16xf64> {
        return a @ b;
    }
    kernel smooth(x: tensor<64xf64>) -> tensor<64xf64> {
        return stencil(x, [0.25, 0.5, 0.25]);
    }
";

/// Serializes every variant of every kernel so two compilations can be
/// compared bit-for-bit (ids, transform lists and full metrics included).
fn fingerprint(compiled: &everest::Compiled) -> String {
    let mut out = String::new();
    for kernel in &compiled.kernels {
        out.push_str(&kernel.name);
        out.push('\n');
        for v in &kernel.variants {
            out.push_str(&serde_json::to_string(v).expect("variant serializes"));
            out.push('\n');
        }
    }
    out
}

#[test]
fn any_job_count_is_bit_identical_to_the_sequential_reference() {
    let _guard = compile_lock();
    let reference = fingerprint(&Sdk::builder().jobs(1).build().compile(SRC).unwrap());
    for jobs in [2, 3, 8] {
        let parallel = fingerprint(&Sdk::builder().jobs(jobs).build().compile(SRC).unwrap());
        assert_eq!(reference, parallel, "jobs={jobs} diverged from the sequential reference");
    }
}

#[test]
fn memoized_engine_hits_the_synthesis_cache_on_the_default_space() {
    let _guard = compile_lock();
    everest::hls::cache::global().clear();
    let before = everest_telemetry::metrics().snapshot();
    let hits_before = before.counter("dse.hls.cache.hit");
    let misses_before = before.counter("dse.hls.cache.miss");

    Sdk::builder().jobs(4).build().compile(SRC).unwrap();

    let after = everest_telemetry::metrics().snapshot();
    let hits = after.counter("dse.hls.cache.hit") - hits_before;
    let misses = after.counter("dse.hls.cache.miss") - misses_before;
    // Default space: 8 hardware points per kernel collapse to 4 unique
    // HLS configs, and gemm/gemm2 are structurally identical — so well
    // over half of the 24 hardware lookups must be served by the cache.
    assert!(hits > 0, "cache never hit (hits={hits}, misses={misses})");
    assert!(hits > misses, "hit rate should exceed 50% (hits={hits}, misses={misses})");
}

#[test]
fn sequential_reference_does_not_touch_the_cache() {
    let _guard = compile_lock();
    let before = everest_telemetry::metrics().snapshot();
    let lookups_before = before.counter("dse.hls.cache.hit") + before.counter("dse.hls.cache.miss");

    Sdk::builder().jobs(1).build().compile(SRC).unwrap();

    let after = everest_telemetry::metrics().snapshot();
    let lookups = after.counter("dse.hls.cache.hit") + after.counter("dse.hls.cache.miss");
    assert_eq!(lookups, lookups_before, "jobs=1 must synthesize directly");
}

#[test]
fn empty_knob_dimension_is_rejected_before_enumeration() {
    let mut sdk = Sdk::builder().build();
    sdk.space.banks.clear();
    let err = sdk.compile(SRC).unwrap_err();
    let everest::SdkError::DesignSpace(msg) = err else {
        panic!("expected a design-space error, got {err}");
    };
    assert!(msg.contains("banks"), "error should name the empty knob: {msg}");
}

fn everestc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_everestc"))
}

fn fixture() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/kernels.edsl")
}

#[test]
fn cli_help_documents_the_jobs_flag() {
    let output = everestc().arg("--help").output().expect("everestc runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("--jobs"), "help must document --jobs:\n{stdout}");
}

#[test]
fn cli_variant_table_is_identical_across_job_counts() {
    let mut outputs = Vec::new();
    for jobs in ["1", "8"] {
        let output = everestc()
            .arg("--jobs")
            .arg(jobs)
            .arg("variants")
            .arg(fixture())
            .output()
            .expect("everestc runs");
        assert!(output.status.success(), "variants --jobs {jobs} failed");
        outputs.push(String::from_utf8_lossy(&output.stdout).into_owned());
    }
    assert_eq!(outputs[0], outputs[1], "--jobs 1 and --jobs 8 printed different tables");
}

#[test]
fn cli_rejects_bad_jobs_values() {
    for bad in [&["--jobs"][..], &["--jobs", "0"][..], &["--jobs", "many"][..]] {
        let output =
            everestc().args(bad).arg("variants").arg(fixture()).output().expect("everestc runs");
        assert_eq!(output.status.code(), Some(2), "{bad:?} should be rejected");
        assert!(String::from_utf8_lossy(&output.stderr).contains("--jobs requires"));
    }
}
