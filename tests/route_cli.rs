//! End-to-end check of `everestc route`: the PTDR serving subcommand
//! must run a cold and a warm pass, report throughput and cache
//! effectiveness, respect `--queries`/`--samples`, and reject bad
//! counts.

use std::process::Command;

fn everestc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_everestc"))
}

#[test]
fn route_serves_cold_and_warm_passes_with_cache_stats() {
    let out = everestc()
        .args(["route", "--queries", "48", "--samples", "200", "--jobs", "4"])
        .output()
        .expect("everestc runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ptdr service:"), "missing header: {stdout}");
    assert!(stdout.contains("48 queries x 200 samples"), "flags ignored: {stdout}");
    assert!(stdout.contains("jobs=4"), "jobs ignored: {stdout}");
    assert!(stdout.contains("cold:"), "missing cold pass: {stdout}");
    assert!(stdout.contains("warm:"), "missing warm pass: {stdout}");
    assert!(stdout.contains("queries/s"), "missing throughput: {stdout}");
    // The warm pass replays the identical stream against a populated
    // cache: every lookup hits.
    let warm = stdout.lines().find(|l| l.starts_with("warm:")).expect("warm line");
    assert!(warm.contains("(100% hit)"), "warm pass must be all hits: {warm}");
    assert!(warm.contains("/0m"), "warm pass must not miss: {warm}");
}

#[test]
fn route_jobs_one_is_the_uncached_reference() {
    let out = everestc()
        .args(["route", "--queries", "8", "--samples", "100", "--jobs", "1"])
        .output()
        .expect("everestc runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The sequential reference never consults the cache, cold or warm.
    for line in stdout.lines().filter(|l| l.starts_with("cold:") || l.starts_with("warm:")) {
        assert!(line.contains("cache 0h/0m"), "jobs=1 must bypass the cache: {line}");
    }
}

#[test]
fn route_rejects_bad_counts() {
    for bad in [&["route", "--queries", "0"][..], &["route", "--samples", "nope"]] {
        let out = everestc().args(bad).output().expect("everestc runs");
        assert!(!out.status.success(), "{bad:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("positive count"), "unexpected error: {stderr}");
    }
    // Stray positional arguments fall through to usage.
    let out = everestc().args(["route", "extra"]).output().expect("everestc runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
