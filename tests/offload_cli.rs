//! End-to-end check of `everestc offload`: the fault-injected offload
//! subcommand must produce a bit-identical retry/fallback trace for the
//! same seed at any `--jobs` count, survive a total FPGA meltdown by
//! degrading to the host CPU, and reject bad flags.

use std::process::Command;

fn everestc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_everestc"))
}

/// Stdout minus the header line (the only line that mentions `jobs=`).
fn trace_of(stdout: &str) -> String {
    stdout.lines().filter(|l| !l.starts_with("offload:")).collect::<Vec<_>>().join("\n")
}

#[test]
fn same_seed_same_trace_at_any_jobs_count() {
    let run = |jobs: &str| {
        let out = everestc()
            .args([
                "offload",
                "--seed",
                "11",
                "--fault-profile",
                "flaky",
                "--calls",
                "24",
                "--jobs",
                jobs,
            ])
            .output()
            .expect("everestc runs");
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let serial = run("1");
    let parallel = run("4");
    assert_eq!(
        trace_of(&serial),
        trace_of(&parallel),
        "retry/fallback trace must be bit-identical at --jobs 1 and --jobs 4"
    );
    // The flaky profile actually exercises recovery, so the determinism
    // claim covers retries/backoffs/fallbacks, not a trivially empty trace.
    assert!(serial.contains("backoff"), "no retries exercised: {serial}");
    assert!(serial.contains("fallback"), "no fallbacks exercised: {serial}");
    assert!(serial.contains("offload.retries"), "missing counters: {serial}");
}

#[test]
fn meltdown_completes_on_the_cpu_in_degraded_mode() {
    let out = everestc()
        .args(["offload", "--seed", "3", "--fault-profile", "meltdown", "--calls", "8"])
        .output()
        .expect("everestc runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Every FPGA dies; every call still completes on the host CPU.
    assert!(stdout.contains("completed 8/8 calls (8 degraded"), "calls lost: {stdout}");
    assert!(stdout.contains("[host-cpu]"), "CPU fallback not used: {stdout}");
    assert!(stdout.contains("device LOST"), "device loss not reported: {stdout}");
    // The rescheduler reports the degraded worker pool.
    assert!(stdout.contains("mode=degraded"), "degraded mode not reported: {stdout}");
    assert!(stdout.contains("on 1/8 workers"), "exclusions not applied: {stdout}");
}

#[test]
fn healthy_profile_reports_no_degradation() {
    let out = everestc()
        .args(["offload", "--fault-profile", "none", "--calls", "6"])
        .output()
        .expect("everestc runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("completed 6/6 calls (0 degraded"), "{stdout}");
    assert!(stdout.contains("tripped devices: none"), "{stdout}");
    assert!(stdout.contains("mode=healthy"), "{stdout}");
}

#[test]
fn offload_rejects_bad_flags() {
    let out = everestc()
        .args(["offload", "--fault-profile", "apocalypse"])
        .output()
        .expect("everestc runs");
    assert!(!out.status.success(), "unknown profile must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("apocalypse"), "unexpected error: {stderr}");
    assert!(stderr.contains("meltdown"), "must list valid profiles: {stderr}");

    let out = everestc().args(["offload", "--seed", "nope"]).output().expect("everestc runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--seed"));

    let out = everestc().args(["offload", "stray"]).output().expect("everestc runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
