//! End-to-end check of the `everestc` CLI observability surface: the
//! global `--trace` flag must produce a valid Chrome trace-event JSON
//! array covering the parse, pass-pipeline, variant-generation and
//! Pareto phases, and `help`/`--version`/`profile` must behave.

use serde_json::Value;
use std::path::PathBuf;
use std::process::Command;

fn everestc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_everestc"))
}

fn fixture() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/kernels.edsl")
}

fn temp_trace(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("everestc-{}-{name}.json", std::process::id()))
}

#[test]
fn trace_flag_writes_chrome_trace_covering_all_compile_phases() {
    let out = temp_trace("variants");
    let status = everestc()
        .arg("--trace")
        .arg(&out)
        .arg("variants")
        .arg(fixture())
        .status()
        .expect("everestc runs");
    assert!(status.success());

    let text = std::fs::read_to_string(&out).expect("trace file exists");
    std::fs::remove_file(&out).ok();
    let value: Value = serde_json::from_str(&text).expect("trace is valid JSON");
    let Value::Array(events) = value else {
        panic!("Chrome trace must be a JSON array of events");
    };
    assert!(!events.is_empty());
    for event in &events {
        for field in ["name", "ph", "ts", "pid", "tid"] {
            assert!(event.get(field).is_some(), "event missing required field '{field}'");
        }
    }
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| match e.get("name") {
            Some(Value::Str(s)) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    for phase in ["dsl.parse", "ir.pipeline", "variants.generate", "variants.pareto"] {
        assert!(names.contains(&phase), "trace must cover phase '{phase}', got {names:?}");
    }
    // One variants.generate span per kernel in the fixture.
    assert_eq!(names.iter().filter(|n| **n == "variants.generate").count(), 2);
}

#[test]
fn trace_flag_is_position_independent() {
    let out = temp_trace("tail");
    let status = everestc()
        .arg("ir")
        .arg(fixture())
        .arg(format!("--trace={}", out.display()))
        .status()
        .expect("everestc runs");
    assert!(status.success());
    let text = std::fs::read_to_string(&out).expect("trace file exists");
    std::fs::remove_file(&out).ok();
    assert!(text.contains("dsl.parse"));
}

#[test]
fn profile_prints_per_phase_summary_table() {
    let output = everestc().arg("profile").arg(fixture()).output().expect("everestc runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("profiled 2 kernels"));
    for column in ["span", "calls", "total"] {
        assert!(stdout.contains(column), "summary table missing '{column}':\n{stdout}");
    }
    for phase in ["sdk.compile", "dsl.parse", "variants.pareto"] {
        assert!(stdout.contains(phase), "summary table missing row '{phase}':\n{stdout}");
    }
}

#[test]
fn help_and_version_exit_zero() {
    for flag in ["help", "--help", "-h"] {
        let output = everestc().arg(flag).output().expect("everestc runs");
        assert!(output.status.success(), "'{flag}' must exit 0");
        assert!(String::from_utf8_lossy(&output.stdout).contains("usage:"));
    }
    for flag in ["--version", "-V"] {
        let output = everestc().arg(flag).output().expect("everestc runs");
        assert!(output.status.success(), "'{flag}' must exit 0");
        assert!(String::from_utf8_lossy(&output.stdout).starts_with("everestc "));
    }
}

#[test]
fn unknown_command_still_exits_two_with_usage() {
    let output = everestc().arg("frobnicate").output().expect("everestc runs");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("usage:"));
}

#[test]
fn trace_without_file_argument_is_an_error() {
    let output = everestc().arg("--trace").output().expect("everestc runs");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("--trace requires"));
}
