//! End-to-end check of the `everestc` metrics pipeline: the global
//! `--metrics` flag must write a reloadable snapshot (JSON, or
//! OpenMetrics when the extension says so), `--flight` must dump the
//! flight recorder's recent events, and `everestc stats` must reload,
//! merge and render snapshots in every supported format.

use serde_json::Value;
use std::path::PathBuf;
use std::process::Command;

fn everestc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_everestc"))
}

fn temp_file(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("everestc-stats-{}-{name}", std::process::id()))
}

/// Runs `route` with `--metrics <path>` and returns the stderr summary.
fn route_with_metrics(path: &PathBuf, queries: &str) -> String {
    let out = everestc()
        .args(["route", "--queries", queries, "--samples", "100", "--jobs", "2"])
        .arg("--metrics")
        .arg(path)
        .output()
        .expect("everestc runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn metrics_flag_writes_reloadable_snapshot_and_stats_renders_it() {
    let snap = temp_file("route.json");
    let stderr = route_with_metrics(&snap, "16");
    assert!(stderr.contains("metrics:"), "missing summary line: {stderr}");
    assert!(stderr.contains(&format!("written to {}", snap.display())), "{stderr}");

    // The snapshot is plain JSON with counters and histograms from the
    // instrumented hot paths.
    let text = std::fs::read_to_string(&snap).expect("snapshot written");
    let value: Value = serde_json::from_str(&text).expect("snapshot is valid JSON");
    for field in ["counters", "gauges", "histograms"] {
        assert!(value.get(field).is_some(), "snapshot missing '{field}'");
    }
    assert!(text.contains("ptdr.queries"), "route must count queries: {text}");
    assert!(text.contains("ptdr.query.latency_us"), "route must time queries");

    // `stats` reloads it and renders the percentile table.
    let out = everestc().arg("stats").arg(&snap).output().expect("everestc runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stats: 1 snapshot(s)"), "missing header: {stdout}");
    assert!(stdout.contains("ptdr.queries"), "missing counter row: {stdout}");
    assert!(stdout.contains("ptdr.query.latency_us"), "missing histogram row: {stdout}");
    for col in ["p50", "p95", "p99"] {
        assert!(stdout.contains(col), "missing percentile column '{col}': {stdout}");
    }
    std::fs::remove_file(&snap).ok();
}

#[test]
fn stats_merges_shards_and_counters_add() {
    let a = temp_file("shard-a.json");
    let b = temp_file("shard-b.json");
    route_with_metrics(&a, "8");
    route_with_metrics(&b, "12");

    let out = everestc()
        .args(["stats", "--format", "json"])
        .arg(&a)
        .arg(&b)
        .output()
        .expect("everestc runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let merged: Value =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("merged JSON");

    let queries_counter = |v: &Value| -> i64 {
        let Some(Value::Array(counters)) = v.get("counters") else {
            panic!("no counters array");
        };
        counters
            .iter()
            .find(|c| matches!(c.get("name"), Some(Value::Str(s)) if s == "ptdr.queries"))
            .and_then(|c| match c.get("value") {
                Some(Value::Int(n)) => Some(*n),
                Some(Value::UInt(n)) => Some(*n as i64),
                _ => None,
            })
            .expect("ptdr.queries counter present")
    };
    // Each route run serves a cold and a warm pass: 2 passes × queries.
    assert_eq!(queries_counter(&merged), 2 * (8 + 12), "counters must add across shards");

    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}

#[test]
fn stats_emits_openmetrics_conventions() {
    let snap = temp_file("om.json");
    route_with_metrics(&snap, "8");
    let out = everestc()
        .args(["stats", "--format", "openmetrics"])
        .arg(&snap)
        .output()
        .expect("everestc runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("# TYPE ptdr_queries counter"), "{text}");
    assert!(text.contains("ptdr_queries_total"), "counters need _total: {text}");
    assert!(text.contains("# TYPE ptdr_query_latency_us histogram"), "{text}");
    assert!(text.contains("_bucket{le=\"+Inf\"}"), "histograms need +Inf bucket: {text}");
    assert!(text.contains("ptdr_query_latency_us_count"), "{text}");
    assert!(text.ends_with("# EOF\n"), "OpenMetrics must end with # EOF: {text}");
    std::fs::remove_file(&snap).ok();
}

#[test]
fn metrics_extension_selects_openmetrics_directly() {
    let prom = temp_file("direct.prom");
    route_with_metrics(&prom, "8");
    let text = std::fs::read_to_string(&prom).expect("prom file written");
    assert!(text.contains("ptdr_queries_total"), "{text}");
    assert!(text.ends_with("# EOF\n"), "{text}");
    std::fs::remove_file(&prom).ok();
}

#[test]
fn flight_flag_dumps_recent_events() {
    let dump_path = temp_file("flight.json");
    let out = everestc()
        .args(["offload", "--calls", "16"])
        .arg("--flight")
        .arg(&dump_path)
        .output()
        .expect("everestc runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("flight:"), "missing flight summary: {stderr}");

    let text = std::fs::read_to_string(&dump_path).expect("flight dump written");
    let value: Value = serde_json::from_str(&text).expect("dump is valid JSON");
    assert!(
        matches!(value.get("reason"), Some(Value::Str(s)) if s == "cli"),
        "dump reason must be 'cli': {text}"
    );
    let Some(Value::Array(events)) = value.get("events") else {
        panic!("dump must carry an events array: {text}");
    };
    assert!(!events.is_empty(), "offload run must record flight events");
    for event in events {
        for field in ["ts_us", "tid", "kind", "name"] {
            assert!(event.get(field).is_some(), "event missing '{field}': {event:?}");
        }
    }
    // The offload runtime's causal chain shows up by name.
    assert!(
        events
            .iter()
            .any(|e| matches!(e.get("name"), Some(Value::Str(s)) if s.starts_with("offload."))),
        "expected offload.* events in the dump"
    );
    std::fs::remove_file(&dump_path).ok();
}

#[test]
fn stats_rejects_bad_input() {
    // No snapshots → usage.
    let out = everestc().arg("stats").output().expect("everestc runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    // Unknown format → clear error.
    let snap = temp_file("badfmt.json");
    std::fs::write(&snap, "{}").unwrap();
    let out =
        everestc().args(["stats", "--format", "yaml"]).arg(&snap).output().expect("everestc runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--format"), "format error surfaced");

    // A file that is not a snapshot → named in the error.
    let bogus = temp_file("bogus.json");
    std::fs::write(&bogus, "not json").unwrap();
    let out = everestc().arg("stats").arg(&bogus).output().expect("everestc runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not a metrics snapshot"), "unexpected error: {stderr}");
    std::fs::remove_file(&snap).ok();
    std::fs::remove_file(&bogus).ok();
}
