//! End-to-end checks of `everestc dataset`: the table's schema is stable,
//! the bytes are a pure function of `--seed` (pinned by a committed golden
//! file), the worker count never shows through, and the optional
//! `--model` pass trains and saves a loadable surrogate.

use std::path::PathBuf;
use std::process::Command;

fn everestc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_everestc"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("everestc-dataset-{}-{name}", std::process::id()))
}

fn golden() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/dataset_seed7_p24.csv");
    std::fs::read_to_string(path).expect("golden dataset file is committed")
}

fn produce(args: &[&str]) -> String {
    let out = everestc().args(args).output().expect("everestc runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    String::from_utf8(out.stdout).expect("CSV is UTF-8")
}

#[test]
fn pinned_seed_reproduces_the_golden_table_at_any_job_count() {
    let args = ["dataset", "--seed", "7", "--points", "24"];
    for jobs in ["1", "2", "4"] {
        let csv = produce(&[&args[..], &["--jobs", jobs]].concat());
        assert_eq!(csv, golden(), "--jobs {jobs} must reproduce the golden table byte-for-byte");
    }
}

#[test]
fn schema_carries_provenance_then_features_then_targets() {
    let header = golden().lines().next().expect("golden has a header").to_owned();
    assert!(header.starts_with("kernel,fingerprint,seed,index,"), "provenance first: {header}");
    for column in ["flops", "banks", "pe", "eff_pe", "log_banks"] {
        assert!(header.split(',').any(|c| c == column), "missing feature '{column}': {header}");
    }
    assert!(header.ends_with("latency_cycles,luts,ffs,dsps,brams"), "targets last: {header}");
}

#[test]
fn a_different_seed_changes_the_table_but_not_the_schema() {
    let base = produce(&["dataset", "--seed", "7", "--points", "12", "--jobs", "2"]);
    let other = produce(&["dataset", "--seed", "8", "--points", "12", "--jobs", "2"]);
    assert_ne!(base, other, "the seed must steer the knob sampling");
    assert_eq!(base.lines().next(), other.lines().next(), "schema is seed-independent");
    assert_eq!(base.lines().count(), other.lines().count());
}

#[test]
fn out_flag_writes_the_same_bytes_as_stdout() {
    let path = tmp("out.csv");
    let out = everestc()
        .args(["dataset", "--seed", "7", "--points", "24", "--jobs", "2"])
        .arg("--out")
        .arg(&path)
        .output()
        .expect("everestc runs");
    assert!(out.status.success());
    assert!(out.stdout.is_empty(), "--out must silence stdout");
    let written = std::fs::read_to_string(&path).expect("--out file written");
    assert_eq!(written, golden());
    std::fs::remove_file(&path).ok();
}

#[test]
fn model_flag_fits_and_saves_a_surrogate() {
    let path = tmp("model.json");
    let out = everestc()
        .args(["dataset", "--seed", "7", "--points", "96", "--jobs", "2", "--out"])
        .arg(tmp("model-table.csv"))
        .arg("--model")
        .arg(&path)
        .output()
        .expect("everestc runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("model: fit on"), "missing fit summary: {stderr}");
    let json = std::fs::read_to_string(&path).expect("model written");
    let model = everest::SurrogateModel::from_json(&json).expect("model JSON loads");
    assert_eq!(model.target_names, vec!["latency_cycles", "luts", "ffs", "dsps", "brams"]);
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(tmp("model-table.csv")).ok();
}

#[test]
fn bad_flags_are_rejected() {
    let out = everestc().args(["dataset", "--points", "0"]).output().expect("everestc runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("positive count"));

    let out = everestc().args(["dataset", "--seed", "x"]).output().expect("everestc runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--seed requires"));

    let out = everestc().args(["dataset", "stray"]).output().expect("everestc runs");
    assert_eq!(out.status.code(), Some(2), "stray arguments are a usage error");
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
