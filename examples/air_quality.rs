//! Use case VI-B: air-quality monitoring of an industrial site.
//!
//! Forecasts ground-level pollutant concentrations within 10 km of two
//! stacks with the Gaussian-plume model, sweeps the grid resolution (the
//! accuracy/latency trade the FPGA acceleration relaxes), and makes the
//! operational call the Plum'air service supports: which hours should
//! production be delayed?
//!
//! Run with: `cargo run --example air_quality`

use everest::apps::airquality::{reference_site, Meteo, Stability};
use everest::Sdk;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== plume forecast accuracy vs grid resolution (10 km domain) ===");
    println!("{:>8} {:>12} {:>14}", "cells", "peak ug/m3", "compute ms");
    let met = Meteo { wind_ms: 2.5, wind_dir_rad: 0.35, stability: Stability::E };
    for cells in [16usize, 32, 64, 128] {
        let model = reference_site(cells);
        let start = Instant::now();
        let (frac, peak) = model.exceedance(&met, 50.0);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "{cells:>8} {peak:>12.1} {elapsed:>14.2}   ({:.1}% of domain over 50 ug/m3)",
            frac * 100.0
        );
    }

    println!("\n=== 24-hour delay decision (stable nights disperse poorly) ===");
    let model = reference_site(48);
    let forecast: Vec<Meteo> = (0..24)
        .map(|h| {
            let (stab, wind) = match h {
                0..=5 | 21..=23 => (Stability::F, 1.5), // stable night
                6..=8 | 18..=20 => (Stability::D, 3.0),
                _ => (Stability::B, 5.5), // convective day
            };
            Meteo { wind_ms: wind, wind_dir_rad: 0.35, stability: stab }
        })
        .collect();
    // Regulatory limit between the convective-day and stable-night peaks:
    // only the poorly-dispersing hours trigger a delay.
    let day_peak = model.exceedance(&forecast[12], 0.0).1;
    let night_peak = model.exceedance(&forecast[2], 0.0).1;
    let limit = day_peak * 1.5;
    println!("day peak {day_peak:.0}, night peak {night_peak:.0}, limit {limit:.0} ug/m3");
    let delay = model.delay_hours(&forecast, limit);
    println!("hours exceeding the limit (delay production): {delay:?}");

    println!("\n=== accelerating the dispersion kernel with EVEREST HLS ===");
    // The inner loop of the plume solve is a weighted-stencil update; the
    // SDK synthesizes it and reports the accelerator characteristics.
    let sdk = Sdk::builder().build();
    let acc = sdk.synthesize_kernel(
        "kernel diffuse(c: tensor<128xf64>) -> tensor<128xf64> {
             return stencil(c, [0.05, 0.25, 0.4, 0.25, 0.05]);
         }",
        "diffuse",
    )?;
    println!(
        "accelerator: {} cycles @ {} MHz = {:.1} us, II={}, area = {}",
        acc.latency_cycles,
        acc.clock_mhz,
        acc.time_us(),
        acc.innermost_ii,
        acc.area
    );

    println!("\n=== stream-fusion legality of the weather -> air-quality cascade ===");
    // The fusion classifier proves which dataset edges of the cascade can
    // legally become FPGA-to-FPGA streams: the ensemble-field hand-off to
    // the plume kernel fits the weakest device's BRAM budget and has a
    // single ordered reader, so it never needs to touch the host.
    let workflow = std::fs::read_to_string("examples/pipeline.ewf")?;
    let kernels = std::fs::read_to_string("examples/cascade.edsl")?;
    let (plan, diags) = sdk.fuse_workflow(&workflow, &[&kernels])?;
    print!("{}", everest::render_plan_text(&plan, true));
    assert!(diags.is_empty(), "the cascade must classify cleanly: {diags:?}");
    let fused = plan
        .edges
        .iter()
        .find(|e| e.class == everest::workflow::EdgeClass::Fusable)
        .expect("ensemble -> plume edge certifies fusable");
    println!(
        "certified: \"{}\" streams {} B device-to-device (budget {} B)",
        fused.edge.item,
        fused.edge.bytes.unwrap(),
        plan.budget_bytes
    );
    Ok(())
}
