//! Use case VI-C: traffic modeling for intelligent transportation.
//!
//! Builds a synthetic smart-city road network, learns per-segment speed
//! profiles from synthetic floating-car data, answers probabilistic
//! time-dependent routing (PTDR) queries by Monte-Carlo sampling, runs the
//! macroscopic traffic simulator under O/D demand, and shows the
//! edge-vs-cloud placement question for the routing service (paper Fig. 3).
//!
//! Run with: `cargo run --example smart_traffic`

use everest::apps::micro::fundamental_diagram;
use everest::apps::traffic::{
    assign_traffic, generate_fcd, ptdr_travel_time, random_od, shortest_route, RoadNetwork,
    SpeedProfiles,
};
use everest::platform::ecosystem::{best_placement, evaluate, Stage, Tier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // "our model will operate on selected cities (like Vienna) counting
    // thousands of vehicles daily"
    let network = RoadNetwork::grid(2026, 12, 0.8);
    println!("road network: {} nodes, {} segments", network.nodes.len(), network.edges.len());
    let fcd = generate_fcd(&network, 7, 300_000);
    println!("floating-car data: {} observations", fcd.len());
    let profiles = SpeedProfiles::learn(&network, &fcd);

    println!("\n=== PTDR: probabilistic time-dependent routing (ref [37]) ===");
    let (from, to) = (0, network.nodes.len() - 1);
    let route = shortest_route(&network, &profiles, from, to, 8).expect("city is connected");
    println!("route {from} -> {to}: {} segments", route.len());
    println!("{:>10} {:>12} {:>12} {:>12}", "samples", "mean min", "p95 min", "std min");
    for samples in [10usize, 100, 1_000, 10_000] {
        let stats = ptdr_travel_time(&network, &profiles, &route, 8.0, samples, 99);
        println!(
            "{samples:>10} {:>12.1} {:>12.1} {:>12.2}",
            stats.mean_h * 60.0,
            stats.p95_h * 60.0,
            stats.std_h * 60.0
        );
    }
    let night = ptdr_travel_time(&network, &profiles, &route, 3.0, 5_000, 99);
    let rush = ptdr_travel_time(&network, &profiles, &route, 8.0, 5_000, 99);
    println!(
        "departure at 03:00 -> {:.1} min, at 08:00 -> {:.1} min",
        night.mean_h * 60.0,
        rush.mean_h * 60.0
    );

    println!("\n=== macroscopic assignment under O/D demand ===");
    let od = random_od(&network, 5, 60, 700.0);
    let report = assign_traffic(&network, &profiles, &od, 8, 8);
    let over_capacity =
        report.flows.iter().zip(&network.edges).filter(|(f, e)| **f > e.capacity_veh_h).count();
    println!(
        "total: {:.0} vehicle-hours; {} segments over capacity; {} unrouted pairs",
        report.total_vehicle_hours, over_capacity, report.unrouted
    );

    println!("\n=== microscopic simulator: the fundamental diagram (VI-C) ===");
    // "combining both macro and microscopic approaches": the IDM ring road
    // generates the flow-density curve the macroscopic profiles consume.
    println!("{:>14} {:>12}", "density v/km", "flow veh/h");
    for (density, flow) in fundamental_diagram(3, 2_000.0, &[10, 40, 80, 140, 200]) {
        println!("{density:>14.1} {flow:>12.0}");
    }

    println!("\n=== where should the routing service run? (paper Fig. 3) ===");
    // Per-query pipeline: ingest FCD burst, update the model, answer PTDR.
    let stages = vec![
        Stage::new("ingest+filter", 5e5, 20_000, false),
        Stage::new("model-update", 2e8, 50_000, true),
        Stage::new("ptdr-query", 5e9, 2_000, true),
    ];
    for placement in [
        vec![Tier::Endpoint, Tier::InnerEdge, Tier::InnerEdge],
        vec![Tier::Endpoint, Tier::InnerEdge, Tier::Cloud],
        vec![Tier::Cloud, Tier::Cloud, Tier::Cloud],
    ] {
        let r = evaluate(&stages, &placement, 2_000_000);
        println!(
            "  {:<38} latency {:>9.0} us  energy {:>7.1} mJ  WAN {:>9} B",
            format!("{placement:?}"),
            r.latency_us,
            r.energy_mj,
            r.wan_bytes
        );
    }
    let (best, best_report) = best_placement(&stages, 2_000_000);
    println!("best placement: {best:?} at {:.0} us per query", best_report.latency_us);
    Ok(())
}
