//! Use case VI-A: weather-based prediction for renewable-energy trading.
//!
//! Reproduces the application story of the paper: a wind-farm operator
//! forecasts day-ahead hourly production from an NWP ensemble; EVEREST's
//! acceleration allows *finer* ensembles, which cut the forecast error and
//! therefore the imbalance cost on the energy market. The workflow itself
//! runs on the HyperLoom-style platform.
//!
//! Run with: `cargo run --example wind_energy`

use everest::apps::weather;
use everest::dsl::WorkflowSpec;
use everest::task_graph_from_workflow;
use everest::workflow::{exec::simulate, Policy, Worker};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== wind-farm day-ahead forecast: ensemble resolution sweep ===");
    println!("{:>8} {:>10} {:>14} {:>16}", "res km", "RMSE MW", "imbalance EUR", "cells/member");
    let mut last_rmse = f64::INFINITY;
    for res_km in [25.0, 12.0, 6.0, 3.0] {
        let report = weather::evaluate_resolution(42, 100.0, 2.0, res_km, 8);
        let rmse = report.rmse_mw();
        let cost = report.imbalance_cost_eur(60.0);
        let cells = (100.0 / res_km) as usize;
        println!("{res_km:>8.0} {rmse:>10.2} {cost:>14.0} {:>16}", cells * cells);
        last_rmse = rmse;
    }
    println!("(finer ensembles -> lower error; acceleration is what makes them affordable)");
    let _ = last_rmse;

    println!("\n=== AI correction with historical data (paper: 'thanks to AI tools') ===");
    let (raw, corrected) = weather::mlp_corrected_forecast(7, 20, 20.0);
    println!("raw ensemble RMSE:       {:>7.2} MW", raw.rmse_mw());
    println!("MLP-corrected RMSE:      {:>7.2} MW", corrected.rmse_mw());
    println!(
        "imbalance cost saved:    {:>7.0} EUR/day",
        raw.imbalance_cost_eur(60.0) - corrected.imbalance_cost_eur(60.0)
    );

    println!("\n=== the forecast pipeline as an EVEREST workflow ===");
    let spec = WorkflowSpec::parse(
        r#"
        workflow forecast {
            source nwp: "ensemble-feed";
            source hist: "scada-history";
            task downscale(nwp) -> fine;
            task farm_power(fine) -> raw_power;
            task ai_correct(raw_power, hist) -> power;
            sink power: "trading-desk";
        }
    "#,
    )?;
    let graph = task_graph_from_workflow(&spec, |name| match name {
        "downscale" => (120_000.0, 8_000_000),
        "farm_power" => (9_000.0, 200_000),
        "ai_correct" => (4_000.0, 2_000),
        _ => (500.0, 4_000_000),
    });
    for policy in [Policy::Fifo, Policy::MinLoad, Policy::Heft] {
        let run = simulate(&graph, &Worker::heterogeneous_pool(1, 3), policy)?;
        println!(
            "  {policy:<9} makespan {:>9.0} us  utilization {:>5.1}%",
            run.makespan_us,
            100.0 * run.mean_utilization()
        );
    }
    Ok(())
}
