//! Quickstart: the full EVEREST flow on one kernel.
//!
//! Compiles a tensor-DSL kernel to the unified IR, generates
//! hardware/software variants, deploys the best accelerator to the
//! reference POWER9 node, and lets the mARGOt-style autotuner pick the
//! operating point under changing conditions.
//!
//! Run with: `cargo run --example quickstart`

use everest::runtime::autotuner::SystemState;
use everest::Sdk;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sdk = Sdk::builder().build();

    // 1. Describe the kernel in the tensor DSL (paper III-A).
    let source = "
        kernel gemm(a: tensor<32x32xf64>, b: tensor<32x32xf64>) -> tensor<32x32xf64> {
            return a @ b;
        }
    ";
    let compiled = sdk.compile(source)?;
    let kernel = compiled.kernel("gemm").expect("gemm compiled");

    println!("== unified IR ==\n{}", compiled.module.to_text());
    println!("== {} variants generated ==", kernel.variants.len());
    for v in &kernel.variants {
        println!(
            "  {:<12} target={:<9} total={:>9.1} us  energy={:>8.3} mJ  luts={}",
            v.id,
            v.target().to_string(),
            v.metrics.total_us(),
            v.metrics.energy_mj,
            v.metrics.area_luts
        );
    }
    let front = kernel.pareto_front();
    println!("Pareto front: {} of {} points", front.len(), kernel.variants.len());

    // 2. Deploy to the reference target system (paper Fig. 4).
    let deployment = sdk.deploy(&compiled, "cloud-p9")?;
    for (kernel_name, handle) in &deployment.placements {
        println!("deployed '{kernel_name}' as {handle}");
    }

    // 3. Runtime selection under changing system state (paper Fig. 2).
    // With the data resident in host DRAM the multithreaded CPU wins raw
    // latency at this size; under the energy objective (the paper's
    // efficiency claim) the accelerator wins — until the fabric is taken.
    let mut tuner = kernel.autotuner();
    println!("-- objective: minimize latency --");
    println!("calm system      -> {}", tuner.select(&SystemState::default())?.id);
    tuner.set_objective(everest::runtime::Objective::MinEnergy);
    println!("-- objective: minimize energy --");
    println!("calm system      -> {}", tuner.select(&SystemState::default())?.id);
    let busy = tuner.select(&SystemState { free_luts: 0, ..Default::default() })?;
    println!("fabric exhausted -> {}", busy.id);
    let hardened = tuner.select(&SystemState { require_hardened: true, ..Default::default() })?;
    println!("security alarm   -> {} (DIFT-hardened or software only)", hardened.id);

    Ok(())
}
