//! The data-protection layer end to end (paper III-A + Fig. 2):
//! secure-dialect annotations, DIFT-hardened accelerators, authenticated
//! encryption on the edge-to-cloud path, and the auto-protection loop
//! reacting to an injected attack.
//!
//! Run with: `cargo run --example secure_telemetry`

use everest::hls::dift::{DiftConfig, TaintEngine};
use everest::runtime::autotuner::SystemState;
use everest::runtime::RuntimeMonitor;
use everest::security::modes::AesGcm;
use everest::security::{sha256, AccessMonitor};
use everest::variants::space::DesignSpace;
use everest::Sdk;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Compile the kernel with DIFT-hardened variants in the space.
    let sdk = Sdk {
        space: DesignSpace { dift: vec![false, true], ..DesignSpace::small() },
        ..Sdk::builder().build()
    };
    let compiled =
        sdk.compile("kernel infer(x: tensor<256xf64>) -> tensor<256xf64> { return sigmoid(x); }")?;
    let kernel = compiled.kernel("infer").expect("compiled");
    println!("variants (incl. DIFT-hardened):");
    for v in &kernel.variants {
        println!(
            "  {:<12} luts={:<7} total={:.2} us",
            v.id,
            v.metrics.area_luts,
            v.metrics.total_us()
        );
    }

    // 2. The DIFT overhead the hardened bitstream pays (TaintHLS model).
    let acc = sdk.synthesize_kernel(
        "kernel infer(x: tensor<256xf64>) -> tensor<256xf64> { return sigmoid(x); }",
        "infer",
    )?;
    let hardened = everest::hls::accel::synthesize(
        compiled.module.func("infer").expect("in module"),
        &everest::hls::accel::HlsConfig { dift: Some(DiftConfig::default()), ..Default::default() },
    )?;
    println!(
        "\nDIFT overhead: {} -> {} LUTs (+{:.1}%), +{} cycles",
        acc.area.luts,
        hardened.area.luts,
        100.0 * (hardened.area.luts - acc.area.luts) as f64 / acc.area.luts as f64,
        hardened.latency_cycles - acc.latency_cycles
    );

    // 3. Taint tracking across the dataflow: plaintext -> ciphertext is
    // the sanctioned declassification point.
    let mut taint = TaintEngine::new();
    taint.taint("sensor_batch", "pii");
    taint.propagate(&["sensor_batch", "session_key"], "ciphertext");
    taint.declassify("ciphertext"); // encryption declassifies
    taint.propagate(&["sensor_batch"], "debug_dump"); // a leaky debug path
    let violations = taint.check_outputs(&["ciphertext", "debug_dump"], &["pii"]);
    println!("\ntaint policy violations: {violations:?} (the debug path is caught)");

    // 4. Edge -> cloud telemetry under AES-128-GCM with tamper detection.
    let key: [u8; 16] = sha256(b"session-master")[..16].try_into()?;
    let gcm = AesGcm::new(&key);
    let nonce = [7u8; 12];
    let sealed = gcm.seal(&nonce, b"wind=9.8m/s temp=281K", b"edge-arm->cloud-p9");
    println!("\nsealed telemetry: {} bytes (payload + 16-byte tag)", sealed.len());
    let mut forged = sealed.clone();
    forged[2] ^= 1;
    println!(
        "tampered frame rejected: {}",
        gcm.open(&nonce, &forged, b"edge-arm->cloud-p9").is_err()
    );

    // 5. Auto-protection: a buffer-overflow-style scan trips the access
    // monitor and the runtime demands hardened variants.
    let mut access = AccessMonitor::new(6);
    for i in 0..64u64 {
        access.observe(0x4000 + i * 8); // learn the kernel's stride
    }
    access.freeze();
    let mut monitor = RuntimeMonitor::new(500_000);
    for _ in 0..30 {
        monitor.record(120.0, false, false);
    }
    for addr in 0x9000u64..0x9040 {
        let alarm = access.observe(addr);
        monitor.record(120.0, alarm, false);
    }
    let state: SystemState = monitor.system_state();
    println!("\nafter the scan: require_hardened = {}", state.require_hardened);
    let tuner = kernel.autotuner();
    let choice = tuner.select(&state)?;
    println!("runtime now selects: {} (DIFT or software only)", choice.id);
    Ok(())
}
