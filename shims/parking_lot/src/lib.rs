//! Offline stand-in for `parking_lot`: the same guard-returning API,
//! implemented over `std::sync`. Poisoning is swallowed (parking_lot has
//! no poisoning), so a panicking thread does not wedge its peers.

use std::sync;

/// A mutex whose `lock` returns the guard directly (no poison `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates the mutex (usable in `static` items).
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A readers–writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates the lock (usable in `static` items).
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires the exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = Arc::new(RwLock::new(5));
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0); // not wedged
    }
}
