//! Dependency-free `#[derive(Serialize, Deserialize)]` for the serde shim.
//!
//! Parses the item's token stream by hand (no `syn`/`quote` available
//! offline) and supports exactly the shapes this workspace serializes:
//! non-generic structs with named fields, and non-generic enums whose
//! variants are units or unnamed-field tuples. Anything fancier panics
//! with a clear message at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<(String, usize)> },
}

/// Skips outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_meta(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_meta(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected a type name, found `{other}`"),
    };
    i += 1;
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde shim derive: generic types are not supported (derive on `{name}`)")
            }
            Some(_) => i += 1,
            None => panic!(
                "serde shim derive: `{name}` has no braced body (tuple/unit items unsupported)"
            ),
        }
    };
    let body: Vec<TokenTree> = body.stream().into_iter().collect();
    match kind.as_str() {
        "struct" => Item::Struct { name, fields: parse_struct_fields(&body) },
        "enum" => Item::Enum { name, variants: parse_enum_variants(&body) },
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    }
}

fn parse_struct_fields(body: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_meta(body, i);
        if i >= body.len() {
            break;
        }
        let field = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected a field name, found `{other}`"),
        };
        i += 1;
        match &body[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!(
                "serde shim derive: expected `:` after field `{field}`, found `{other}` \
                 (tuple structs unsupported)"
            ),
        }
        // Skip the type: everything until a comma outside `<...>`.
        let mut angle_depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(field);
    }
    fields
}

fn parse_enum_variants(body: &[TokenTree]) -> Vec<(String, usize)> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_meta(body, i);
        if i >= body.len() {
            break;
        }
        let variant = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected a variant name, found `{other}`"),
        };
        i += 1;
        let mut arity = 0usize;
        if let Some(TokenTree::Group(g)) = body.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    arity = count_tuple_fields(&g.stream().into_iter().collect::<Vec<_>>());
                    i += 1;
                }
                Delimiter::Brace => {
                    panic!("serde shim derive: struct-like enum variant `{variant}` is unsupported")
                }
                _ => {}
            }
        }
        // Skip to the separating comma (covers discriminants, which we reject
        // implicitly by never generating code for them).
        while i < body.len() {
            if let TokenTree::Punct(p) = &body[i] {
                if p.as_char() == ',' {
                    break;
                }
            }
            i += 1;
        }
        i += 1;
        variants.push((variant, arity));
    }
    variants
}

fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut fields = 1;
    let mut angle_depth = 0i32;
    let mut trailing = false;
    for (idx, t) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if idx + 1 == tokens.len() {
                        trailing = true;
                    } else {
                        fields += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = trailing;
    fields
}

fn bindings(arity: usize) -> Vec<String> {
    (0..arity).map(|k| format!("__f{k}")).collect()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         ::serde::value::Value::Object(vec![{entries}])\n\
                     }}\n\
                 }}",
                entries = entries.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, arity)| match arity {
                    0 => format!("{name}::{v} => ::serde::value::Value::Str(\"{v}\".to_string()),"),
                    1 => format!(
                        "{name}::{v}(__f0) => ::serde::value::Value::Object(vec![(\
                             \"{v}\".to_string(), ::serde::Serialize::to_value(__f0))]),"
                    ),
                    n => {
                        let binds = bindings(*n).join(", ");
                        let items: Vec<String> = bindings(*n)
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({binds}) => ::serde::value::Value::Object(vec![(\
                                 \"{v}\".to_string(), ::serde::value::Value::Array(vec![{}]))]),",
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}",
                arms = arms.join("\n")
            )
        }
    };
    out.parse().expect("serde shim derive: generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(__v.get(\"{f}\").ok_or_else(|| \
                             ::serde::DeError(format!(\"missing field `{f}` in {name}\")))?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::value::Value) -> ::std::result::Result<{name}, ::serde::DeError> {{\n\
                         if !matches!(__v, ::serde::value::Value::Object(_)) {{\n\
                             return Err(::serde::DeError::expected(\"object ({name})\", __v));\n\
                         }}\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}",
                inits = inits.join("\n")
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, arity)| *arity == 0)
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|(_, arity)| *arity > 0)
                .map(|(v, arity)| {
                    if *arity == 1 {
                        format!(
                            "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?)),"
                        )
                    } else {
                        let elems: Vec<String> = (0..*arity)
                            .map(|k| {
                                format!("::serde::Deserialize::from_value(&__items[{k}])?")
                            })
                            .collect();
                        format!(
                            "\"{v}\" => match __inner {{\n\
                                 ::serde::value::Value::Array(__items) if __items.len() == {arity} => \
                                     Ok({name}::{v}({elems})),\n\
                                 __other => Err(::serde::DeError::expected(\"array of {arity} ({name}::{v})\", __other)),\n\
                             }},",
                            elems = elems.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::value::Value) -> ::std::result::Result<{name}, ::serde::DeError> {{\n\
                         match __v {{\n\
                             ::serde::value::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => Err(::serde::DeError(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::value::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__entries[0];\n\
                                 match __tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     __other => Err(::serde::DeError(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => Err(::serde::DeError::expected(\"enum {name}\", __other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                tagged_arms = tagged_arms.join("\n"),
            )
        }
    };
    out.parse().expect("serde shim derive: generated impl parses")
}
