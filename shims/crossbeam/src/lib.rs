//! Offline stand-in for `crossbeam`: the `channel` module the workflow
//! executor uses — cloneable multi-producer **multi-consumer** channels,
//! implemented with a `Mutex<VecDeque>` + `Condvar`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is drained
    /// and every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half; cloneable (multi-consumer).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only when every receiver was dropped.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] carrying the value back on disconnect.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap_or_else(|p| p.into_inner());
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.chan.state.lock().unwrap_or_else(|p| p.into_inner()).senders += 1;
            Sender { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap_or_else(|p| p.into_inner());
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next value.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the queue is drained and every
        /// sender was dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.ready.wait(st).unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Non-blocking receive; `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.chan.state.lock().unwrap_or_else(|p| p.into_inner()).queue.pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.chan.state.lock().unwrap_or_else(|p| p.into_inner()).receivers += 1;
            Receiver { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.state.lock().unwrap_or_else(|p| p.into_inner()).receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn values_flow_in_order_for_one_consumer() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn recv_errors_after_last_sender_drops() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_last_receiver_drops() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn multi_consumer_partitions_work() {
            let (tx, rx) = unbounded::<u32>();
            let mut handles = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                handles.push(std::thread::spawn(move || {
                    let mut sum = 0u32;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                }));
            }
            drop(rx);
            for v in 1..=100 {
                tx.send(v).unwrap();
            }
            drop(tx);
            let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 5050);
        }
    }
}
