//! Offline stand-in for `serde_json`: prints and parses JSON against the
//! serde shim's [`Value`] data model. Floats are printed with Rust's
//! shortest round-trip formatting, so `to_string` → `from_str` preserves
//! every `f64` exactly (the `float_roundtrip` behaviour the workspace
//! asks for).

pub use serde::value::Value;
use serde::{Deserialize, Serialize};

/// A serialization or parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.0)
    }
}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) {
    if f.is_nan() || f.is_infinite() {
        out.push_str("null"); // serde_json serializes non-finite floats as null
    } else if f == f.trunc() && f.abs() < 1e15 {
        out.push_str(&format!("{:.1}", f));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => write_seq(items.iter(), out, indent, '[', ']', |item, out, ind| {
            write_value(item, out, ind)
        }),
        Value::Object(entries) => {
            write_seq(entries.iter(), out, indent, '{', '}', |(k, v), out, ind| {
                escape_into(k, out);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(v, out, ind);
            })
        }
    }
}

fn write_seq<T>(
    items: impl ExactSizeIterator<Item = T>,
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    mut write_item: impl FnMut(T, &mut String, Option<usize>),
) {
    out.push(open);
    let len = items.len();
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|i| i + 1);
    for (idx, item) in items.enumerate() {
        if let Some(i) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(i));
        }
        write_item(item, out, inner);
        if idx + 1 < len {
            out.push(',');
        }
    }
    if let Some(i) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(i));
    }
    out.push(close);
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Infallible for the shim's data model; the `Result` mirrors upstream.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None);
    Ok(out)
}

/// Serializes `value` to two-space-indented JSON.
///
/// # Errors
///
/// Infallible for the shim's data model; the `Result` mirrors upstream.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(0));
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn error(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.error("unexpected end of input"))? {
            b'n' => self.parse_keyword("null", Value::Null),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'"' => self.parse_string().map(Value::Str),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(self.error(&format!("unexpected character `{}`", other as char))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{kw}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.error("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid unicode scalar"))?,
                            );
                        }
                        other => {
                            return Err(self.error(&format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-borrow the full UTF-8 character starting here.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.error("empty char"))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.error(&format!("invalid number `{text}`")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.error(&format!("invalid number `{text}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "-42", "18446744073709551615"] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1.0 / 3.0, 1e300, -2.5e-10, 120.0] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f, "{text}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\n\t\"quoted\" \\ λ".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::Object(vec![
            ("xs".into(), Value::Array(vec![Value::Int(1), Value::Float(2.5)])),
            ("name".into(), Value::Str("everest".into())),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let v = Value::Array(vec![Value::Object(vec![("k".into(), Value::Bool(true))])]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
