//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream
//! generator (RFC 8439 quarter-rounds, 8 rounds, 64-bit block counter)
//! seeded the same way consumers expect (`seed_from_u64`). Word streams
//! are not guaranteed bit-identical to upstream `rand_chacha`; the
//! workspace only relies on per-seed determinism.

/// Re-export of the trait surface consumers import as `rand_core`.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// Deterministic ChaCha8 random generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    next_word: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[..4].copy_from_slice(&[0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574]);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0; // stream id low
        state[15] = 0; // stream id high
        let input = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, orig) in state.iter_mut().zip(input) {
            *word = word.wrapping_add(orig);
        }
        self.buf = state;
        self.next_word = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.next_word >= 16 {
            self.refill();
        }
        let word = self.buf[self.next_word];
        self.next_word += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> ChaCha8Rng {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng { key, counter: 0, buf: [0; 16], next_word: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn works_with_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            let v: f64 = rng.gen_range(-0.8..0.8);
            assert!((-0.8..0.8).contains(&v));
        }
    }

    #[test]
    fn keystream_words_spread_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        // 16 words per block; crossing the boundary must not repeat words.
        let first: Vec<u32> = (0..32).map(|_| rng.next_u32()).collect();
        assert_ne!(&first[..16], &first[16..]);
    }
}
