//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! workspace ships the thin slice of `rand` it actually uses: seedable
//! deterministic generators plus `gen_range`/`gen_bool`. The streams are
//! *not* bit-compatible with upstream `rand`; every consumer in this repo
//! only relies on determinism for a fixed seed, not on exact values.

use std::ops::{Range, RangeInclusive};

/// Core of every generator: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a 64-bit seed (SplitMix64-expanded,
    /// mirroring `rand_core`'s approach).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seeds other generators and backs [`rngs::StdRng`].
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(state: u64) -> SplitMix64 {
        SplitMix64 { state }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Scalars uniformly sampleable between two bounds. The blanket
/// [`SampleRange`] impls below stay generic over `T` so that unsuffixed
/// literals (`rng.gen_range(-1.0..1.0)`) infer exactly as with upstream
/// `rand`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + unit * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                Self::sample_half_open(lo, hi, rng)
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// Ranges (half-open and inclusive) a value can be sampled from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_inclusive(start, end, rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// The workspace's standard deterministic generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        inner: SplitMix64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> StdRng {
            let mut word = [0u8; 8];
            word.copy_from_slice(&seed[..8]);
            StdRng { inner: SplitMix64::new(u64::from_le_bytes(word)) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-8i64..8);
            assert!((-8..8).contains(&x));
            let y = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&y));
            let f = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
