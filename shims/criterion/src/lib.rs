//! Offline stand-in for `criterion`.
//!
//! Provides the macro and type surface the `everest-bench` suite uses
//! (`criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `Throughput`, `black_box`) with a
//! simple mean-of-N wall-clock measurement instead of upstream's
//! statistical machinery. Good enough to compare orders of magnitude and
//! keep every bench target compiling offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u32 = 3;
const MEASURE_ITERS: u32 = 15;

/// Measurement context handed to bench closures.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = MEASURE_ITERS;
    }
}

/// Identifier of one parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, as upstream formats it.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { label: format!("{name}/{parameter}") }
    }

    /// Unparameterized id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> BenchmarkId {
        BenchmarkId { label: label.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> BenchmarkId {
        BenchmarkId { label }
    }
}

/// Declared input volume per iteration (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// The top-level harness.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility; the shim has no warm-up phase.
    pub fn warm_up_time(self, _d: std::time::Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; the shim runs a fixed iteration
    /// budget instead of a timed window.
    pub fn measurement_time(self, _d: std::time::Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; the shim does not resample.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(None, name, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), throughput: None }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration input volume for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id.into().label, self.throughput, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id.label, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// per-bench, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    label: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher { elapsed: Duration::ZERO, iters: 1 };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters.max(1) as f64;
    let full = match group {
        Some(g) => format!("{g}/{label}"),
        None => label.to_owned(),
    };
    let rate = match throughput {
        Some(Throughput::Bytes(b)) if per_iter > 0.0 => {
            format!("  {:>10.1} MiB/s", b as f64 / per_iter / (1 << 20) as f64)
        }
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:>10.1} elem/s", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!("bench {full:<48} {:>12.3} us/iter{rate}", per_iter * 1e6);
}

/// Declares a group-runner function over bench functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_invokes_the_routine() {
        let mut calls = 0u32;
        Criterion::default().bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn groups_compose() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(1024));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        group.finish();
    }
}
