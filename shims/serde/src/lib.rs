//! Offline stand-in for `serde`.
//!
//! Instead of upstream serde's generic serializer/deserializer pair, this
//! shim routes everything through one concrete data model, [`value::Value`]
//! (a JSON-shaped tree). `#[derive(Serialize, Deserialize)]` is provided by
//! the sibling `serde_derive` shim and follows serde's conventions:
//! structs become objects, unit enum variants become strings, and tuple
//! variants become externally-tagged single-key objects.

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    //! The tree data model shared by serialization and deserialization.

    /// A JSON-shaped value tree.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// Absent / null.
        Null,
        /// Boolean.
        Bool(bool),
        /// Signed integer (covers every integer the workspace serializes).
        Int(i64),
        /// Unsigned integer too large for `i64`.
        UInt(u64),
        /// Floating point.
        Float(f64),
        /// String.
        Str(String),
        /// Ordered array.
        Array(Vec<Value>),
        /// Ordered key/value map (insertion order preserved).
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// Looks up a key in an object value.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// Short description of the value's kind (for error messages).
        pub fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::Int(_) | Value::UInt(_) => "integer",
                Value::Float(_) => "float",
                Value::Str(_) => "string",
                Value::Array(_) => "array",
                Value::Object(_) => "object",
            }
        }
    }
}

use value::Value;

/// Deserialization failure: what was expected vs. what was found.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Builds a "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> DeError {
        DeError(format!("expected {what}, found {}", found.kind()))
    }
}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] on shape or type mismatches.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let wide = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| DeError(format!(
                    "integer {wide} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                if wide <= i64::MAX as u64 {
                    Value::Int(wide as i64)
                } else {
                    Value::UInt(wide)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let wide: u64 = match v {
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::UInt(u) => *u,
                    other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(wide).map_err(|_| DeError(format!(
                    "integer {wide} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_round_trip_through_the_model() {
        assert_eq!(u64::from_value(&(u64::MAX).to_value()).unwrap(), u64::MAX);
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn options_map_to_null() {
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u8>::from_value(&Value::Int(3)).unwrap(), Some(3));
    }
}
