//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators, `any::<T>()`, and the `proptest!`
//! macro family this workspace's property suites use. Cases are generated
//! from a deterministic per-test RNG (seeded from the test name), so runs
//! are reproducible; failing inputs are reported but **not shrunk**.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! `any::<T>()`: the canonical strategy for a type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// The strategy type returned by [`any`].
        type Strategy: Strategy<Value = Self>;

        /// The canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Strategy generating values from a whole-domain sampler function.
    #[derive(Clone, Copy)]
    pub struct AnyStrategy<T> {
        sampler: fn(&mut TestRng) -> T,
    }

    impl<T> Strategy for AnyStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.sampler)(rng)
        }
    }

    macro_rules! impl_arbitrary {
        ($($t:ty => $sampler:expr;)*) => {$(
            impl Arbitrary for $t {
                type Strategy = AnyStrategy<$t>;

                fn arbitrary() -> AnyStrategy<$t> {
                    AnyStrategy { sampler: $sampler }
                }
            }
        )*};
    }

    impl_arbitrary! {
        bool => |rng| rng.next() & 1 == 1;
        u8 => |rng| rng.next() as u8;
        u16 => |rng| rng.next() as u16;
        u32 => |rng| rng.next() as u32;
        u64 => |rng| rng.next();
        usize => |rng| rng.next() as usize;
        i8 => |rng| rng.next() as i8;
        i16 => |rng| rng.next() as i16;
        i32 => |rng| rng.next() as i32;
        i64 => |rng| rng.next() as i64;
        isize => |rng| rng.next() as isize;
        f64 => |rng| crate::test_runner::TestRng::unit_f64(rng.next());
        f32 => |rng| crate::test_runner::TestRng::unit_f64(rng.next()) as f32;
        char => |rng| {
            let c = (rng.next() % 0x7f) as u8;
            if c < 0x20 { '?' } else { c as char }
        };
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        type Strategy = AnyStrategy<[u8; N]>;

        fn arbitrary() -> AnyStrategy<[u8; N]> {
            AnyStrategy {
                sampler: |rng| {
                    let mut out = [0u8; N];
                    for b in &mut out {
                        *b = rng.next() as u8;
                    }
                    out
                },
            }
        }
    }

    impl Arbitrary for crate::sample_mod::Index {
        type Strategy = AnyStrategy<crate::sample_mod::Index>;

        fn arbitrary() -> AnyStrategy<crate::sample_mod::Index> {
            AnyStrategy { sampler: |rng| crate::sample_mod::Index { raw: rng.next() as usize } }
        }
    }
}

#[doc(hidden)]
pub mod sample_mod {
    //! Backing module for `prop::sample`.

    /// A position into a collection of as-yet-unknown length.
    #[derive(Debug, Clone, Copy)]
    pub struct Index {
        pub(crate) raw: usize,
    }

    impl Index {
        /// Maps the index into `0..len`.
        ///
        /// # Panics
        ///
        /// Panics when `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            self.raw % len
        }
    }
}

pub mod collection {
    //! `prop::collection`: sized collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Ranges of collection sizes.
    pub trait SizeRange {
        /// Draws a size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next() as usize) % (self.end - self.start)
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::sample::Index`).
pub mod prop {
    pub use crate::collection;

    pub mod sample {
        pub use crate::sample_mod::Index;
    }
}

pub mod prelude {
    //! Everything a `proptest!` suite needs in scope.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])+
          fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::new_value(&($strat), &mut __rng);
                    )+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { { $body } ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name), __case + 1, __cfg.cases, __msg
                        ),
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`: {}", __l, __r, format!($($fmt)+)
        );
    }};
}

/// Fails the current case unless the operands compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`: {}", __l, __r, format!($($fmt)+)
        );
    }};
}

/// Skips the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_collections_obey_bounds(
            x in 3usize..9,
            v in prop::collection::vec(any::<u8>(), 2..5),
            f in -1.5f64..1.5,
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!((-1.5..1.5).contains(&f));
        }

        #[test]
        fn oneof_maps_and_tuples_compose(
            tag in prop_oneof![Just(1u8), Just(2u8), 3u8..5],
            pair in (any::<bool>(), 0i64..10),
        ) {
            prop_assert!(matches!(tag, 1..=4));
            prop_assert!((0..10).contains(&pair.1));
        }
    }

    proptest! {
        #[test]
        fn string_patterns_match_their_class(s in "[a-zA-Z0-9 _.-]{0,12}") {
            prop_assert!(s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_alphanumeric()
                || matches!(c, ' ' | '_' | '.' | '-')));
        }
    }

    #[test]
    fn index_maps_into_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("index");
        for len in [1usize, 2, 17] {
            let idx = crate::strategy::Strategy::new_value(&any::<prop::sample::Index>(), &mut rng);
            assert!(idx.index(len) < len);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(xs) => 1 + xs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = any::<i64>().prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 8, 4, |inner| {
            prop::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut rng = crate::test_runner::TestRng::deterministic("tree");
        for _ in 0..200 {
            let t = crate::strategy::Strategy::new_value(&strat, &mut rng);
            assert!(depth(&t) <= 4 + 1);
        }
    }
}
