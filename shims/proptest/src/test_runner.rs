//! The miniature test runner behind `proptest!`: configuration, the
//! deterministic RNG, and the case-level error channel.

/// Per-suite configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(&'static str),
    /// `prop_assert*!` failed; the test fails.
    Fail(String),
}

/// Deterministic SplitMix64 generator seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary label (e.g. `stringify!(test_name)`).
    pub fn deterministic(label: &str) -> TestRng {
        // FNV-1a over the label gives a stable per-test seed.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: seed }
    }

    /// The next uniform 64-bit word.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Maps a word to a float in `[0, 1)`.
    pub fn unit_f64(word: u64) -> f64 {
        (word >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_label() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        let mut c = TestRng::deterministic("u");
        let xs: Vec<u64> = (0..10).map(|_| a.next()).collect();
        assert_eq!(xs, (0..10).map(|_| b.next()).collect::<Vec<u64>>());
        assert_ne!(xs, (0..10).map(|_| c.next()).collect::<Vec<u64>>());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = TestRng::deterministic("unit");
        for _ in 0..1000 {
            let f = TestRng::unit_f64(rng.next());
            assert!((0.0..1.0).contains(&f));
        }
    }
}
