//! Strategies: deterministic value generators with the combinator surface
//! the workspace's property suites use (`prop_map`, `prop_recursive`,
//! unions, tuples, ranges, regex-lite string classes).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: at each level, half the draws come
    /// from the base (`self`), half from `recurse` applied one level
    /// deeper, bottoming out at `depth`.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            level = Union::new(vec![base.clone(), recurse(level).boxed()]).boxed();
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Arc::new(self) }
    }
}

/// Object-safe view of [`Strategy`] used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_new_value(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased, cheaply-cloneable strategy.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_new_value(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice over same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let pick = (rng.next() as usize) % self.options.len();
        self.options[pick].new_value(rng)
    }
}

// Integer ranges.
macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Float ranges.
macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let unit = TestRng::unit_f64(rng.next()) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

// Tuples of strategies.
macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0/0);
    (S0/0, S1/1);
    (S0/0, S1/1, S2/2);
    (S0/0, S1/1, S2/2, S3/3);
    (S0/0, S1/1, S2/2, S3/3, S4/4);
}

// Regex-lite string strategies: `"[class]{min,max}"` or a literal.
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        match parse_class_pattern(self) {
            Some((alphabet, min, max)) => {
                assert!(!alphabet.is_empty(), "empty character class in `{self}`");
                let span = max - min + 1;
                let len = min + (rng.next() as usize) % span;
                (0..len).map(|_| alphabet[(rng.next() as usize) % alphabet.len()]).collect()
            }
            // Not a recognized pattern: treat the pattern as a literal.
            None => (*self).to_owned(),
        }
    }
}

/// Parses `[chars]{min,max}` / `[chars]{n}` / `[chars]` (single char) into
/// (alphabet, min, max). Supports `a-z` ranges inside the class.
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            for c in lo..=hi {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((alphabet, 1, 1));
    }
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match counts.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((alphabet, min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_pattern_parses_ranges_and_counts() {
        let (alphabet, min, max) = parse_class_pattern("[a-c_]{2,5}").unwrap();
        assert_eq!(alphabet, vec!['a', 'b', 'c', '_']);
        assert_eq!((min, max), (2, 5));
        let (alphabet, min, max) = parse_class_pattern("[xy]").unwrap();
        assert_eq!(alphabet, vec!['x', 'y']);
        assert_eq!((min, max), (1, 1));
        assert!(parse_class_pattern("plain").is_none());
    }

    #[test]
    fn union_draws_every_option_eventually() {
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed(), Just(3u8).boxed()]);
        let mut rng = TestRng::deterministic("union");
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[u.new_value(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }
}
